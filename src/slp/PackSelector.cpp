//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "slp/PackSelector.h"

#include "service/ThreadPool.h"

#include <algorithm>
#include <unordered_map>

using namespace snslp;

namespace {

/// One connected component of the conflict graph, solved independently:
/// candidates from different components never share an element, so the
/// global optimum is the concatenation of the per-component optima.
struct Component {
  /// Original candidate indices, sorted by the DFS order (cost ascending,
  /// score descending, index ascending) — most promising first, which
  /// tightens the branch-and-bound incumbent early.
  std::vector<unsigned> Members;
  /// Dense per-component element ids, parallel to Members.
  std::vector<std::vector<unsigned>> Elements;
  unsigned NumElements = 0;
};

/// Best-so-far incumbent of one component solve.
struct Incumbent {
  int Cost = 0;   // Empty selection: always feasible, costs 0.
  int Score = 0;
  std::vector<unsigned> Selected; // Original indices, sorted ascending.

  /// Objective order: lower cost, then higher score, then the
  /// lexicographically smaller index set — a total order, so the solve is
  /// a pure function of the candidate vector (the determinism the
  /// PackSelectorTest 1-vs-4-workers case locks in).
  bool betterThan(int C, int S, const std::vector<unsigned> &Sel) const {
    if (Cost != C)
      return Cost < C;
    if (Score != S)
      return Score > S;
    return Selected < Sel;
  }
};

/// Depth-first branch and bound over one component.
class ComponentSolver {
public:
  ComponentSolver(const std::vector<SolverCandidate> &Candidates,
                  const Component &Comp, uint64_t MaxNodes)
      : Candidates(Candidates), Comp(Comp), MaxNodes(MaxNodes),
        Used(Comp.NumElements, 0) {
    // Admissible bound: everything still undecided at position I can at
    // best contribute the sum of the remaining negative costs.
    SuffixNeg.assign(Comp.Members.size() + 1, 0);
    for (size_t I = Comp.Members.size(); I-- > 0;)
      SuffixNeg[I] =
          SuffixNeg[I + 1] + std::min(0, Candidates[Comp.Members[I]].Cost);
  }

  SolverResult run() {
    dfs(0, 0, 0);
    SolverResult R;
    R.Selected = Best.Selected;
    R.TotalCost = Best.Cost;
    R.NodesExplored = Nodes;
    R.Complete = !Exhausted;
    return R;
  }

private:
  void dfs(size_t I, int Cost, int Score) {
    // Count unconditionally so NodesExplored (and the goslp-solver-nodes
    // stat) stays honest under MaxSolverNodes=0, the unbounded solve.
    ++Nodes;
    if (MaxNodes && Nodes > MaxNodes) {
      Exhausted = true;
      return;
    }
    if (I == Comp.Members.size()) {
      std::vector<unsigned> Sorted(Current);
      std::sort(Sorted.begin(), Sorted.end());
      if (Best.betterThan(Cost, Score, Sorted))
        return;
      Best = Incumbent{Cost, Score, std::move(Sorted)};
      return;
    }
    if (Cost + SuffixNeg[I] > Best.Cost)
      return; // Even taking every remaining profit cannot beat the best.

    const unsigned Orig = Comp.Members[I];
    const SolverCandidate &C = Candidates[Orig];
    bool Conflicts = false;
    for (unsigned E : Comp.Elements[I])
      Conflicts |= Used[E] != 0;

    // Include-first: the DFS order puts the most profitable candidates
    // first, so diving into "include" finds a strong incumbent early.
    if (!Conflicts) {
      for (unsigned E : Comp.Elements[I])
        Used[E] = 1;
      Current.push_back(Orig);
      dfs(I + 1, Cost + C.Cost, Score + C.Score);
      Current.pop_back();
      for (unsigned E : Comp.Elements[I])
        Used[E] = 0;
      if (Exhausted)
        return;
    }
    dfs(I + 1, Cost, Score);
  }

  const std::vector<SolverCandidate> &Candidates;
  const Component &Comp;
  const uint64_t MaxNodes;
  std::vector<char> Used;
  std::vector<int> SuffixNeg;
  std::vector<unsigned> Current;
  Incumbent Best;
  uint64_t Nodes = 0;
  bool Exhausted = false;
};

} // namespace

PackSelector::PackSelector(std::vector<SolverCandidate> Cands,
                           int CostThreshold, uint64_t MaxSolverNodes,
                           unsigned Jobs)
    : Candidates(std::move(Cands)), CostThreshold(CostThreshold),
      MaxSolverNodes(MaxSolverNodes), Jobs(Jobs ? Jobs : 1) {}

/// Shared DFS/greedy visit order: most profitable first, deterministic.
static bool orderCandidates(const std::vector<SolverCandidate> &Candidates,
                            unsigned A, unsigned B) {
  const SolverCandidate &CA = Candidates[A], &CB = Candidates[B];
  if (CA.Cost != CB.Cost)
    return CA.Cost < CB.Cost;
  if (CA.Score != CB.Score)
    return CA.Score > CB.Score;
  return A < B;
}

SolverResult PackSelector::solve() const {
  // Eligibility mirrors the greedy pipeline's cost test: only candidates
  // strictly below the threshold may be committed. Ineligible candidates
  // are excluded up front (selecting one can only worsen the objective).
  std::vector<unsigned> Eligible;
  for (unsigned I = 0; I < Candidates.size(); ++I)
    if (Candidates[I].Cost < CostThreshold)
      Eligible.push_back(I);

  // Connected components of the conflict graph via the element -> owner
  // map; candidates in different components never interact.
  std::unordered_map<unsigned, std::vector<unsigned>> ByElement;
  for (unsigned I : Eligible)
    for (unsigned E : Candidates[I].Elements)
      ByElement[E].push_back(I);
  std::unordered_map<unsigned, unsigned> CompOf;
  std::vector<Component> Components;
  for (unsigned Seed : Eligible) {
    if (CompOf.count(Seed))
      continue;
    Component Comp;
    std::vector<unsigned> Stack{Seed};
    CompOf[Seed] = static_cast<unsigned>(Components.size());
    while (!Stack.empty()) {
      unsigned I = Stack.back();
      Stack.pop_back();
      Comp.Members.push_back(I);
      for (unsigned E : Candidates[I].Elements)
        for (unsigned J : ByElement[E])
          if (!CompOf.count(J)) {
            CompOf[J] = static_cast<unsigned>(Components.size());
            Stack.push_back(J);
          }
    }
    std::sort(Comp.Members.begin(), Comp.Members.end(),
              [&](unsigned A, unsigned B) {
                return orderCandidates(Candidates, A, B);
              });
    // Densify the element ids for O(1) conflict marks in the DFS.
    std::unordered_map<unsigned, unsigned> Dense;
    Comp.Elements.resize(Comp.Members.size());
    for (size_t M = 0; M < Comp.Members.size(); ++M)
      for (unsigned E : Candidates[Comp.Members[M]].Elements) {
        auto [It, New] =
            Dense.emplace(E, static_cast<unsigned>(Dense.size()));
        Comp.Elements[M].push_back(It->second);
        (void)New;
      }
    Comp.NumElements = static_cast<unsigned>(Dense.size());
    Components.push_back(std::move(Comp));
  }

  // Solve each component with its own full node budget (this is what makes
  // the result independent of Jobs), optionally fanning out on a thread
  // pool; results are merged in component order.
  std::vector<SolverResult> Partial(Components.size());
  auto SolveOne = [&](size_t CI) {
    Partial[CI] =
        ComponentSolver(Candidates, Components[CI], MaxSolverNodes).run();
  };
  if (Jobs > 1 && Components.size() > 1) {
    ThreadPool Pool(std::min<unsigned>(
        Jobs, static_cast<unsigned>(Components.size())));
    for (size_t CI = 0; CI < Components.size(); ++CI)
      Pool.submit([&SolveOne, CI] { SolveOne(CI); });
    Pool.wait();
    Pool.shutdown();
  } else {
    for (size_t CI = 0; CI < Components.size(); ++CI)
      SolveOne(CI);
  }

  SolverResult R;
  for (const SolverResult &P : Partial) {
    R.Selected.insert(R.Selected.end(), P.Selected.begin(), P.Selected.end());
    R.TotalCost += P.TotalCost;
    R.NodesExplored += P.NodesExplored;
    R.Complete = R.Complete && P.Complete;
  }
  std::sort(R.Selected.begin(), R.Selected.end());
  return R;
}

SolverResult PackSelector::solveGreedy() const {
  std::vector<unsigned> Order;
  for (unsigned I = 0; I < Candidates.size(); ++I)
    if (Candidates[I].Cost < CostThreshold)
      Order.push_back(I);
  std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    return orderCandidates(Candidates, A, B);
  });

  SolverResult R;
  std::unordered_map<unsigned, char> Used;
  for (unsigned I : Order) {
    bool Conflicts = false;
    for (unsigned E : Candidates[I].Elements)
      Conflicts |= Used.count(E) != 0;
    if (Conflicts)
      continue;
    for (unsigned E : Candidates[I].Elements)
      Used[E] = 1;
    R.Selected.push_back(I);
    R.TotalCost += Candidates[I].Cost;
  }
  std::sort(R.Selected.begin(), R.Selected.end());
  return R;
}
