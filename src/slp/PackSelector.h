//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global pack selection (GoSLP mode): an exact branch-and-bound solver
/// over an abstract candidate set. Each candidate carries its cost-model
/// cost, a look-ahead tie-break score, and the set of elements (store
/// positions) it covers; two candidates conflict when they share an
/// element. The solver picks the conflict-free subset minimizing total
/// cost — the global optimum greedy first-fit slicing can miss (goSLP,
/// Mendis & Amarasinghe). See docs/goslp.md.
///
/// The solver is deliberately IR-free so unit tests can feed hand-built
/// candidate sets with known optima (PackSelectorTest).
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SLP_PACKSELECTOR_H
#define SNSLP_SLP_PACKSELECTOR_H

#include "slp/VectorizerConfig.h"

#include <cstdint>
#include <vector>

namespace snslp {

/// One candidate pack, abstracted to what selection needs.
struct SolverCandidate {
  /// Cost-model cost of committing this pack (negative = profitable).
  int Cost = 0;
  /// Memoized look-ahead group score of the pack's operand bundle; used
  /// as the edge weight breaking cost ties (higher = better pairing).
  int Score = 0;
  /// Elements (in-block store positions) the pack covers. Two candidates
  /// sharing an element cannot both be selected.
  std::vector<unsigned> Elements;
};

/// Result of one selection solve.
struct SolverResult {
  /// Indices into the candidate vector, ascending. Conflict-free.
  std::vector<unsigned> Selected;
  /// Sum of the selected candidates' costs (<= 0 for a complete solve:
  /// the empty selection costs 0 and is always feasible).
  int TotalCost = 0;
  /// Branch-and-bound search-tree nodes expanded, summed over components.
  uint64_t NodesExplored = 0;
  /// False when MaxSolverNodes tripped in some component; Selected then
  /// holds the best selection found before exhaustion and the caller is
  /// expected to degrade to greedy (bailout:budget, docs/goslp.md).
  bool Complete = true;
};

/// Pack-selection solver over one block's candidate set.
class PackSelector {
public:
  /// \p CostThreshold mirrors VectorizerConfig::CostThreshold: only
  /// candidates with Cost < CostThreshold can ever be selected (picking a
  /// non-profitable pack can only worsen the objective). \p MaxSolverNodes
  /// bounds the branch-and-bound tree per conflict component (0 =
  /// unbounded). \p Jobs > 1 solves independent components in parallel on
  /// a ThreadPool; the result is bit-identical for any value because each
  /// component owns a full MaxSolverNodes budget and results are merged
  /// in component order.
  PackSelector(std::vector<SolverCandidate> Candidates, int CostThreshold = 0,
               uint64_t MaxSolverNodes = ResourceBudgets().MaxSolverNodes,
               unsigned Jobs = 1);

  /// Exact selection: minimize total cost; ties broken by higher total
  /// score, then by the lexicographically smallest index set (so the
  /// result is a pure function of the candidate vector).
  SolverResult solve() const;

  /// The greedy baseline (best cost first, skip conflicts) the solver is
  /// measured against in benches and the planted-trap unit test.
  SolverResult solveGreedy() const;

private:
  std::vector<SolverCandidate> Candidates;
  int CostThreshold;
  uint64_t MaxSolverNodes;
  unsigned Jobs;
};

} // namespace snslp

#endif // SNSLP_SLP_PACKSELECTOR_H
