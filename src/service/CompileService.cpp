//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include "costmodel/TargetCostModel.h"
#include "driver/PassPipeline.h"
#include "interp/Bytecode.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "support/FaultInjection.h"
#include "support/Statistic.h"

#include <algorithm>
#include <chrono>
#include <sstream>

using namespace snslp;

//===----------------------------------------------------------------------===//
// CompiledProgram
//===----------------------------------------------------------------------===//

ExecutionResult CompiledProgram::run(const RunRequest &R) const {
  // The engine's register file and memory-range table are mutable per-run
  // state shared by every holder of this unit: serialize.
  std::lock_guard<std::mutex> Lock(ExecMu);
  Engine->clearMemoryRanges();
  for (const auto &[Base, Size] : R.MemoryRanges)
    Engine->addMemoryRange(Base, Size);
  return Engine->run(R.Engine, R.Args, R.MaxSteps);
}

bool CompiledProgram::nativeAvailable() const {
  return Engine && Engine->nativeCodeSize() > 0;
}

size_t CompiledProgram::nativeCodeSize() const {
  return Engine ? Engine->nativeCodeSize() : 0;
}

size_t CompiledProgram::cachedBytes() const {
  size_t Bytes = SourceText.size() + VectorizedText.size();
  for (const Remark &R : Remarks)
    Bytes += sizeof(Remark) + R.Pass.size() + R.Name.size() +
             R.FunctionName.size() + R.Decision.size() + R.Message.size();
  if (Engine) {
    const BytecodeFunction &BC = Engine->getBytecode();
    Bytes += BC.getCodeSize() * 16 + BC.getNumRegCells() * 8;
    // The installed native code buffer (0 when the JIT is unavailable).
    Bytes += Engine->nativeCodeSize();
  }
  // The retained IR itself (instructions, constants, types): a coarse
  // estimate keyed to the printed form, which tracks instruction count.
  Bytes += VectorizedText.size() * 4;
  return Bytes;
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

static uint64_t steadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// True when \p AbsDeadlineNanos (0 = none) has passed.
static bool deadlineExpired(uint64_t AbsDeadlineNanos) {
  return AbsDeadlineNanos != 0 && steadyNowNanos() >= AbsDeadlineNanos;
}

CompileService::CompileService(ServiceConfig Cfg)
    : Stats(Cfg.Stats), Cache(Cfg.CacheBytes, Cfg.Stats),
      Store(std::move(Cfg.StoreDir), Cfg.Stats),
      MaxQueueDepth(Cfg.MaxQueueDepth),
      Pool(Cfg.Workers ? Cfg.Workers
                       : std::max(1u, std::thread::hardware_concurrency())) {
  // The store is an accelerator, not a dependency: an unusable store
  // directory degrades to compile-everything (I/O errors are counted),
  // never to a failed service.
  Error E = Store.prepare();
  if (E && Stats)
    Stats->add("service.store.io-errors");
}

CompileService::~CompileService() { Pool.shutdown(/*RunPending=*/true); }

std::string CompileService::configFingerprint(const CompileRequest &Req) {
  // Every knob that can change the compiled output must appear here; a
  // stale fingerprint would alias distinct pipelines onto one cache key.
  // kPipelineVersion exists for changes this list cannot see (codegen
  // logic itself) — bump it when the pipeline's behaviour changes.
  // v2: units carry eagerly JIT-compiled native code (PR 6).
  // v3: GoSLP global pack selection (PR 7). SolverJobs is deliberately
  // absent: selection is bit-identical for any worker count. DeadlineMillis
  // and Budgets.DeadlineSteadyNanos are likewise absent: a deadline is
  // per-request *policy* and must not fragment the content address.
  static constexpr unsigned kPipelineVersion = 3;
  const VectorizerConfig &C = Req.Config;
  std::ostringstream OS;
  OS << "v" << kPipelineVersion << ";mode=" << getModeName(C.Mode)
     << ";vf=" << C.MinVF << "-" << C.MaxVF << ";la=" << C.LookAheadDepth
     << ";memo=" << C.EnableLookAheadMemo << ";depth=" << C.MaxGraphDepth
     << ";cost=" << C.CostThreshold << ";red=" << C.EnableReductionSeeds
     << ";shuf=" << C.EnableLoadShuffles
     << ";budget=" << C.Budgets.MaxGraphNodes << ","
     << C.Budgets.MaxLookAheadEvals << ","
     << C.Budgets.MaxSuperNodePermutations << ","
     << C.Budgets.MaxPackCandidates << "," << C.Budgets.MaxSolverNodes
     << ";txn=" << C.TransactionalRegions << C.VerifyAfterAttempt
     << ";tgt=" << C.Target.MaxVectorWidthBytes << ","
     << C.Target.ScalarArithCost << "," << C.Target.VectorArithCost << ","
     << C.Target.ScalarMemCost << "," << C.Target.VectorMemCost << ","
     << C.Target.InsertCost << "," << C.Target.ExtractCost << ","
     << C.Target.ShuffleCost << "," << C.Target.AlternatePenalty
     << ";cleanup=" << Req.EarlyCleanup << Req.LateCleanup
     << ";entry=" << Req.EntryFunction;
  return OS.str();
}

Digest128 CompileService::requestKey(const CompileRequest &Req) {
  // Content address: the exact module text plus the pipeline fingerprint,
  // separated by a byte that cannot occur in either.
  std::string Blob = configFingerprint(Req);
  Blob.push_back('\x1e');
  Blob += Req.ModuleText;
  return digest128(Blob);
}

uint64_t CompileService::resolveDeadline(const CompileRequest &Req) {
  if (Req.DeadlineMillis == 0)
    return 0;
  return steadyNowNanos() + Req.DeadlineMillis * 1000000ull;
}

Expected<CompiledUnit> CompileService::compileSync(const CompileRequest &Req) {
  return compileSyncAt(Req, resolveDeadline(Req));
}

Expected<CompiledUnit>
CompileService::compileSyncAt(const CompileRequest &Req,
                              uint64_t AbsDeadlineNanos) {
  if (Stats)
    Stats->add("service.requests");

  // Admission-control fault site: simulates a full queue on the
  // synchronous path (the daemon serves connections through here), so the
  // sweep can prove the structured `overloaded` rejection end to end.
  if (faultPoint("service.queue.overload")) {
    if (Stats)
      Stats->add("service.queue.rejected");
    return Error::make(ErrorCode::Overloaded,
                       "compile queue is full (admission control); retry "
                       "with backoff");
  }

  // Shed already-expired requests before touching the cache or compiling:
  // this is the dequeue-time check for pool jobs (compileSyncAt runs when
  // a worker picks the job up) and the entry check for synchronous
  // callers. The fault site simulates the expiry deterministically.
  if (deadlineExpired(AbsDeadlineNanos) ||
      faultPoint("service.deadline.expire")) {
    if (Stats)
      Stats->add("service.deadline.shed");
    return Error::make(ErrorCode::DeadlineExceeded,
                       "request deadline expired before compilation "
                       "started (" +
                           std::to_string(Req.DeadlineMillis) +
                           "ms budget); retry with a fresh deadline");
  }

  const Digest128 Key = requestKey(Req);
  CompileCache::Lookup L = Cache.lookupOrBegin(Key);

  switch (L.State) {
  case CompileCache::LookupState::Hit:
  case CompileCache::LookupState::Coalesced: {
    const bool Coalesced = L.State == CompileCache::LookupState::Coalesced;
    if (L.LeaderFailed) {
      // Single-flight waiter sharing the leader's failure.
      ErrorCode Code = ErrorCode::InvalidArgument;
      parseErrorCodeName(L.ErrorCodeName, Code);
      return Error::make(Code, L.Error);
    }
    auto Program = std::static_pointer_cast<const CompiledProgram>(L.Unit);
    // Strictness is per-request, not per-unit: a cached scalar-fallback
    // unit still fails a strict request.
    if (Req.StrictBudgets && Program->stats().BudgetBailouts > 0)
      return Error::make(ErrorCode::BudgetExhausted,
                         "module '" + Program->entryName() +
                             "': resource budget exhausted during "
                             "vectorization (cached unit is the scalar "
                             "fallback)");
    CompiledUnit U;
    U.Program = std::move(Program);
    U.CacheHit = true;
    U.Coalesced = Coalesced;
    return U;
  }
  case CompileCache::LookupState::MustCompile:
    return compileLocked(Req, Key, AbsDeadlineNanos);
  }
  return Error::make(ErrorCode::InvalidArgument, "unreachable lookup state");
}

Expected<CompiledUnit> CompileService::compileLocked(const CompileRequest &Req,
                                                     const Digest128 &Key,
                                                     uint64_t AbsDeadlineNanos) {
  // Single-flight leader: every exit path MUST settle the key via
  // Cache.fulfill or Cache.fail, or coalesced waiters hang.
  auto FailWith = [this, &Key](ErrorCode Code,
                               std::string Msg) -> Expected<CompiledUnit> {
    Cache.fail(Key, Msg, getErrorCodeName(Code));
    return Error::make(Code, std::move(Msg));
  };

  // Persistent-store fast path: a prior process (or an evicted memory
  // entry) may have published this key's artifact. A disk hit skips the
  // whole vectorizer pipeline; corrupt/unreadable entries fall through to
  // a full compile (the store already quarantined them).
  if (std::shared_ptr<CompiledProgram> P = tryLoadFromStore(Req, Key)) {
    Cache.fulfill(Key, P);
    if (Req.StrictBudgets && P->Stats.BudgetBailouts > 0)
      return Error::make(ErrorCode::BudgetExhausted,
                         "module '" + P->EntryName +
                             "': resource budget exhausted during "
                             "vectorization (persisted unit is the scalar "
                             "fallback)");
    CompiledUnit U;
    U.Program = std::move(P);
    U.DiskHit = true;
    return U;
  }

  const auto Start = std::chrono::steady_clock::now();

  // Job-private Context/Module: the IR context is single-threaded by
  // design, so the whole IR world of this request lives and dies inside
  // this CompiledProgram (Context-per-job rule, docs/service.md).
  std::shared_ptr<CompiledProgram> P(new CompiledProgram());
  P->SourceText = Req.ModuleText;
  P->Key = Key;

  std::string ParseErr;
  if (!parseIR(Req.ModuleText, P->M, &ParseErr))
    return FailWith(ErrorCode::ParseError, ParseErr);
  if (P->M.functions().empty())
    return FailWith(ErrorCode::ParseError, "module defines no functions");

  // Pre-pipeline structural verification: reject malformed input with a
  // recoverable error rather than feeding it to the vectorizer.
  for (const auto &F : P->M.functions()) {
    std::vector<std::string> Errors;
    if (!verifyFunction(*F, &Errors))
      return FailWith(ErrorCode::VerifyError,
                      "function '@" + F->getName() + "' is malformed: " +
                          (Errors.empty() ? "unknown" : Errors.front()));
  }

  // Entry resolution.
  if (!Req.EntryFunction.empty()) {
    P->Entry = P->M.getFunction(Req.EntryFunction);
    if (!P->Entry)
      return FailWith(ErrorCode::InvalidArgument,
                      "entry function '@" + Req.EntryFunction +
                          "' is not defined by the module");
  } else if (P->M.functions().size() == 1) {
    P->Entry = P->M.functions().front().get();
  } else {
    return FailWith(ErrorCode::InvalidArgument,
                    "module defines " +
                        std::to_string(P->M.functions().size()) +
                        " functions; an explicit entry function is required");
  }
  P->EntryName = P->Entry->getName();

  // The pipeline proper, function by function. One collector gathers the
  // whole module's decision trail in emission order.
  RemarkCollector RC;
  PipelineOptions PO;
  PO.EarlyCleanup = Req.EarlyCleanup;
  PO.LateCleanup = Req.LateCleanup;
  PO.Vectorizer = Req.Config;
  // Per-request sinks would race across pool workers; route the
  // vectorizer's counters into the service-wide (thread-safe) registry.
  PO.Vectorizer.Stats = Stats;
  // Cooperative mid-compile deadline: the BudgetTracker polls this at its
  // charge points, so an over-deadline attempt degrades to a budget
  // bailout (scalar fallback) instead of wedging the worker.
  PO.Vectorizer.Budgets.DeadlineSteadyNanos = AbsDeadlineNanos;
  PO.Instrument.Remarks = &RC;
  for (const auto &F : P->M.functions()) {
    PipelineResult R = runPassPipeline(*F, PO);
    P->Stats.mergeFrom(R.VecStats);
  }
  P->Remarks = RC.take();

  // The deadline may have expired mid-pipeline (the tracker already
  // degraded the attempt); the request itself still fails with the
  // retryable code rather than publishing under time pressure. This is
  // the same fault site's second probe per request: arming
  // `service.deadline.expire:2` exercises exactly this mid-compile path.
  if (deadlineExpired(AbsDeadlineNanos) ||
      faultPoint("service.deadline.expire")) {
    if (Stats)
      Stats->add("service.deadline.expired");
    return FailWith(ErrorCode::DeadlineExceeded,
                    "request deadline expired during compilation (" +
                        std::to_string(Req.DeadlineMillis) +
                        "ms budget); retry with a fresh deadline");
  }

  // Post-pipeline verification: corrupt output must never be published.
  for (const auto &F : P->M.functions()) {
    std::vector<std::string> Errors;
    if (!verifyFunction(*F, &Errors))
      return FailWith(ErrorCode::VerifyError,
                      "pipeline produced malformed IR for '@" +
                          F->getName() + "': " +
                          (Errors.empty() ? "unknown" : Errors.front()));
  }

  P->VectorizedText = toString(P->M);

  buildEngine(*P, Req);

  P->CompileNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  if (Stats) {
    Stats->add("service.compiles");
    Stats->add("service.compile.nanos",
               static_cast<int64_t>(P->CompileNanos));
  }

  Cache.fulfill(Key, P);

  // Best-effort publication to the persistent tier: a failed write only
  // means the next process pays a cold compile (counted, never fatal).
  if (Store.enabled()) {
    ArtifactStore::Record Rec;
    Rec.EntryName = P->EntryName;
    Rec.VectorizedText = P->VectorizedText;
    Rec.GraphsVectorized = P->Stats.GraphsVectorized;
    Rec.BudgetBailouts = P->Stats.BudgetBailouts;
    Store.store(Key, Rec);
  }

  if (Req.StrictBudgets && P->Stats.BudgetBailouts > 0)
    return Error::make(ErrorCode::BudgetExhausted,
                       "module '" + P->EntryName +
                           "': resource budget exhausted during "
                           "vectorization (" +
                           std::to_string(P->Stats.BudgetBailouts) +
                           " bailout(s); scalar fallback was cached)");

  CompiledUnit U;
  U.Program = std::move(P);
  U.CacheHit = false;
  U.Coalesced = false;
  return U;
}

void CompileService::buildEngine(CompiledProgram &P,
                                 const CompileRequest &Req) {
  // Bytecode-compile the entry once; every future hit reuses it.
  TargetCostModel TCM(Req.Config.Target);
  P.Engine = std::make_unique<ExecutionEngine>(
      *P.Entry,
      [TCM](const Instruction &I) { return TCM.executionCycles(I); });

  // Eagerly attempt the native JIT compile, so cache hits are served with
  // machine code already installed. Failure is not an error: runs degrade
  // to bytecode, and the remark stream records why the fast path is off
  // (`jit:unsupported-isa`, `jit:emit-abort`, ... — see docs/jit.md).
  if (!P.Engine->isNativeAvailable()) {
    P.Remarks.push_back(
        Remark::missed("jit", "NativeUnavailable", P.EntryName)
            .withDecision("jit:" + P.Engine->nativeDisabledReason())
            .withMessage("native JIT compile unavailable; runs degrade to "
                         "the bytecode engine"));
    if (Stats)
      Stats->add("service.jit.unavailable");
  } else {
    if (P.Engine->nativeFallbackOpCount() > 0)
      P.Remarks.push_back(
          Remark::missed("jit", "UnsupportedOp", P.EntryName)
              .withDecision("jit:unsupported-op")
              .withValues(P.Engine->nativeFallbackOpNames())
              .withMessage(
                  std::to_string(P.Engine->nativeFallbackOpCount()) +
                  " op(s) lowered through the scalar-call fallback"));
    // Record the allocator outcome so `jit:` remarks say whether a run was
    // produced with or without register allocation (the bisection axis the
    // --jit-regalloc / SNSLP_JIT_REGALLOC escape hatch flips).
    P.Remarks.push_back(
        Remark::passed("jit", "NativeCompiled", P.EntryName)
            .withDecision(P.Engine->nativeRegAllocEnabled()
                              ? "jit:regalloc-on"
                              : "jit:regalloc-off")
            .withMessage(
                std::to_string(P.Engine->nativeRegAllocValues()) +
                " value(s) register-resident, " +
                std::to_string(P.Engine->nativeRegAllocSpills()) +
                " spill(s), " +
                std::to_string(P.Engine->nativeRegAllocElidedStores()) +
                " elided store(s)"));
    if (Stats) {
      Stats->add("service.jit.compiles");
      Stats->add("service.jit.code.bytes",
                 static_cast<int64_t>(P.Engine->nativeCodeSize()));
      Stats->add("service.jit.regalloc.values",
                 static_cast<int64_t>(P.Engine->nativeRegAllocValues()));
      Stats->add("service.jit.regalloc.spills",
                 static_cast<int64_t>(P.Engine->nativeRegAllocSpills()));
    }
  }
}

std::shared_ptr<CompiledProgram>
CompileService::tryLoadFromStore(const CompileRequest &Req,
                                 const Digest128 &Key) {
  if (!Store.enabled())
    return nullptr;

  ArtifactStore::Record Rec;
  switch (Store.load(Key, Rec)) {
  case ArtifactStore::LoadState::Hit:
    break;
  case ArtifactStore::LoadState::Miss:
    return nullptr;
  case ArtifactStore::LoadState::Corrupt:
    // Already quarantined by the store; recompile from source.
    if (Stats)
      Stats->add("service.store.recompiles");
    return nullptr;
  case ArtifactStore::LoadState::IOError:
    return nullptr;
  }

  // Rebuild the unit from the stored (already vectorized) text. The
  // checksum passed, but the contents still go through the same
  // parse/verify gates as fresh input: any inconsistency degrades to a
  // recompile, which re-publishes over the bad entry.
  std::shared_ptr<CompiledProgram> P(new CompiledProgram());
  P->SourceText = Req.ModuleText;
  P->Key = Key;
  std::string ParseErr;
  if (!parseIR(Rec.VectorizedText, P->M, &ParseErr)) {
    if (Stats)
      Stats->add("service.store.recompiles");
    return nullptr;
  }
  for (const auto &F : P->M.functions()) {
    std::vector<std::string> Errors;
    if (!verifyFunction(*F, &Errors)) {
      if (Stats)
        Stats->add("service.store.recompiles");
      return nullptr;
    }
  }
  P->Entry = P->M.getFunction(Rec.EntryName);
  if (!P->Entry) {
    if (Stats)
      Stats->add("service.store.recompiles");
    return nullptr;
  }
  P->EntryName = Rec.EntryName;
  P->VectorizedText = Rec.VectorizedText;
  // Restore the cached-policy-relevant slice of the vectorizer stats so a
  // StrictBudgets request judges a disk hit exactly like a memory hit.
  P->Stats.GraphsVectorized = static_cast<unsigned>(Rec.GraphsVectorized);
  P->Stats.BudgetBailouts = static_cast<unsigned>(Rec.BudgetBailouts);
  P->Remarks.push_back(
      Remark::passed("service", "ArtifactStoreHit", P->EntryName)
          .withDecision("service:store-hit")
          .withMessage("unit rebuilt from the persistent artifact store; "
                       "vectorizer pipeline skipped"));
  buildEngine(*P, Req);
  return P;
}

std::future<Expected<CompiledUnit>> CompileService::submit(CompileRequest Req) {
  auto Promise = std::make_shared<std::promise<Expected<CompiledUnit>>>();
  std::future<Expected<CompiledUnit>> Future = Promise->get_future();
  // The deadline starts at submission: time spent queued counts against
  // it, which is what lets the dequeue check shed stale work.
  const uint64_t Abs = resolveDeadline(Req);
  ThreadPool::SubmitResult R = Pool.trySubmit(
      [this, Promise, Abs, Req = std::move(Req)]() mutable {
        Promise->set_value(compileSyncAt(Req, Abs));
      },
      MaxQueueDepth);
  switch (R) {
  case ThreadPool::SubmitResult::Accepted:
    break;
  case ThreadPool::SubmitResult::QueueFull:
    if (Stats) {
      Stats->add("service.requests");
      Stats->add("service.queue.rejected");
    }
    Promise->set_value(Error::make(
        ErrorCode::Overloaded,
        "compile queue is full (admission control, depth " +
            std::to_string(MaxQueueDepth) + "); retry with backoff"));
    break;
  case ThreadPool::SubmitResult::ShuttingDown:
    Promise->set_value(Error::make(ErrorCode::InvalidArgument,
                                   "compile service is shutting down"));
    break;
  }
  return Future;
}

void CompileService::submitAsync(
    CompileRequest Req, std::function<void(Expected<CompiledUnit>)> Done) {
  const uint64_t Abs = resolveDeadline(Req);
  ThreadPool::SubmitResult R = Pool.trySubmit(
      [this, Abs, Req = std::move(Req), Done]() mutable {
        Done(compileSyncAt(Req, Abs));
      },
      MaxQueueDepth);
  switch (R) {
  case ThreadPool::SubmitResult::Accepted:
    break;
  case ThreadPool::SubmitResult::QueueFull:
    if (Stats) {
      Stats->add("service.requests");
      Stats->add("service.queue.rejected");
    }
    Done(Error::make(ErrorCode::Overloaded,
                     "compile queue is full (admission control, depth " +
                         std::to_string(MaxQueueDepth) +
                         "); retry with backoff"));
    break;
  case ThreadPool::SubmitResult::ShuttingDown:
    Done(Error::make(ErrorCode::InvalidArgument,
                     "compile service is shutting down"));
    break;
  }
}

std::vector<std::future<Expected<CompiledUnit>>>
CompileService::submitAll(std::vector<CompileRequest> Reqs) {
  std::vector<std::future<Expected<CompiledUnit>>> Futures;
  Futures.reserve(Reqs.size());
  for (CompileRequest &Req : Reqs)
    Futures.push_back(submit(std::move(Req)));
  return Futures;
}
