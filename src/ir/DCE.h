//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dead code elimination. Run after vectorization to delete the scalar
/// instructions that were replaced by vector code; the compile-time
/// experiment (Fig. 11) depends on this mirroring the paper's pipeline,
/// where downstream passes process less code after vectorization.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_IR_DCE_H
#define SNSLP_IR_DCE_H

#include <cstddef>

namespace snslp {

class Function;

/// Deletes trivially dead instructions (no uses, no side effects) until a
/// fixpoint. Returns the number of instructions removed.
size_t runDeadCodeElimination(Function &F);

} // namespace snslp

#endif // SNSLP_IR_DCE_H
