//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder: convenience factory that creates instructions at an insertion
/// point, in the style of llvm::IRBuilder. Used by tests, kernels and the
/// SLP code generator.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_IR_IRBUILDER_H
#define SNSLP_IR_IRBUILDER_H

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"

#include <memory>
#include <string>

namespace snslp {

/// Creates instructions at a configurable insertion point.
class IRBuilder {
public:
  explicit IRBuilder(Context &Ctx) : Ctx(Ctx) {}

  /// Positions the builder at the end of \p BB.
  IRBuilder(BasicBlock *BB) : Ctx(BB->getContext()) { setInsertPointAtEnd(BB); }

  /// \name Insertion point management.
  /// @{
  void setInsertPointAtEnd(BasicBlock *BB) {
    InsertBB = BB;
    InsertPos = BB->end();
  }
  /// Inserts new instructions immediately before \p Inst.
  void setInsertPointBefore(Instruction *Inst) {
    InsertBB = Inst->getParent();
    InsertPos = InsertBB->getIterator(Inst);
  }
  BasicBlock *getInsertBlock() const { return InsertBB; }
  /// @}

  Context &getContext() const { return Ctx; }

  /// \name Constants.
  /// @{
  ConstantInt *getInt64(int64_t V) {
    return Ctx.getConstantInt(Ctx.getInt64Ty(), V);
  }
  ConstantInt *getInt32(int64_t V) {
    return Ctx.getConstantInt(Ctx.getInt32Ty(), V);
  }
  ConstantInt *getInt1(bool V) {
    return Ctx.getConstantInt(Ctx.getInt1Ty(), V ? 1 : 0);
  }
  ConstantFP *getDouble(double V) {
    return Ctx.getConstantFP(Ctx.getDoubleTy(), V);
  }
  ConstantFP *getFloat(double V) {
    return Ctx.getConstantFP(Ctx.getFloatTy(), V);
  }
  /// @}

  /// \name Instruction factories.
  /// @{
  Value *createBinOp(BinOpcode Op, Value *LHS, Value *RHS,
                     const std::string &Name = "") {
    return insert(std::make_unique<BinaryOperator>(Op, LHS, RHS), Name);
  }
  Value *createAdd(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(BinOpcode::Add, L, R, Name);
  }
  Value *createSub(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(BinOpcode::Sub, L, R, Name);
  }
  Value *createMul(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(BinOpcode::Mul, L, R, Name);
  }
  Value *createFAdd(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(BinOpcode::FAdd, L, R, Name);
  }
  Value *createFSub(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(BinOpcode::FSub, L, R, Name);
  }
  Value *createFMul(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(BinOpcode::FMul, L, R, Name);
  }
  Value *createFDiv(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(BinOpcode::FDiv, L, R, Name);
  }

  Value *createAlternateOp(std::vector<BinOpcode> LaneOps, Value *L, Value *R,
                           const std::string &Name = "") {
    return insert(
        std::make_unique<AlternateOp>(std::move(LaneOps), L, R), Name);
  }

  Value *createUnaryOp(UnaryOpcode Op, Value *V,
                       const std::string &Name = "") {
    return insert(std::make_unique<UnaryOperator>(Op, V), Name);
  }
  Value *createFNeg(Value *V, const std::string &Name = "") {
    return createUnaryOp(UnaryOpcode::FNeg, V, Name);
  }
  Value *createSqrt(Value *V, const std::string &Name = "") {
    return createUnaryOp(UnaryOpcode::Sqrt, V, Name);
  }
  Value *createFabs(Value *V, const std::string &Name = "") {
    return createUnaryOp(UnaryOpcode::Fabs, V, Name);
  }

  Value *createLoad(Type *Ty, Value *Ptr, const std::string &Name = "") {
    return insert(std::make_unique<LoadInst>(Ty, Ptr), Name);
  }
  Instruction *createStore(Value *Val, Value *Ptr) {
    return cast<Instruction>(
        insert(std::make_unique<StoreInst>(Val, Ptr), ""));
  }
  Value *createGEP(Type *ElemTy, Value *Ptr, Value *Index,
                   const std::string &Name = "") {
    return insert(std::make_unique<GEPInst>(ElemTy, Ptr, Index), Name);
  }

  Value *createICmp(ICmpPredicate Pred, Value *L, Value *R,
                    const std::string &Name = "") {
    return insert(std::make_unique<ICmpInst>(Pred, L, R), Name);
  }
  Value *createSelect(Value *Cond, Value *T, Value *F,
                      const std::string &Name = "") {
    return insert(std::make_unique<SelectInst>(Cond, T, F), Name);
  }
  PhiNode *createPhi(Type *Ty, const std::string &Name = "") {
    return cast<PhiNode>(insert(std::make_unique<PhiNode>(Ty), Name));
  }

  Instruction *createBr(BasicBlock *Target) {
    return cast<Instruction>(
        insert(std::make_unique<BranchInst>(Target), ""));
  }
  Instruction *createCondBr(Value *Cond, BasicBlock *TrueBB,
                            BasicBlock *FalseBB) {
    return cast<Instruction>(
        insert(std::make_unique<BranchInst>(Cond, TrueBB, FalseBB), ""));
  }
  Instruction *createRet(Value *V = nullptr) {
    return cast<Instruction>(insert(std::make_unique<RetInst>(Ctx, V), ""));
  }

  Value *createInsertElement(Value *Vec, Value *Scalar, unsigned Lane,
                             const std::string &Name = "") {
    return insert(std::make_unique<InsertElementInst>(Vec, Scalar, Lane),
                  Name);
  }
  Value *createExtractElement(Value *Vec, unsigned Lane,
                              const std::string &Name = "") {
    return insert(std::make_unique<ExtractElementInst>(Vec, Lane), Name);
  }
  Value *createShuffleVector(Value *V1, Value *V2, std::vector<int> Mask,
                             const std::string &Name = "") {
    return insert(
        std::make_unique<ShuffleVectorInst>(V1, V2, std::move(Mask)), Name);
  }
  /// @}

private:
  Value *insert(std::unique_ptr<Instruction> Inst, const std::string &Name) {
    assert(InsertBB && "builder has no insertion point");
    if (!Name.empty())
      Inst->setName(Name);
    return InsertBB->insert(InsertPos, std::move(Inst));
  }

  Context &Ctx;
  BasicBlock *InsertBB = nullptr;
  BasicBlock::iterator InsertPos;
};

} // namespace snslp

#endif // SNSLP_IR_IRBUILDER_H
