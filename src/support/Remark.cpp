//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Remark.h"

#include <cctype>
#include <cstdio>
#include <sstream>

using namespace snslp;

const char *snslp::getRemarkKindName(RemarkKind Kind) {
  switch (Kind) {
  case RemarkKind::Passed:
    return "passed";
  case RemarkKind::Missed:
    return "missed";
  case RemarkKind::Analysis:
    return "analysis";
  }
  return "analysis";
}

bool snslp::parseRemarkKindName(const std::string &Name, RemarkKind &Kind) {
  if (Name == "passed")
    Kind = RemarkKind::Passed;
  else if (Name == "missed")
    Kind = RemarkKind::Missed;
  else if (Name == "analysis")
    Kind = RemarkKind::Analysis;
  else
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// YAML emission
//===----------------------------------------------------------------------===//

namespace {

/// Renders \p S as a single-quoted YAML scalar. Single quotes are doubled
/// (the YAML escaping rule); newlines — which no emitted remark contains —
/// are replaced by spaces to keep the scalar on one line.
std::string yamlQuote(const std::string &S) {
  std::string Out = "'";
  for (char C : S) {
    if (C == '\'')
      Out += "''";
    else if (C == '\n' || C == '\r')
      Out += ' ';
    else
      Out += C;
  }
  Out += '\'';
  return Out;
}

} // namespace

void snslp::printRemarkYAML(const Remark &R, std::ostream &OS) {
  OS << "--- !" << getRemarkKindName(R.Kind) << "\n";
  OS << "pass:     " << yamlQuote(R.Pass) << "\n";
  OS << "name:     " << yamlQuote(R.Name) << "\n";
  OS << "function: " << yamlQuote(R.FunctionName) << "\n";
  if (!R.Decision.empty())
    OS << "decision: " << yamlQuote(R.Decision) << "\n";
  if (!R.Values.empty()) {
    OS << "values:   [ ";
    for (size_t I = 0; I < R.Values.size(); ++I) {
      if (I)
        OS << ", ";
      OS << yamlQuote(R.Values[I]);
    }
    OS << " ]\n";
  }
  if (R.HasCost) {
    OS << "scalarCost: " << R.ScalarCost << "\n";
    OS << "vectorCost: " << R.VectorCost << "\n";
  }
  if (R.HasAPO) {
    OS << "apoFamily: " << yamlQuote(R.APOFamily) << "\n";
    OS << "trunkSize: " << R.TrunkSize << "\n";
    OS << "apoSlots:  " << yamlQuote(R.APOSlots) << "\n";
  }
  if (!R.Message.empty())
    OS << "message:  " << yamlQuote(R.Message) << "\n";
  OS << "...\n";
}

std::string snslp::renderRemarksYAML(const std::vector<Remark> &Remarks) {
  std::ostringstream OS;
  for (const Remark &R : Remarks)
    printRemarkYAML(R, OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// JSON emission
//===----------------------------------------------------------------------===//

namespace {

std::string jsonQuote(const std::string &S) {
  std::string Out = "\"";
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
  return Out;
}

} // namespace

void snslp::printRemarkJSON(const Remark &R, std::ostream &OS) {
  OS << "{\"kind\": " << jsonQuote(getRemarkKindName(R.Kind))
     << ", \"pass\": " << jsonQuote(R.Pass) << ", \"name\": "
     << jsonQuote(R.Name) << ", \"function\": " << jsonQuote(R.FunctionName);
  if (!R.Decision.empty())
    OS << ", \"decision\": " << jsonQuote(R.Decision);
  if (!R.Values.empty()) {
    OS << ", \"values\": [";
    for (size_t I = 0; I < R.Values.size(); ++I) {
      if (I)
        OS << ", ";
      OS << jsonQuote(R.Values[I]);
    }
    OS << "]";
  }
  if (R.HasCost)
    OS << ", \"scalarCost\": " << R.ScalarCost
       << ", \"vectorCost\": " << R.VectorCost;
  if (R.HasAPO)
    OS << ", \"apo\": {\"family\": " << jsonQuote(R.APOFamily)
       << ", \"trunkSize\": " << R.TrunkSize
       << ", \"slots\": " << jsonQuote(R.APOSlots) << "}";
  if (!R.Message.empty())
    OS << ", \"message\": " << jsonQuote(R.Message);
  OS << "}";
}

std::string snslp::renderRemarksJSON(const std::vector<Remark> &Remarks) {
  std::ostringstream OS;
  OS << "[";
  for (size_t I = 0; I < Remarks.size(); ++I) {
    OS << (I ? ",\n " : "\n ");
    printRemarkJSON(Remarks[I], OS);
  }
  OS << "\n]\n";
  return OS.str();
}

std::string snslp::renderRemarkText(const Remark &R) {
  std::ostringstream OS;
  OS << getRemarkKindName(R.Kind) << " [" << R.Pass << "] " << R.Name;
  if (!R.FunctionName.empty())
    OS << " @" << R.FunctionName;
  if (!R.Decision.empty())
    OS << " decision=" << R.Decision;
  if (!R.Values.empty()) {
    OS << " values=";
    for (size_t I = 0; I < R.Values.size(); ++I)
      OS << (I ? ",%" : "%") << R.Values[I];
  }
  if (R.HasCost)
    OS << " cost=" << R.VectorCost << " (scalar " << R.ScalarCost
       << ", delta " << R.costDelta() << ")";
  if (R.HasAPO)
    OS << " apo=" << R.APOFamily << "/trunk" << R.TrunkSize << "/"
       << R.APOSlots;
  if (!R.Message.empty())
    OS << ": " << R.Message;
  return OS.str();
}

//===----------------------------------------------------------------------===//
// YAML parsing (the subset renderRemarksYAML emits)
//===----------------------------------------------------------------------===//

namespace {

bool setParseError(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

/// Parses a single-quoted scalar starting at \p Pos in \p S; advances
/// \p Pos past the closing quote. Returns false on malformed input.
bool parseYAMLQuoted(const std::string &S, size_t &Pos, std::string &Out) {
  if (Pos >= S.size() || S[Pos] != '\'')
    return false;
  ++Pos;
  Out.clear();
  while (Pos < S.size()) {
    if (S[Pos] == '\'') {
      if (Pos + 1 < S.size() && S[Pos + 1] == '\'') {
        Out += '\'';
        Pos += 2;
        continue;
      }
      ++Pos;
      return true;
    }
    Out += S[Pos++];
  }
  return false; // Unterminated.
}

/// Parses a `[ 'a', 'b' ]` flow sequence of single-quoted scalars.
bool parseYAMLFlowSeq(const std::string &S, std::vector<std::string> &Out) {
  std::string T = trim(S);
  if (T.size() < 2 || T.front() != '[' || T.back() != ']')
    return false;
  size_t Pos = 1;
  const std::string Body = T;
  while (true) {
    while (Pos < Body.size() && (Body[Pos] == ' ' || Body[Pos] == ','))
      ++Pos;
    if (Pos >= Body.size())
      return false;
    if (Body[Pos] == ']')
      return true;
    std::string Elem;
    if (!parseYAMLQuoted(Body, Pos, Elem))
      return false;
    Out.push_back(std::move(Elem));
  }
}

} // namespace

bool snslp::parseRemarksYAML(const std::string &Text,
                             std::vector<Remark> &Out, std::string *Err) {
  Out.clear();
  std::istringstream In(Text);
  std::string Line;
  bool InDoc = false;
  Remark Cur;
  unsigned LineNo = 0;
  auto Bad = [&](const std::string &Msg) {
    return setParseError(Err, "YAML line " + std::to_string(LineNo) + ": " +
                                  Msg);
  };

  while (std::getline(In, Line)) {
    ++LineNo;
    std::string T = trim(Line);
    if (T.empty())
      continue;
    if (T.rfind("--- !", 0) == 0) {
      if (InDoc)
        return Bad("new document before '...' terminator");
      Cur = Remark();
      if (!parseRemarkKindName(T.substr(5), Cur.Kind))
        return Bad("unknown remark kind '" + T.substr(5) + "'");
      InDoc = true;
      continue;
    }
    if (T == "...") {
      if (!InDoc)
        return Bad("'...' outside a document");
      Out.push_back(std::move(Cur));
      InDoc = false;
      continue;
    }
    if (!InDoc)
      return Bad("content outside a document");
    size_t Colon = T.find(':');
    if (Colon == std::string::npos)
      return Bad("expected 'key: value'");
    std::string Key = trim(T.substr(0, Colon));
    std::string Value = trim(T.substr(Colon + 1));

    auto Quoted = [&](std::string &Dst) {
      size_t Pos = 0;
      if (!parseYAMLQuoted(Value, Pos, Dst) || trim(Value.substr(Pos)) != "")
        return false;
      return true;
    };
    auto Int = [&](int &Dst) {
      try {
        Dst = std::stoi(Value);
      } catch (...) {
        return false;
      }
      return true;
    };

    bool Ok = true;
    if (Key == "pass")
      Ok = Quoted(Cur.Pass);
    else if (Key == "name")
      Ok = Quoted(Cur.Name);
    else if (Key == "function")
      Ok = Quoted(Cur.FunctionName);
    else if (Key == "decision")
      Ok = Quoted(Cur.Decision);
    else if (Key == "message")
      Ok = Quoted(Cur.Message);
    else if (Key == "values")
      Ok = parseYAMLFlowSeq(Value, Cur.Values);
    else if (Key == "scalarCost") {
      Cur.HasCost = true;
      Ok = Int(Cur.ScalarCost);
    } else if (Key == "vectorCost") {
      Cur.HasCost = true;
      Ok = Int(Cur.VectorCost);
    } else if (Key == "apoFamily") {
      Cur.HasAPO = true;
      Ok = Quoted(Cur.APOFamily);
    } else if (Key == "trunkSize") {
      Cur.HasAPO = true;
      int V = 0;
      Ok = Int(V) && V >= 0;
      Cur.TrunkSize = static_cast<unsigned>(V);
    } else if (Key == "apoSlots") {
      Cur.HasAPO = true;
      Ok = Quoted(Cur.APOSlots);
    } else {
      return Bad("unknown key '" + Key + "'");
    }
    if (!Ok)
      return Bad("malformed value for '" + Key + "'");
  }
  if (InDoc)
    return setParseError(Err, "YAML: unterminated document");
  return true;
}

//===----------------------------------------------------------------------===//
// JSON parsing (the subset renderRemarksJSON emits)
//===----------------------------------------------------------------------===//

namespace {

/// A minimal recursive-descent parser for the remark JSON schema.
class JSONParser {
public:
  JSONParser(const std::string &Text, std::string *Err)
      : S(Text), Err(Err) {}

  bool parseStream(std::vector<Remark> &Out) {
    Out.clear();
    skipWS();
    if (!expect('['))
      return false;
    skipWS();
    if (peek() == ']') {
      ++Pos;
      return tailIsClean();
    }
    while (true) {
      Remark R;
      if (!parseRemark(R))
        return false;
      Out.push_back(std::move(R));
      skipWS();
      if (peek() == ',') {
        ++Pos;
        skipWS();
        continue;
      }
      if (!expect(']'))
        return false;
      return tailIsClean();
    }
  }

private:
  bool fail(const std::string &Msg) {
    return setParseError(Err, "JSON offset " + std::to_string(Pos) + ": " +
                                  Msg);
  }
  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWS() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool expect(char C) {
    skipWS();
    if (peek() != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }
  bool tailIsClean() {
    skipWS();
    if (Pos != S.size())
      return fail("trailing content after the remark array");
    return true;
  }

  bool parseString(std::string &Out) {
    skipWS();
    if (peek() != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        return fail("bad escape");
      char E = S[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > S.size())
          return fail("bad \\u escape");
        unsigned V = 0;
        for (int I = 0; I < 4; ++I) {
          char H = S[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        // The emitter only produces \u00XX control escapes; decode the
        // low byte directly (ASCII-range payload).
        Out += static_cast<char>(V & 0xFF);
        break;
      }
      default:
        return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseInt(int &Out) {
    skipWS();
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos == Start)
      return fail("expected integer");
    try {
      Out = std::stoi(S.substr(Start, Pos - Start));
    } catch (...) {
      return fail("integer out of range");
    }
    return true;
  }

  bool parseStringArray(std::vector<std::string> &Out) {
    if (!expect('['))
      return false;
    skipWS();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      std::string Elem;
      if (!parseString(Elem))
        return false;
      Out.push_back(std::move(Elem));
      skipWS();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      return expect(']');
    }
  }

  bool parseAPO(Remark &R) {
    if (!expect('{'))
      return false;
    R.HasAPO = true;
    while (true) {
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!expect(':'))
        return false;
      bool Ok = true;
      if (Key == "family")
        Ok = parseString(R.APOFamily);
      else if (Key == "trunkSize") {
        int V = 0;
        Ok = parseInt(V) && V >= 0;
        R.TrunkSize = static_cast<unsigned>(V);
      } else if (Key == "slots")
        Ok = parseString(R.APOSlots);
      else
        return fail("unknown apo key '" + Key + "'");
      if (!Ok)
        return false;
      skipWS();
      if (peek() == ',') {
        ++Pos;
        skipWS();
        continue;
      }
      return expect('}');
    }
  }

  bool parseRemark(Remark &R) {
    if (!expect('{'))
      return false;
    while (true) {
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!expect(':'))
        return false;
      bool Ok = true;
      if (Key == "kind") {
        std::string KindName;
        Ok = parseString(KindName) && parseRemarkKindName(KindName, R.Kind);
      } else if (Key == "pass")
        Ok = parseString(R.Pass);
      else if (Key == "name")
        Ok = parseString(R.Name);
      else if (Key == "function")
        Ok = parseString(R.FunctionName);
      else if (Key == "decision")
        Ok = parseString(R.Decision);
      else if (Key == "message")
        Ok = parseString(R.Message);
      else if (Key == "values")
        Ok = parseStringArray(R.Values);
      else if (Key == "scalarCost") {
        R.HasCost = true;
        Ok = parseInt(R.ScalarCost);
      } else if (Key == "vectorCost") {
        R.HasCost = true;
        Ok = parseInt(R.VectorCost);
      } else if (Key == "apo")
        Ok = parseAPO(R);
      else
        return fail("unknown key '" + Key + "'");
      if (!Ok)
        return false;
      skipWS();
      if (peek() == ',') {
        ++Pos;
        skipWS();
        continue;
      }
      return expect('}');
    }
  }

  const std::string &S;
  std::string *Err;
  size_t Pos = 0;
};

} // namespace

bool snslp::parseRemarksJSON(const std::string &Text,
                             std::vector<Remark> &Out, std::string *Err) {
  return JSONParser(Text, Err).parseStream(Out);
}
