//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predecoded register-machine form of one IR function and the VM that
/// executes it. Compilation happens once per function and produces:
///
///  - a flat register file layout: every SSA value (argument, instruction
///    result, interned constant) is assigned a fixed range of 64-bit lane
///    cells, so operand fetch is a single indexed access with no RTValue
///    copies and no hashing on the hot path;
///  - a constant pool: constants are materialized once, in their *native*
///    representation (f32 lanes hold float bit patterns, not doubles), into
///    a register-file template that each run starts from;
///  - a flat instruction stream of *specialized* opcodes: per-TypeKind
///    binop kernels that do native i32/i64/f32/f64 lane math (no
///    double round-trips), dedicated scalar vs. vector variants, and fused
///    GEP+load / GEP+store forms for the dominant addressing pattern;
///  - per-edge phi copy lists (parallel-copy semantics) plus per-block
///    aggregate step/cycle counters, so the hot loop does no per-phi
///    matching and no per-instruction floating-point accumulation.
///
/// Numeric results are bit-identical to the reference tree-walking
/// interpreter: for f32, computing each operation in double precision and
/// rounding to float (the reference) equals native float arithmetic for
/// +,-,*,/ and sqrt because double carries more than 2x24+2 mantissa bits
/// (innocuous double rounding). The differential kernel-suite test asserts
/// this bit-exactness on every kernel under every vectorizer mode.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_INTERP_BYTECODE_H
#define SNSLP_INTERP_BYTECODE_H

#include "interp/RTValue.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace snslp {

class Function;
class Instruction;

/// Specialized opcodes of the register machine. Naming: V* = vector form
/// (lane count in BCInst::Lanes), *G = fused GEP addressing (base + index *
/// scale computed inside the memory step).
enum class BCOp : uint8_t {
  // Scalar integer binops (native i32/i64 lane math, two's complement).
  AddI32, SubI32, MulI32,
  AddI64, SubI64, MulI64,
  // Scalar FP binops (native precision; f32 never round-trips via double).
  FAddF32, FSubF32, FMulF32, FDivF32,
  FAddF64, FSubF64, FMulF64, FDivF64,
  // Vector binops.
  VAddI32, VSubI32, VMulI32,
  VAddI64, VSubI64, VMulI64,
  VFAddF32, VFSubF32, VFMulF32, VFDivF32,
  VFAddF64, VFSubF64, VFMulF64, VFDivF64,
  /// Catch-all binop for rare kinds (i1 arithmetic); Aux = BinOpcode,
  /// Imm = TypeKind. Loops over Lanes.
  BinGeneric,

  // Unary FP ops; loop over Lanes (scalar = 1-lane loop).
  FNegF32, FNegF64, SqrtF32, SqrtF64, FabsF32, FabsF64,

  // Alternate (per-lane direct/inverse) vector ops; Aux bit L set means
  // lane L applies the family's inverse operator.
  AltAddSubI32, AltAddSubI64,
  AltFAddSubF32, AltFAddSubF64,
  AltFMulDivF32, AltFMulDivF64,
  /// Catch-all alternate op: Imm = index into the lane-opcode side table,
  /// Aux unused.
  AltGeneric,

  // Loads: Dst = result regs, A = pointer reg.
  LdI1, LdI32, LdI64, LdF32, LdF64,
  VLdI32, VLdI64, VLdF32, VLdF64,
  // Fused GEP+load: A = base pointer reg, B = index reg, Imm = elem size.
  LdI1G, LdI32G, LdI64G, LdF32G, LdF64G,
  VLdI32G, VLdI64G, VLdF32G, VLdF64G,

  // Stores: A = value reg, B = pointer reg.
  StI1, StI32, StI64, StF32, StF64,
  VStI32, VStI64, VStF32, VStF64,
  // Fused GEP+store: A = value reg, B = base pointer reg, Dst = index reg,
  // Imm = elem size.
  StI1G, StI32G, StI64G, StF32G, StF64G,
  VStI32G, VStI64G, VStF32G, VStF64G,

  /// Standalone pointer arithmetic: Dst = A + B * Imm.
  Gep,
  /// Integer compare: Dst = pred(A, B); Aux = ICmpPredicate.
  Cmp,
  /// Dst = (A != 0) ? regs[B] : regs[Imm]; copies Lanes cells.
  SelectOp,
  /// Copy vector A to Dst (Lanes cells), then Dst[Aux] = scalar reg B.
  Ins,
  /// Dst = A's lane Aux (one cell).
  Ext,
  /// Shuffle: Dst built from A, B; Imm = mask table index, Aux = input
  /// lane count, Lanes = output lane count.
  Shuf,
  /// Unconditional branch: Imm = edge index.
  Br,
  /// Conditional branch: A = condition reg, Dst = true edge index,
  /// Imm = false edge index.
  CondBr,
  /// Return: A = value reg (RetVoid has none); Aux = scalar TypeKind of
  /// the result, Lanes = lane count.
  RetVal, RetVoid,
};

/// One predecoded instruction. 20 bytes packed; the hot loop reads at most
/// one of these per IR instruction (fused forms cover two).
struct BCInst {
  BCOp Op;
  uint8_t Lanes = 1; ///< Result/operand lane count for looping forms.
  uint8_t Aux = 0;   ///< Opcode/predicate/lane/APO-mask, per BCOp docs.
  uint32_t Dst = 0;  ///< Result register (first lane cell), or reused.
  uint32_t A = 0;    ///< First operand register.
  uint32_t B = 0;    ///< Second operand register.
  int32_t Imm = 0;   ///< Scale / edge index / table index, per BCOp docs.
};

/// One CFG edge of the predecoded function: the jump target plus the phi
/// parallel-copy list and the *target block's* aggregate accounting
/// (dynamic steps, vector steps, simulated cycles — phis included), added
/// in one shot when the edge is taken.
struct BCEdge {
  uint32_t TargetPC = 0;
  /// Parallel phi copies (dst cell, src cell, cell count). Sources are
  /// all read before any destination is written.
  struct Copy {
    uint32_t Dst;
    uint32_t Src;
    uint16_t Cells;
  };
  std::vector<Copy> Copies;
  /// True when some copy destination overlaps another copy's source (phi
  /// swap patterns); forces the two-phase scratch path.
  bool NeedsScratch = false;
  // Aggregate accounting of the target block (every IR instruction in the
  // block, phis included — identical totals to per-step accounting).
  uint64_t AddSteps = 0;
  uint64_t AddVectorSteps = 0;
  double AddCycles = 0.0;
};

/// Computes the simulated cycle cost of one instruction (see
/// ExecutionEngine.h); duplicated typedef to keep this header light.
using BCCycleFn = std::function<double(const Instruction &)>;

/// A function compiled to predecoded register-machine form, plus the VM
/// that executes it (ExecutionEngine wraps this behind the public API).
class BytecodeFunction {
public:
  /// Compiles \p F. \p Cycles, when non-null, is evaluated once per IR
  /// instruction here; runs then accumulate precomputed per-block sums.
  BytecodeFunction(const Function &F, const BCCycleFn &Cycles);

  /// VM state shared across runs of one engine (kept to avoid re-allocating
  /// the register file on every run).
  struct VMState {
    std::vector<uint64_t> Regs;
    std::vector<uint64_t> Scratch;
  };

  /// Outcome of one bytecode execution (mirrors ExecutionResult without
  /// depending on ExecutionEngine.h; the engine converts).
  struct RunResult {
    bool Ok = false;
    std::string Error;
    Trap TrapKind = Trap::None; ///< Machine-readable failure class.
    uint64_t StepsExecuted = 0;
    uint64_t VectorSteps = 0;
    double Cycles = 0.0;
    RTValue ReturnValue;
  };

  /// Executes over \p Args. \p MemoryRanges, when non-empty, activates the
  /// interpreter's sanitizer mode (every access bounds-checked).
  RunResult run(VMState &State, const std::vector<RTValue> &Args,
                uint64_t MaxSteps,
                const std::vector<std::pair<uint64_t, uint64_t>>
                    &MemoryRanges) const;

  unsigned getNumArgs() const { return NumArgs; }
  size_t getNumRegCells() const { return RegInit.size(); }
  size_t getCodeSize() const { return Code.size(); }

private:
  bool checkAccess(
      const std::vector<std::pair<uint64_t, uint64_t>> &Ranges,
      uint64_t Addr, unsigned Size) const {
    for (const auto &[Lo, Hi] : Ranges)
      if (Addr >= Lo && Addr + Size <= Hi)
        return true;
    return false;
  }

  /// Converts one native register value back to the RTValue boundary
  /// convention (f32 lanes widen to double bit patterns).
  RTValue makeBoundaryValue(const std::vector<uint64_t> &Regs, uint32_t Reg,
                            TypeKind Kind, unsigned Lanes) const;

  std::vector<BCInst> Code;
  std::vector<BCEdge> Edges;
  /// Register-file template: constant pool materialized, the rest zero.
  std::vector<uint64_t> RegInit;
  /// Entry accounting (the entry block's aggregate).
  uint64_t EntrySteps = 0;
  uint64_t EntryVectorSteps = 0;
  double EntryCycles = 0.0;
  unsigned NumArgs = 0;
  /// Per-argument (cell offset, scalar kind) for boundary conversion.
  std::vector<std::pair<uint32_t, TypeKind>> ArgSlots;
  /// Side tables for rare forms.
  std::vector<std::vector<int>> ShuffleMasks;
  std::vector<std::vector<uint8_t>> AltLaneOps; ///< BinOpcode per lane.
  /// PC -> defining IR instruction, for diagnostics only (never touched on
  /// the hot path).
  std::vector<const Instruction *> PCToInst;
};

} // namespace snslp

#endif // SNSLP_INTERP_BYTECODE_H
