//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe persistent artifact store: the on-disk tier behind the
/// in-memory CompileCache LRU. Entries are content-addressed by the same
/// Digest128 request key the memory cache uses, so a daemon restarted on
/// the same store directory repopulates its warm path without recompiling.
///
/// Durability contract (docs/service.md):
///  - **Atomic publication.** An entry is written to `tmp/<key>.<pid>.tmp`
///    (write + fsync) and then rename(2)d to `<key>.art`. A `kill -9` at
///    any point leaves either no entry or a complete one — readers never
///    observe a half-written file at the published path.
///  - **Verified load.** Every entry embeds an FNV-1a checksum over its
///    payload; a mismatch (truncation, bit rot, torn write on a
///    non-atomic filesystem) classifies the entry as Corrupt.
///  - **Quarantine, never serve, never die.** Corrupt entries are moved
///    aside to `quarantine/` and reported as a miss: the service
///    recompiles from source and re-publishes a fresh entry. Store I/O
///    errors are likewise absorbed — the store is an accelerator, not a
///    dependency, so every failure degrades to "compile it again".
///
/// Fault sites `service.store.corrupt` and `service.store.io-error`
/// (support/FaultInjection.h) force these paths deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SERVICE_ARTIFACTSTORE_H
#define SNSLP_SERVICE_ARTIFACTSTORE_H

#include "support/Error.h"
#include "support/Hashing.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace snslp {

class StatsRegistry;

/// On-disk content-addressed artifact store. Thread-safe: writes go
/// through process-unique temp files and an atomic rename; loads read
/// published files only.
class ArtifactStore {
public:
  /// The persisted slice of a CompiledProgram: enough to rebuild the unit
  /// (re-parse + engine build) without re-running the vectorizer pipeline.
  /// GraphsVectorized/BudgetBailouts are persisted so that cache policy
  /// that reads them (StrictBudgets re-checks, remark trails) behaves the
  /// same on a disk hit as on a memory hit.
  struct Record {
    std::string EntryName;
    std::string VectorizedText;
    uint64_t GraphsVectorized = 0;
    uint64_t BudgetBailouts = 0;
  };

  enum class LoadState {
    Hit,     ///< Record loaded and checksum-verified.
    Miss,    ///< No entry published under this key.
    Corrupt, ///< Entry failed verification; it has been quarantined.
    IOError, ///< Entry exists but could not be read (permissions, ...).
  };

  /// \p Dir is the store root; empty disables the store (every load
  /// misses, every store is a no-op). \p Stats receives the
  /// `service.store.*` counters (not owned, may be null).
  explicit ArtifactStore(std::string Dir, StatsRegistry *Stats = nullptr);

  bool enabled() const { return !Dir.empty(); }
  const std::string &dir() const { return Dir; }

  /// Creates the store layout (`<dir>`, `<dir>/tmp`, `<dir>/quarantine`)
  /// and sweeps orphaned temp files from crashed writers. Returns an
  /// IOError when the directories cannot be created; callers may treat
  /// that as "store disabled" rather than fatal.
  Error prepare();

  /// Loads the entry for \p Key into \p Out. Corrupt entries are
  /// quarantined (moved to `quarantine/`, counted) before returning.
  LoadState load(const Digest128 &Key, Record &Out);

  /// Publishes \p Rec under \p Key (write temp + fsync + rename).
  /// Best-effort: returns false on any I/O failure (counted in
  /// `service.store.io-errors`), which callers ignore — the artifact
  /// simply is not persisted.
  bool store(const Digest128 &Key, const Record &Rec);

  /// Removes leftover `tmp/*` files (crashed mid-write publications).
  /// Returns the number removed. Called by prepare().
  size_t sweepTemp();

  /// Published path for \p Key (exists only after a successful store()).
  std::string entryPath(const Digest128 &Key) const;

  /// \name Counters (also mirrored into the StatsRegistry when present).
  /// @{
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t writes() const { return Writes.load(std::memory_order_relaxed); }
  uint64_t quarantined() const {
    return Quarantined.load(std::memory_order_relaxed);
  }
  uint64_t ioErrors() const {
    return IOErrors.load(std::memory_order_relaxed);
  }
  /// @}

private:
  /// Moves the published entry for \p Key into `quarantine/` so it can
  /// never be served again (best-effort unlink fallback).
  void quarantine(const Digest128 &Key);
  void bump(std::atomic<uint64_t> &C, const char *StatName);

  std::string Dir;
  StatsRegistry *Stats;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Writes{0};
  std::atomic<uint64_t> Quarantined{0};
  std::atomic<uint64_t> IOErrors{0};
};

} // namespace snslp

#endif // SNSLP_SERVICE_ARTIFACTSTORE_H
