# Empty compiler generated dependencies file for example_irtool.
# This may be replaced when dependencies are built.
