//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "passes/ConstantFolding.h"

#include "ir/Context.h"
#include "ir/Function.h"

#include <cmath>
#include <vector>

using namespace snslp;

namespace {

/// Evaluates a scalar binary operation over constants with the same
/// semantics as the interpreter (two's-complement wrap, FP per kind).
Constant *foldBinOp(BinOpcode Op, const Constant *L, const Constant *R) {
  if (const auto *LI = dyn_cast<ConstantInt>(L)) {
    const auto *RI = cast<ConstantInt>(R);
    uint64_t A = static_cast<uint64_t>(LI->getValue());
    uint64_t B = static_cast<uint64_t>(RI->getValue());
    int64_t Result;
    switch (Op) {
    case BinOpcode::Add:
      Result = static_cast<int64_t>(A + B);
      break;
    case BinOpcode::Sub:
      Result = static_cast<int64_t>(A - B);
      break;
    case BinOpcode::Mul:
      Result = static_cast<int64_t>(A * B);
      break;
    default:
      return nullptr; // FP opcode over ints cannot verify anyway.
    }
    return ConstantInt::get(LI->getType(), Result);
  }
  const auto *LF = dyn_cast<ConstantFP>(L);
  if (!LF)
    return nullptr;
  const auto *RF = cast<ConstantFP>(R);
  double A = LF->getValue();
  double B = RF->getValue();
  double Result;
  switch (Op) {
  case BinOpcode::FAdd:
    Result = A + B;
    break;
  case BinOpcode::FSub:
    Result = A - B;
    break;
  case BinOpcode::FMul:
    Result = A * B;
    break;
  case BinOpcode::FDiv:
    Result = A / B;
    break;
  default:
    return nullptr;
  }
  return ConstantFP::get(LF->getType(), Result);
}

bool foldPredicate(ICmpPredicate Pred, int64_t A, int64_t B) {
  switch (Pred) {
  case ICmpPredicate::EQ:
    return A == B;
  case ICmpPredicate::NE:
    return A != B;
  case ICmpPredicate::SLT:
    return A < B;
  case ICmpPredicate::SLE:
    return A <= B;
  case ICmpPredicate::SGT:
    return A > B;
  case ICmpPredicate::SGE:
    return A >= B;
  case ICmpPredicate::ULT:
    return static_cast<uint64_t>(A) < static_cast<uint64_t>(B);
  case ICmpPredicate::ULE:
    return static_cast<uint64_t>(A) <= static_cast<uint64_t>(B);
  }
  return false;
}

} // namespace

Constant *snslp::tryConstantFold(const Instruction &Inst) {
  // All operands must be constants.
  for (unsigned I = 0, E = Inst.getNumOperands(); I != E; ++I)
    if (!isa<Constant>(Inst.getOperand(I)))
      return nullptr;

  switch (Inst.getKind()) {
  case ValueKind::BinOp: {
    const auto &BO = cast<BinaryOperator>(Inst);
    if (BO.getType()->isVector())
      return nullptr; // Vector constant folding is not needed here.
    return foldBinOp(BO.getOpcode(), cast<Constant>(BO.getLHS()),
                     cast<Constant>(BO.getRHS()));
  }
  case ValueKind::UnaryOp: {
    const auto &UO = cast<UnaryOperator>(Inst);
    const auto *C = dyn_cast<ConstantFP>(UO.getOperand0());
    if (!C)
      return nullptr;
    double V = C->getValue();
    switch (UO.getOpcode()) {
    case UnaryOpcode::FNeg:
      V = -V;
      break;
    case UnaryOpcode::Sqrt:
      V = std::sqrt(V);
      break;
    case UnaryOpcode::Fabs:
      V = std::fabs(V);
      break;
    }
    return ConstantFP::get(C->getType(), V);
  }
  case ValueKind::ICmp: {
    const auto &Cmp = cast<ICmpInst>(Inst);
    const auto *L = dyn_cast<ConstantInt>(Cmp.getLHS());
    const auto *R = dyn_cast<ConstantInt>(Cmp.getRHS());
    if (!L || !R)
      return nullptr;
    bool V = foldPredicate(Cmp.getPredicate(), L->getValue(), R->getValue());
    return ConstantInt::get(Inst.getType()->getContext().getInt1Ty(),
                            V ? 1 : 0);
  }
  case ValueKind::Select: {
    const auto &Sel = cast<SelectInst>(Inst);
    const auto *C = dyn_cast<ConstantInt>(Sel.getCondition());
    if (!C)
      return nullptr;
    return cast<Constant>(C->getValue() ? Sel.getTrueValue()
                                        : Sel.getFalseValue());
  }
  case ValueKind::ExtractElement: {
    const auto &EE = cast<ExtractElementInst>(Inst);
    if (const auto *CV = dyn_cast<ConstantVector>(EE.getVectorOperand()))
      return CV->getElement(EE.getLane());
    return nullptr;
  }
  default:
    return nullptr;
  }
}

size_t snslp::runConstantFolding(Function &F) {
  size_t Folded = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F.blocks()) {
      // Snapshot: folding mutates the instruction list.
      std::vector<Instruction *> Insts;
      for (const auto &Inst : *BB)
        Insts.push_back(Inst.get());
      for (Instruction *Inst : Insts) {
        Constant *C = tryConstantFold(*Inst);
        if (!C)
          continue;
        Inst->replaceAllUsesWith(C);
        Inst->eraseFromParent();
        ++Folded;
        Changed = true;
      }
    }
  }
  return Folded;
}
