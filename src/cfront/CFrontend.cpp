//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "cfront/CFrontend.h"

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

using namespace snslp;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

struct CTok {
  enum Kind { Ident, Number, Punct, End } K = End;
  std::string Text;
  unsigned Line = 0;
};

class CLexer {
public:
  CLexer(const std::string &Src, std::string &Err) : Src(Src), Err(Err) {}

  bool run(std::vector<CTok> &Out) {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
        size_t Start = Pos;
        while (Pos < Src.size() &&
               (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
                Src[Pos] == '_'))
          ++Pos;
        Out.push_back({CTok::Ident, Src.substr(Start, Pos - Start), Line});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(C)) ||
          (C == '.' && Pos + 1 < Src.size() &&
           std::isdigit(static_cast<unsigned char>(Src[Pos + 1])))) {
        size_t Start = Pos;
        while (Pos < Src.size() &&
               (std::isdigit(static_cast<unsigned char>(Src[Pos])) ||
                Src[Pos] == '.' || Src[Pos] == 'e' || Src[Pos] == 'E' ||
                ((Src[Pos] == '+' || Src[Pos] == '-') && Pos > Start &&
                 (Src[Pos - 1] == 'e' || Src[Pos - 1] == 'E'))))
          ++Pos;
        // Trailing f/F suffix is tolerated and ignored.
        if (Pos < Src.size() && (Src[Pos] == 'f' || Src[Pos] == 'F'))
          ++Pos;
        Out.push_back({CTok::Number, Src.substr(Start, Pos - Start), Line});
        continue;
      }
      if (C == '+' && Pos + 1 < Src.size() && Src[Pos + 1] == '=') {
        Out.push_back({CTok::Punct, "+=", Line});
        Pos += 2;
        continue;
      }
      static const std::string Singles = "(){}[];,=+-*/<";
      if (Singles.find(C) != std::string::npos) {
        Out.push_back({CTok::Punct, std::string(1, C), Line});
        ++Pos;
        continue;
      }
      Err = "line " + std::to_string(Line) + ": unexpected character '" +
            std::string(1, C) + "'";
      return false;
    }
    Out.push_back({CTok::End, "", Line});
    return true;
  }

private:
  const std::string &Src;
  std::string &Err;
  size_t Pos = 0;
  unsigned Line = 1;
};

//===----------------------------------------------------------------------===//
// AST
//===----------------------------------------------------------------------===//

struct CExpr {
  enum Kind { Num, Load, ScalarRef, Unary, Bin } K;
  double NumValue = 0.0;       // Num
  bool NumIsFP = false;        // Num: had '.' or exponent
  std::string Name;            // Load/ScalarRef array or scalar name
  // Load index: i*Scale + Offset, or pure literal when UsesLoopVar=false.
  bool UsesLoopVar = false;
  int64_t IndexScale = 1;
  int64_t IndexOffset = 0;
  char Op = 0; // Unary: '-', 's'(sqrt), 'a'(fabs); Bin: + - * /
  std::unique_ptr<CExpr> LHS, RHS;
};

struct CStmt {
  std::string Array;
  bool UsesLoopVar = false;
  int64_t IndexScale = 1;
  int64_t IndexOffset = 0;
  std::unique_ptr<CExpr> Value;
};

struct CParam {
  std::string Name;
  bool IsPointer = false;
  TypeKind Elem = TypeKind::Double;
};

struct CKernelAST {
  std::string Name;
  std::vector<CParam> Params;
  std::string LoopVar;
  int64_t LoopStart = 0;
  std::string BoundName;
  int64_t LoopStep = 1;
  std::vector<CStmt> Stmts;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class CParser {
public:
  CParser(std::vector<CTok> Toks, std::string &Err)
      : Toks(std::move(Toks)), Err(Err) {}

  bool parse(CKernelAST &K) {
    if (!expectIdent("void"))
      return false;
    if (cur().K != CTok::Ident)
      return error("expected kernel name");
    K.Name = next().Text;
    if (!expectPunct("("))
      return false;
    if (!parseParams(K))
      return false;
    if (!expectPunct("{") || !parseForLoop(K))
      return false;
    while (!isPunct("}")) {
      if (cur().K == CTok::End)
        return error("unexpected end of input");
      CStmt S;
      if (!parseStatement(K, S))
        return false;
      K.Stmts.push_back(std::move(S));
    }
    next(); // inner '}'
    if (!expectPunct("}"))
      return false;
    return true;
  }

private:
  const CTok &cur() const { return Toks[Pos]; }
  const CTok &next() { return Toks[Pos++]; }
  bool isPunct(const char *P) const {
    return cur().K == CTok::Punct && cur().Text == P;
  }
  bool isIdent(const char *S) const {
    return cur().K == CTok::Ident && cur().Text == S;
  }
  bool error(const std::string &Msg) {
    Err = "line " + std::to_string(cur().Line) + ": " + Msg;
    return false;
  }
  bool expectPunct(const char *P) {
    if (!isPunct(P))
      return error(std::string("expected '") + P + "'");
    next();
    return true;
  }
  bool expectIdent(const char *S) {
    if (!isIdent(S))
      return error(std::string("expected '") + S + "'");
    next();
    return true;
  }

  bool typeKeyword(const std::string &S, TypeKind &Out) {
    if (S == "double")
      Out = TypeKind::Double;
    else if (S == "float")
      Out = TypeKind::Float;
    else if (S == "long")
      Out = TypeKind::Int64;
    else if (S == "int")
      Out = TypeKind::Int32;
    else
      return false;
    return true;
  }

  bool parseParams(CKernelAST &K) {
    while (true) {
      if (cur().K != CTok::Ident)
        return error("expected parameter type");
      CParam P;
      if (!typeKeyword(next().Text, P.Elem))
        return error("unknown parameter type");
      if (isPunct("*")) {
        next();
        P.IsPointer = true;
      }
      if (cur().K != CTok::Ident)
        return error("expected parameter name");
      P.Name = next().Text;
      K.Params.push_back(P);
      if (isPunct(",")) {
        next();
        continue;
      }
      break;
    }
    return expectPunct(")");
  }

  bool parseForLoop(CKernelAST &K) {
    if (!expectIdent("for") || !expectPunct("("))
      return false;
    if (cur().K != CTok::Ident)
      return error("expected loop variable");
    K.LoopVar = next().Text;
    if (!expectPunct("="))
      return false;
    if (cur().K != CTok::Number)
      return error("expected loop start literal");
    K.LoopStart = std::strtoll(next().Text.c_str(), nullptr, 10);
    if (!expectPunct(";"))
      return false;
    if (!isIdent(K.LoopVar.c_str()))
      return error("loop condition must test the loop variable");
    next();
    if (!expectPunct("<"))
      return false;
    if (cur().K != CTok::Ident)
      return error("loop bound must be a parameter name");
    K.BoundName = next().Text;
    if (!expectPunct(";"))
      return false;
    if (!isIdent(K.LoopVar.c_str()))
      return error("loop increment must update the loop variable");
    next();
    if (!isPunct("+="))
      return error("expected '+='");
    next();
    if (cur().K != CTok::Number)
      return error("expected loop step literal");
    K.LoopStep = std::strtoll(next().Text.c_str(), nullptr, 10);
    if (K.LoopStep <= 0)
      return error("loop step must be positive");
    return expectPunct(")") && expectPunct("{");
  }

  /// index := VAR ('*' NUM)? (('+'|'-') NUM)? | NUM
  bool parseIndex(const CKernelAST &K, bool &UsesLoopVar, int64_t &Scale,
                  int64_t &Offset) {
    UsesLoopVar = false;
    Scale = 1;
    Offset = 0;
    if (cur().K == CTok::Number) {
      Offset = std::strtoll(next().Text.c_str(), nullptr, 10);
      return true;
    }
    if (!isIdent(K.LoopVar.c_str()))
      return error("index must be the loop variable or a literal");
    next();
    UsesLoopVar = true;
    if (isPunct("*")) {
      next();
      if (cur().K != CTok::Number)
        return error("expected literal scale in index expression");
      Scale = std::strtoll(next().Text.c_str(), nullptr, 10);
    }
    if (isPunct("+") || isPunct("-")) {
      char Op = next().Text[0];
      if (cur().K != CTok::Number)
        return error("expected literal offset in index expression");
      int64_t N = std::strtoll(next().Text.c_str(), nullptr, 10);
      Offset = Op == '+' ? N : -N;
    }
    return true;
  }

  bool parseStatement(const CKernelAST &K, CStmt &S) {
    if (cur().K != CTok::Ident)
      return error("expected array name");
    S.Array = next().Text;
    if (!expectPunct("["))
      return false;
    if (!parseIndex(K, S.UsesLoopVar, S.IndexScale, S.IndexOffset))
      return false;
    if (!expectPunct("]") || !expectPunct("="))
      return false;
    S.Value = parseExpr(K);
    if (!S.Value)
      return false;
    return expectPunct(";");
  }

  /// expr := term (('+'|'-') term)*
  std::unique_ptr<CExpr> parseExpr(const CKernelAST &K) {
    std::unique_ptr<CExpr> L = parseTerm(K);
    while (L && (isPunct("+") || isPunct("-"))) {
      char Op = next().Text[0];
      std::unique_ptr<CExpr> R = parseTerm(K);
      if (!R)
        return nullptr;
      auto B = std::make_unique<CExpr>();
      B->K = CExpr::Bin;
      B->Op = Op;
      B->LHS = std::move(L);
      B->RHS = std::move(R);
      L = std::move(B);
    }
    return L;
  }

  /// term := factor (('*'|'/') factor)*
  std::unique_ptr<CExpr> parseTerm(const CKernelAST &K) {
    std::unique_ptr<CExpr> L = parseFactor(K);
    while (L && (isPunct("*") || isPunct("/"))) {
      char Op = next().Text[0];
      std::unique_ptr<CExpr> R = parseFactor(K);
      if (!R)
        return nullptr;
      auto B = std::make_unique<CExpr>();
      B->K = CExpr::Bin;
      B->Op = Op;
      B->LHS = std::move(L);
      B->RHS = std::move(R);
      L = std::move(B);
    }
    return L;
  }

  std::unique_ptr<CExpr> parseFactor(const CKernelAST &K) {
    if (isPunct("(")) {
      next();
      std::unique_ptr<CExpr> E = parseExpr(K);
      if (!E || !expectPunct(")"))
        return nullptr;
      return E;
    }
    if (isPunct("-")) {
      next();
      std::unique_ptr<CExpr> Inner = parseFactor(K);
      if (!Inner)
        return nullptr;
      auto U = std::make_unique<CExpr>();
      U->K = CExpr::Unary;
      U->Op = '-';
      U->LHS = std::move(Inner);
      return U;
    }
    if (cur().K == CTok::Number) {
      auto N = std::make_unique<CExpr>();
      N->K = CExpr::Num;
      const std::string &Text = next().Text;
      N->NumValue = std::strtod(Text.c_str(), nullptr);
      N->NumIsFP = Text.find('.') != std::string::npos ||
                   Text.find('e') != std::string::npos ||
                   Text.find('E') != std::string::npos;
      return N;
    }
    if (cur().K == CTok::Ident) {
      std::string Name = next().Text;
      if ((Name == "sqrt" || Name == "fabs") && isPunct("(")) {
        next();
        std::unique_ptr<CExpr> Inner = parseExpr(K);
        if (!Inner || !expectPunct(")"))
          return nullptr;
        auto U = std::make_unique<CExpr>();
        U->K = CExpr::Unary;
        U->Op = Name == "sqrt" ? 's' : 'a';
        U->LHS = std::move(Inner);
        return U;
      }
      if (isPunct("[")) {
        next();
        auto L = std::make_unique<CExpr>();
        L->K = CExpr::Load;
        L->Name = Name;
        if (!parseIndex(K, L->UsesLoopVar, L->IndexScale, L->IndexOffset))
          return nullptr;
        if (!expectPunct("]"))
          return nullptr;
        return L;
      }
      auto S = std::make_unique<CExpr>();
      S->K = CExpr::ScalarRef;
      S->Name = Name;
      return S;
    }
    error("expected expression");
    return nullptr;
  }

  std::vector<CTok> Toks;
  size_t Pos = 0;
  std::string &Err;
};

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

class CLowering {
public:
  CLowering(const CKernelAST &K, Module &M, std::string &Err)
      : K(K), M(M), Ctx(M.getContext()), Err(Err) {}

  Function *run() {
    if (!buildSignature())
      return nullptr;

    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Loop = F->createBlock("loop");
    BasicBlock *Exit = F->createBlock("exit");
    IRBuilder B(Entry);
    B.createBr(Loop);

    B.setInsertPointAtEnd(Loop);
    PhiNode *I = B.createPhi(Ctx.getInt64Ty(), K.LoopVar);

    for (const CStmt &S : K.Stmts) {
      auto It = Params.find(S.Array);
      if (It == Params.end() || !It->second.IsPointer) {
        Err = "store to unknown array '" + S.Array + "'";
        return nullptr;
      }
      Type *ElemTy = elemType(It->second.Elem);
      Type *ValueTy = inferType(*S.Value);
      if (TypeError)
        return nullptr;
      if (!ValueTy)
        ValueTy = ElemTy; // Literal-only expression: the store decides.
      if (ValueTy != ElemTy) {
        Err = "type mismatch storing to '" + S.Array + "'";
        return nullptr;
      }
      Value *V = lower(B, *S.Value, ElemTy, I);
      if (!V)
        return nullptr;
      Value *Ptr = B.createGEP(
          ElemTy, It->second.Arg,
          lowerIndex(B, I, S.UsesLoopVar, S.IndexScale, S.IndexOffset));
      B.createStore(V, Ptr);
    }

    Value *Next =
        B.createAdd(I, ConstantInt::get(Ctx.getInt64Ty(), K.LoopStep),
                    K.LoopVar + ".next");
    auto BoundIt = Params.find(K.BoundName);
    if (BoundIt == Params.end() || BoundIt->second.IsPointer ||
        elemType(BoundIt->second.Elem) != Ctx.getInt64Ty()) {
      Err = "loop bound '" + K.BoundName + "' must be a long parameter";
      return nullptr;
    }
    Value *Cond = B.createICmp(ICmpPredicate::SLT, Next,
                               BoundIt->second.Arg, "cond");
    B.createCondBr(Cond, Loop, Exit);
    I->addIncoming(ConstantInt::get(Ctx.getInt64Ty(), K.LoopStart), Entry);
    I->addIncoming(Next, Loop);

    B.setInsertPointAtEnd(Exit);
    B.createRet();
    return F;
  }

private:
  struct ParamInfo {
    bool IsPointer;
    TypeKind Elem;
    Argument *Arg;
  };

  Type *elemType(TypeKind Kind) {
    switch (Kind) {
    case TypeKind::Double:
      return Ctx.getDoubleTy();
    case TypeKind::Float:
      return Ctx.getFloatTy();
    case TypeKind::Int64:
      return Ctx.getInt64Ty();
    case TypeKind::Int32:
      return Ctx.getInt32Ty();
    default:
      return nullptr;
    }
  }

  bool buildSignature() {
    if (M.getFunction(K.Name)) {
      Err = "redefinition of '" + K.Name + "'";
      return false;
    }
    std::vector<std::pair<Type *, std::string>> Sig;
    for (const CParam &P : K.Params)
      Sig.emplace_back(P.IsPointer ? Ctx.getPtrTy() : elemType(P.Elem),
                       P.Name);
    F = M.createFunction(K.Name, Ctx.getVoidTy(), Sig);
    for (unsigned Idx = 0; Idx < K.Params.size(); ++Idx) {
      const CParam &P = K.Params[Idx];
      if (Params.count(P.Name)) {
        Err = "duplicate parameter '" + P.Name + "'";
        return false;
      }
      Params[P.Name] = ParamInfo{P.IsPointer, P.Elem, F->getArg(Idx)};
    }
    return true;
  }

  /// Infers the element type of an expression: the first array or scalar
  /// parameter decides; literals alone default to f64.
  Type *inferType(const CExpr &E) {
    switch (E.K) {
    case CExpr::Num:
      return nullptr; // Neutral: defer to siblings.
    case CExpr::Load:
    case CExpr::ScalarRef: {
      auto It = Params.find(E.Name);
      if (It == Params.end()) {
        Err = "unknown name '" + E.Name + "'";
        TypeError = true;
        return nullptr;
      }
      return elemType(It->second.Elem);
    }
    case CExpr::Unary:
      return inferType(*E.LHS);
    case CExpr::Bin: {
      Type *L = inferType(*E.LHS);
      if (TypeError)
        return nullptr;
      Type *R = inferType(*E.RHS);
      if (TypeError)
        return nullptr;
      if (L && R && L != R) {
        Err = "mixed element types in expression";
        TypeError = true;
        return nullptr;
      }
      return L ? L : R;
    }
    }
    return nullptr;
  }

  Value *lowerIndex(IRBuilder &B, PhiNode *I, bool UsesLoopVar,
                    int64_t Scale, int64_t Offset) {
    Type *I64 = Ctx.getInt64Ty();
    if (!UsesLoopVar)
      return ConstantInt::get(I64, Offset);
    Value *V = I;
    if (Scale != 1)
      V = B.createMul(V, ConstantInt::get(I64, Scale));
    if (Offset != 0)
      V = B.createAdd(V, ConstantInt::get(I64, Offset));
    return V;
  }

  Value *lower(IRBuilder &B, const CExpr &E, Type *Ty, PhiNode *I) {
    switch (E.K) {
    case CExpr::Num:
      if (Ty->isFloatingPoint())
        return ConstantFP::get(Ty, E.NumValue);
      if (E.NumIsFP) {
        Err = "floating-point literal in integer expression";
        return nullptr;
      }
      return ConstantInt::get(Ty, static_cast<int64_t>(E.NumValue));
    case CExpr::Load: {
      const ParamInfo &P = Params.at(E.Name);
      if (!P.IsPointer) {
        Err = "'" + E.Name + "' is not an array";
        return nullptr;
      }
      Value *Ptr = B.createGEP(
          Ty, P.Arg, lowerIndex(B, I, E.UsesLoopVar, E.IndexScale,
                                E.IndexOffset));
      return B.createLoad(Ty, Ptr);
    }
    case CExpr::ScalarRef: {
      const ParamInfo &P = Params.at(E.Name);
      if (P.IsPointer) {
        Err = "array '" + E.Name + "' used without an index";
        return nullptr;
      }
      return P.Arg;
    }
    case CExpr::Unary: {
      Value *Inner = lower(B, *E.LHS, Ty, I);
      if (!Inner)
        return nullptr;
      if (E.Op == '-') {
        if (Ty->isFloatingPoint())
          return B.createFNeg(Inner);
        return B.createSub(ConstantInt::get(Ty, 0), Inner);
      }
      if (!Ty->isFloatingPoint()) {
        Err = "sqrt/fabs require a floating-point expression";
        return nullptr;
      }
      return E.Op == 's' ? B.createSqrt(Inner) : B.createFabs(Inner);
    }
    case CExpr::Bin: {
      Value *L = lower(B, *E.LHS, Ty, I);
      if (!L)
        return nullptr;
      Value *R = lower(B, *E.RHS, Ty, I);
      if (!R)
        return nullptr;
      bool FP = Ty->isFloatingPoint();
      switch (E.Op) {
      case '+':
        return B.createBinOp(FP ? BinOpcode::FAdd : BinOpcode::Add, L, R);
      case '-':
        return B.createBinOp(FP ? BinOpcode::FSub : BinOpcode::Sub, L, R);
      case '*':
        return B.createBinOp(FP ? BinOpcode::FMul : BinOpcode::Mul, L, R);
      case '/':
        if (!FP) {
          Err = "integer division is not supported";
          return nullptr;
        }
        return B.createFDiv(L, R);
      }
      break;
    }
    }
    Err = "internal: unhandled expression";
    return nullptr;
  }

  const CKernelAST &K;
  Module &M;
  Context &Ctx;
  std::string &Err;
  Function *F = nullptr;
  std::map<std::string, ParamInfo> Params;
  bool TypeError = false;
};

} // namespace

Function *snslp::compileCKernel(const std::string &Source, Module &M,
                                std::string *ErrMsg) {
  std::string Err;
  std::vector<CTok> Toks;
  CLexer Lexer(Source, Err);
  if (!Lexer.run(Toks)) {
    if (ErrMsg)
      *ErrMsg = Err;
    return nullptr;
  }
  CKernelAST K;
  CParser Parser(std::move(Toks), Err);
  if (!Parser.parse(K)) {
    if (ErrMsg)
      *ErrMsg = Err;
    return nullptr;
  }
  bool Existed = M.getFunction(K.Name) != nullptr;
  CLowering Lowering(K, M, Err);
  Function *F = Lowering.run();
  if (!F) {
    // Do not leave a half-built function behind (unless the failure WAS
    // that the name already existed).
    if (!Existed)
      M.eraseFunction(K.Name);
    if (ErrMsg)
      *ErrMsg = Err;
  }
  return F;
}
