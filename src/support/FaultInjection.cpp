//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <cstdlib>

namespace snslp {

const std::vector<std::string> &knownFaultSites() {
  // Keep docs/robustness.md's fault-site registry table in sync.
  static const std::vector<std::string> Sites = {
      "slp.graph.budget",      // budget tracker reports exhaustion mid-build
      "slp.codegen.corrupt-ir",// code generator emits structurally bad IR
      "slp.vectorize.abort",   // internal defect after codegen, before commit
      "slp.reduction.abort",   // internal defect in a reduction attempt
      "slp.goslp.enumerate.abort", // pack enumeration dies (-> greedy)
      "slp.goslp.solve.abort", // pack-selection solver dies (-> greedy)
      "driver.compile.parse",  // kernel IR text fails to parse
      "jit.emit.abort",        // native code emission aborts (-> bytecode)
      "jit.exec.trap",         // native execution traps (-> bytecode run)
      "service.queue.overload",// admission control rejects (-> retryable)
      "service.deadline.expire",// request deadline expires (-> retryable)
      "service.store.corrupt", // on-disk artifact corrupt (-> quarantine)
      "service.store.io-error",// artifact store I/O fails (-> recompile)
      "service.net.accept-fail",     // reactor accept fails (-> client
                                     //   reconnects; loop keeps serving)
      "service.shard.queue.overload",// per-shard admission trip
                                     //   (-> retryable `overloaded`)
  };
  return Sites;
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector FI;
  return FI;
}

FaultInjector::FaultInjector() {
  if (const char *Spec = std::getenv("SNSLP_FAULT_INJECT"))
    armFromSpec(Spec);
}

void FaultInjector::arm(const std::string &SiteName, uint64_t FireOnNthHit) {
  if (FireOnNthHit == 0)
    FireOnNthHit = 1;
  std::lock_guard<std::mutex> Lock(Mu);
  for (Site &S : Sites) {
    if (S.Name == SiteName) {
      if (S.Fired == 0 && S.Hits < S.FireOnNthHit)
        Armed.fetch_sub(1, std::memory_order_relaxed); // pending; re-arm below
      S.FireOnNthHit = FireOnNthHit;
      S.Hits = 0;
      S.Fired = 0;
      Armed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  Sites.push_back(Site{SiteName, FireOnNthHit, 0, 0});
  Armed.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::disarmAll() {
  std::lock_guard<std::mutex> Lock(Mu);
  Sites.clear();
  Armed.store(0, std::memory_order_relaxed);
}

bool FaultInjector::shouldFire(const char *SiteName) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Site &S : Sites) {
    if (S.Name != SiteName)
      continue;
    if (S.Fired != 0)
      return false; // one-shot: already fired
    ++S.Hits;
    if (S.Hits >= S.FireOnNthHit) {
      S.Fired = 1;
      Armed.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  return false;
}

uint64_t FaultInjector::fireCount(const std::string &SiteName) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const Site &S : Sites)
    if (S.Name == SiteName)
      return S.Fired;
  return 0;
}

bool FaultInjector::armFromSpec(const std::string &Spec) {
  // "site[:N],site2[:M]" — whitespace not allowed, N is a positive int.
  std::vector<std::pair<std::string, uint64_t>> Parsed;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Item = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Item.empty())
      continue;
    uint64_t N = 1;
    size_t Colon = Item.find(':');
    if (Colon != std::string::npos) {
      std::string Num = Item.substr(Colon + 1);
      Item = Item.substr(0, Colon);
      if (Item.empty() || Num.empty())
        return false;
      char *End = nullptr;
      unsigned long long V = std::strtoull(Num.c_str(), &End, 10);
      if (End == Num.c_str() || *End != '\0' || V == 0)
        return false;
      N = V;
    }
    Parsed.emplace_back(Item, N);
  }
  for (const auto &[Name, N] : Parsed)
    arm(Name, N);
  return true;
}

} // namespace snslp
