//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "service/ArtifactStore.h"

#include "support/FaultInjection.h"
#include "support/Statistic.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <sstream>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace snslp;

// Entry file layout (line-oriented header, then a length-prefixed body):
//
//   snslp-artifact v1
//   checksum: <16 hex>        FNV-1a64 of every byte after this line
//   key: <32 hex>             must match the file's content address
//   entry: <function name>
//   graphs-vectorized: <N>
//   budget-bailouts: <N>
//   body: <K>
//   <blank line>
//   <K bytes of vectorized module text>
//
// The checksum covers the key line too, so a record renamed under the
// wrong key is Corrupt, not a silent wrong-artifact hit.

static const char kMagicLine[] = "snslp-artifact v1";

ArtifactStore::ArtifactStore(std::string Dir, StatsRegistry *Stats)
    : Dir(std::move(Dir)), Stats(Stats) {}

void ArtifactStore::bump(std::atomic<uint64_t> &C, const char *StatName) {
  C.fetch_add(1, std::memory_order_relaxed);
  if (Stats)
    Stats->add(StatName);
}

std::string ArtifactStore::entryPath(const Digest128 &Key) const {
  return Dir + "/" + Key.toHex() + ".art";
}

static bool makeDir(const std::string &Path) {
  if (::mkdir(Path.c_str(), 0755) == 0)
    return true;
  if (errno != EEXIST)
    return false;
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

Error ArtifactStore::prepare() {
  if (!enabled())
    return Error::success();
  for (const std::string &P : {Dir, Dir + "/tmp", Dir + "/quarantine"})
    if (!makeDir(P))
      return Error::make(ErrorCode::IOError,
                         "artifact store: cannot create directory '" + P +
                             "': " + std::strerror(errno));
  sweepTemp();
  return Error::success();
}

size_t ArtifactStore::sweepTemp() {
  if (!enabled())
    return 0;
  const std::string TmpDir = Dir + "/tmp";
  DIR *D = ::opendir(TmpDir.c_str());
  if (!D)
    return 0;
  size_t Removed = 0;
  while (struct dirent *E = ::readdir(D)) {
    if (E->d_name[0] == '.')
      continue;
    if (::unlink((TmpDir + "/" + E->d_name).c_str()) == 0)
      ++Removed;
  }
  ::closedir(D);
  if (Removed && Stats)
    Stats->add("service.store.tmp-swept", static_cast<int64_t>(Removed));
  return Removed;
}

static bool readWholeFile(const std::string &Path, std::string &Out,
                          bool &NotFound) {
  NotFound = false;
  int FD = ::open(Path.c_str(), O_RDONLY);
  if (FD < 0) {
    NotFound = errno == ENOENT;
    return false;
  }
  Out.clear();
  char Buf[1 << 16];
  for (;;) {
    ssize_t N = ::read(FD, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(FD);
      return false;
    }
    if (N == 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  ::close(FD);
  return true;
}

// Parses "<label> <value>\n" at Pos; advances Pos past the newline.
static bool takeLine(const std::string &S, size_t &Pos, const char *Label,
                     std::string &Value) {
  size_t NL = S.find('\n', Pos);
  if (NL == std::string::npos)
    return false;
  std::string Line = S.substr(Pos, NL - Pos);
  Pos = NL + 1;
  size_t LabelLen = std::strlen(Label);
  if (Line.compare(0, LabelLen, Label) != 0)
    return false;
  Value = Line.substr(LabelLen);
  return true;
}

static bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End == S.c_str() || *End != '\0')
    return false;
  Out = V;
  return true;
}

static std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

void ArtifactStore::quarantine(const Digest128 &Key) {
  const std::string From = entryPath(Key);
  // A unique destination per quarantine event: repeated corruption of the
  // same key must not silently overwrite earlier evidence.
  for (unsigned I = 0; I < 16; ++I) {
    std::string To = Dir + "/quarantine/" + Key.toHex() + ".art." +
                     std::to_string(I);
    if (::access(To.c_str(), F_OK) == 0)
      continue;
    if (::rename(From.c_str(), To.c_str()) == 0) {
      bump(Quarantined, "service.store.quarantined");
      return;
    }
    break;
  }
  // Rename failed (or 16 corrupt generations already); fall back to
  // unlink so the poisoned entry can at least never be served again.
  ::unlink(From.c_str());
  bump(Quarantined, "service.store.quarantined");
}

ArtifactStore::LoadState ArtifactStore::load(const Digest128 &Key,
                                             Record &Out) {
  if (!enabled())
    return LoadState::Miss;

  if (faultPoint("service.store.io-error")) {
    bump(IOErrors, "service.store.io-errors");
    return LoadState::IOError;
  }

  std::string Content;
  bool NotFound = false;
  if (!readWholeFile(entryPath(Key), Content, NotFound)) {
    if (NotFound) {
      bump(Misses, "service.store.misses");
      return LoadState::Miss;
    }
    bump(IOErrors, "service.store.io-errors");
    return LoadState::IOError;
  }

  // The injected-corruption site fires *after* a successful read: the
  // entry exists and is intact, but the verifier must behave exactly as
  // it would for real bit rot — quarantine and report Corrupt.
  bool Injected = faultPoint("service.store.corrupt");

  auto Fail = [&]() {
    quarantine(Key);
    return LoadState::Corrupt;
  };

  size_t Pos = 0;
  std::string Magic, Checksum, KeyHex, EntryName, GraphsStr, BailoutsStr,
      BodyLen;
  size_t NL = Content.find('\n', Pos);
  if (NL == std::string::npos)
    return Fail();
  Magic = Content.substr(0, NL);
  Pos = NL + 1;
  if (Magic != kMagicLine)
    return Fail();
  if (!takeLine(Content, Pos, "checksum: ", Checksum))
    return Fail();

  // Everything after the checksum line is covered by the checksum.
  const uint64_t Computed =
      fnv1a64(Content.data() + Pos, Content.size() - Pos);
  if (Injected || Checksum != hex16(Computed))
    return Fail();

  uint64_t Len = 0;
  if (!takeLine(Content, Pos, "key: ", KeyHex) || KeyHex != Key.toHex())
    return Fail();
  if (!takeLine(Content, Pos, "entry: ", EntryName))
    return Fail();
  if (!takeLine(Content, Pos, "graphs-vectorized: ", GraphsStr) ||
      !parseU64(GraphsStr, Out.GraphsVectorized))
    return Fail();
  if (!takeLine(Content, Pos, "budget-bailouts: ", BailoutsStr) ||
      !parseU64(BailoutsStr, Out.BudgetBailouts))
    return Fail();
  if (!takeLine(Content, Pos, "body: ", BodyLen) || !parseU64(BodyLen, Len))
    return Fail();
  if (Pos >= Content.size() || Content[Pos] != '\n')
    return Fail();
  ++Pos;
  if (Content.size() - Pos != Len)
    return Fail();

  Out.EntryName = std::move(EntryName);
  Out.VectorizedText = Content.substr(Pos, Len);
  bump(Hits, "service.store.hits");
  return LoadState::Hit;
}

bool ArtifactStore::store(const Digest128 &Key, const Record &Rec) {
  if (!enabled())
    return false;

  if (faultPoint("service.store.io-error")) {
    bump(IOErrors, "service.store.io-errors");
    return false;
  }

  // Assemble the checksummed payload first, then prepend magic+checksum.
  std::ostringstream Payload;
  Payload << "key: " << Key.toHex() << '\n'
          << "entry: " << Rec.EntryName << '\n'
          << "graphs-vectorized: " << Rec.GraphsVectorized << '\n'
          << "budget-bailouts: " << Rec.BudgetBailouts << '\n'
          << "body: " << Rec.VectorizedText.size() << '\n'
          << '\n'
          << Rec.VectorizedText;
  const std::string Body = Payload.str();
  const std::string Blob = std::string(kMagicLine) + "\n" +
                           "checksum: " + hex16(fnv1a64(Body)) + "\n" + Body;

  const std::string TmpPath = Dir + "/tmp/" + Key.toHex() + "." +
                              std::to_string(::getpid()) + ".tmp";
  int FD = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (FD < 0) {
    bump(IOErrors, "service.store.io-errors");
    return false;
  }
  size_t Off = 0;
  while (Off < Blob.size()) {
    ssize_t N = ::write(FD, Blob.data() + Off, Blob.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(FD);
      ::unlink(TmpPath.c_str());
      bump(IOErrors, "service.store.io-errors");
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  // fsync before rename: the entry must be durable before it becomes
  // visible, or a crash could publish a hole.
  if (::fsync(FD) != 0 || ::close(FD) != 0) {
    ::close(FD);
    ::unlink(TmpPath.c_str());
    bump(IOErrors, "service.store.io-errors");
    return false;
  }
  if (::rename(TmpPath.c_str(), entryPath(Key).c_str()) != 0) {
    ::unlink(TmpPath.c_str());
    bump(IOErrors, "service.store.io-errors");
    return false;
  }
  bump(Writes, "service.store.writes");
  return true;
}
