//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "jit/CPUFeatures.h"

#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#endif

namespace snslp {

namespace {

CPUFeatures detect() {
  CPUFeatures F;
#if defined(__x86_64__) || defined(_M_X64)
  F.X86_64 = true;
  unsigned EAX = 0, EBX = 0, ECX = 0, EDX = 0;
  if (__get_cpuid(1, &EAX, &EBX, &ECX, &EDX)) {
    F.SSE2 = (EDX & (1u << 26)) != 0;
    F.SSE41 = (ECX & (1u << 19)) != 0;
    // AVX needs the CPU bit, OSXSAVE, and the OS actually enabling the
    // ymm state in XCR0 — a kernel that does not context-switch ymm
    // advertises the CPUID bit but faults on VEX.256 execution.
    bool OSXSave = (ECX & (1u << 27)) != 0;
    bool AVXBit = (ECX & (1u << 28)) != 0;
    if (OSXSave && AVXBit) {
      unsigned XLo, XHi;
      __asm__ volatile("xgetbv" : "=a"(XLo), "=d"(XHi) : "c"(0));
      if ((XLo & 0x6) == 0x6) { // XMM and YMM state enabled.
        F.AVX = true;
        unsigned EAX7 = 0, EBX7 = 0, ECX7 = 0, EDX7 = 0;
        if (__get_cpuid_count(7, 0, &EAX7, &EBX7, &ECX7, &EDX7))
          F.AVX2 = (EBX7 & (1u << 5)) != 0;
      }
    }
  }
#endif
  return F;
}

} // namespace

std::string CPUFeatures::isaString() const {
  if (!X86_64)
    return "non-x86-64";
  std::string S = "x86-64";
  if (SSE2)
    S += "+sse2";
  if (SSE41)
    S += "+sse4.1";
  if (AVX)
    S += "+avx";
  if (AVX2)
    S += "+avx2";
  return S;
}

CPUFeatures applyISACap(CPUFeatures F, const std::string &Cap) {
  // Each tier clears everything above it; the bits below stay whatever the
  // host actually has (a cap can only downgrade, never grant).
  if (Cap.empty() || Cap == "host") {
    // No cap.
  } else if (Cap == "sse2") {
    F.SSE41 = F.AVX = F.AVX2 = false;
  } else if (Cap == "sse4.1" || Cap == "sse41") {
    F.AVX = F.AVX2 = false;
  } else if (Cap == "avx") {
    F.AVX2 = false;
  } else if (Cap == "avx2") {
    // Full tier; nothing to clear.
  }
  return F;
}

const CPUFeatures &hostCPUFeatures() {
  static const CPUFeatures F = [] {
    CPUFeatures Host = detect();
    if (const char *Cap = std::getenv("SNSLP_FORCE_ISA"))
      Host = applyISACap(Host, Cap);
    return Host;
  }();
  return F;
}

} // namespace snslp
