//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the structured optimization remarks: construction
/// helpers, the text rendering, and lossless round-trips through both the
/// YAML document-stream and JSON array serializations (irtool validates
/// its own --remarks output the same way; see docs/observability.md).
///
//===----------------------------------------------------------------------===//

#include "support/Remark.h"

#include <gtest/gtest.h>

using namespace snslp;

namespace {

/// A remark with every optional field populated.
Remark fullRemark() {
  return Remark::passed("slp-vectorizer", "GraphVectorized", "motiv2")
      .withDecision("vectorize")
      .withValues({"pA0", "pA1"})
      .withCost(/*Scalar=*/0, /*Vector=*/-6)
      .withAPO("add/sub", /*Trunk=*/2, "+-+")
      .withMessage("vectorized 2-wide store group in 'loop'");
}

TEST(RemarkTest, KindNamesRoundTrip) {
  for (RemarkKind K :
       {RemarkKind::Passed, RemarkKind::Missed, RemarkKind::Analysis}) {
    RemarkKind Back = RemarkKind::Passed;
    ASSERT_TRUE(parseRemarkKindName(getRemarkKindName(K), Back));
    EXPECT_EQ(Back, K);
  }
  RemarkKind Sink;
  EXPECT_FALSE(parseRemarkKindName("bogus", Sink));
}

TEST(RemarkTest, CostDelta) {
  Remark R = Remark::missed("slp-vectorizer", "GraphRejected", "f")
                 .withCost(/*Scalar=*/3, /*Vector=*/5);
  EXPECT_EQ(R.costDelta(), 2);
  EXPECT_EQ(fullRemark().costDelta(), -6);
}

TEST(RemarkTest, TextRenderingNamesTheDecision) {
  std::string Text = renderRemarkText(fullRemark());
  EXPECT_NE(Text.find("passed"), std::string::npos);
  EXPECT_NE(Text.find("slp-vectorizer"), std::string::npos);
  EXPECT_NE(Text.find("GraphVectorized"), std::string::npos);
  EXPECT_NE(Text.find("motiv2"), std::string::npos);
  EXPECT_NE(Text.find("vectorize"), std::string::npos);
  EXPECT_NE(Text.find("add/sub"), std::string::npos);
  EXPECT_NE(Text.find("+-+"), std::string::npos);
}

TEST(RemarkTest, YAMLRoundTripsAllFields) {
  std::vector<Remark> In = {
      fullRemark(),
      Remark::missed("slp-vectorizer", "SeedRejected", "f")
          .withDecision("reject:alias")
          .withValues({"pB0", "pB1", "pB2"}),
      Remark::analysis("early-cse", "PassExecuted", "g"),
  };
  std::string Text = renderRemarksYAML(In);
  // One document per remark, LLVM remark-file style.
  EXPECT_NE(Text.find("--- !passed"), std::string::npos);
  EXPECT_NE(Text.find("--- !missed"), std::string::npos);
  EXPECT_NE(Text.find("--- !analysis"), std::string::npos);

  std::vector<Remark> Out;
  std::string Err;
  ASSERT_TRUE(parseRemarksYAML(Text, Out, &Err)) << Err;
  EXPECT_EQ(Out, In);
}

TEST(RemarkTest, JSONRoundTripsAllFields) {
  std::vector<Remark> In = {
      fullRemark(),
      Remark::analysis("slp-vectorizer", "NodeBuilt", "f")
          .withDecision("gather")
          .withCost(0, 2),
  };
  std::string Text = renderRemarksJSON(In);
  std::vector<Remark> Out;
  std::string Err;
  ASSERT_TRUE(parseRemarksJSON(Text, Out, &Err)) << Err;
  EXPECT_EQ(Out, In);
}

TEST(RemarkTest, RoundTripsAwkwardCharacters) {
  // Messages and value names quote freely in practice: single and double
  // quotes, colons, commas, braces. Both serializations must escape them.
  Remark R = Remark::missed("slp-vectorizer", "GraphRejected", "f")
                 .withDecision("reject:cost")
                 .withValues({"a'b", "c\"d", "e:f", "g,h"})
                 .withMessage("rejected in 'loop': cost {4} >= \"0\", "
                              "see [docs]");
  std::vector<Remark> In = {R};

  std::vector<Remark> OutY, OutJ;
  std::string Err;
  ASSERT_TRUE(parseRemarksYAML(renderRemarksYAML(In), OutY, &Err)) << Err;
  EXPECT_EQ(OutY, In);
  ASSERT_TRUE(parseRemarksJSON(renderRemarksJSON(In), OutJ, &Err)) << Err;
  EXPECT_EQ(OutJ, In);
}

TEST(RemarkTest, EmptyStreamRoundTrips) {
  std::vector<Remark> Out;
  std::string Err;
  ASSERT_TRUE(parseRemarksYAML(renderRemarksYAML({}), Out, &Err)) << Err;
  EXPECT_TRUE(Out.empty());
  ASSERT_TRUE(parseRemarksJSON(renderRemarksJSON({}), Out, &Err)) << Err;
  EXPECT_TRUE(Out.empty());
}

TEST(RemarkTest, ParsersRejectGarbage) {
  std::vector<Remark> Out;
  EXPECT_FALSE(parseRemarksJSON("not json", Out));
  EXPECT_FALSE(parseRemarksJSON("[{\"kind\": \"nope\"}]", Out));
  EXPECT_FALSE(parseRemarksYAML("--- !nonsense\npass: 'x'\n...\n", Out));
}

TEST(RemarkTest, CollectorTakeDrains) {
  RemarkCollector RC;
  EXPECT_TRUE(RC.empty());
  RC.add(fullRemark());
  RC.add(Remark::analysis("p", "N", "f"));
  EXPECT_EQ(RC.size(), 2u);
  std::vector<Remark> Taken = RC.take();
  EXPECT_EQ(Taken.size(), 2u);
  EXPECT_TRUE(RC.empty());
}

} // namespace
