//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the mini-C frontend: lowering of the paper's C kernels,
/// expression precedence, type rules, diagnostics, and end-to-end
/// C -> IR -> SN-SLP -> execute pipelines.
///
//===----------------------------------------------------------------------===//

#include "cfront/CFrontend.h"
#include "interp/ExecutionEngine.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "slp/SLPVectorizer.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace snslp;

namespace {

class CFrontendTest : public ::testing::Test {
protected:
  Context Ctx;
  Module M{Ctx, "cfront"};

  Function *compile(const std::string &Source) {
    std::string Err;
    Function *F = compileCKernel(Source, M, &Err);
    EXPECT_NE(F, nullptr) << Err;
    if (F) {
      EXPECT_TRUE(verifyFunction(*F));
    }
    return F;
  }

  void expectError(const std::string &Source, const std::string &Fragment) {
    std::string Err;
    Function *F = compileCKernel(Source, M, &Err);
    EXPECT_EQ(F, nullptr);
    EXPECT_NE(Err.find(Fragment), std::string::npos)
        << "diagnostic was: " << Err;
  }
};

/// The paper's Fig. 3 source, written exactly as C (kernel `motiv2`).
const char *Fig3C = R"(
void motiv2_c(long *A, long *B, long *C, long *D, long n) {
  for (i = 0; i < n; i += 2) {
    A[i]   = B[i]   - C[i]   + D[i];
    A[i+1] = B[i+1] + D[i+1] - C[i+1];
  }
}
)";

TEST_F(CFrontendTest, CompilesFig3AndSNSLPVectorizesIt) {
  Function *F = compile(Fig3C);
  ASSERT_NE(F, nullptr);

  // O3 execution matches the C semantics.
  constexpr size_t N = 16;
  int64_t A[N + 2] = {0}, B[N + 2], C[N + 2], D[N + 2];
  for (size_t I = 0; I < N + 2; ++I) {
    B[I] = static_cast<int64_t>(3 * I + 1);
    C[I] = static_cast<int64_t>(I * I % 7);
    D[I] = static_cast<int64_t>(N - I);
  }
  auto Run = [&](Function *Fn, int64_t *Out) {
    ExecutionEngine E(*Fn);
    ASSERT_TRUE(E.run({argPointer(Out), argPointer(B), argPointer(C),
                       argPointer(D), argInt64(N)})
                    .Ok);
  };
  Run(F, A);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(A[I], B[I] - C[I] + D[I]) << I;

  // SN-SLP vectorizes the C-compiled kernel exactly like the IR-text one.
  Function *Vec = F->cloneInto(M, "motiv2_c.sn");
  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SNSLP;
  VectorizeStats Stats = runSLPVectorizer(*Vec, Cfg);
  EXPECT_EQ(Stats.GraphsVectorized, 1u);
  EXPECT_EQ(Stats.superNodesCommitted(), 1u);
  EXPECT_EQ(Stats.CommittedCost, -6); // The paper's Fig. 3 number.

  int64_t A2[N + 2] = {0};
  Run(Vec, A2);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(A2[I], A[I]) << I;
}

TEST_F(CFrontendTest, PrecedenceAndParentheses) {
  Function *F = compile("void prec(double *out, double *a, long n) {\n"
                        "  for (i = 0; i < n; i += 1) {\n"
                        "    out[i] = 2.0 + a[i] * 3.0 - (a[i] + 1.0) / 2.0;\n"
                        "  }\n"
                        "}\n");
  ASSERT_NE(F, nullptr);
  double A[4] = {1.0, 2.0, 3.0, 4.0};
  double Out[4] = {0};
  ExecutionEngine E(*F);
  ASSERT_TRUE(E.run({argPointer(Out), argPointer(A), argInt64(4)}).Ok);
  for (int I = 0; I < 4; ++I)
    EXPECT_DOUBLE_EQ(Out[I], 2.0 + A[I] * 3.0 - (A[I] + 1.0) / 2.0) << I;
}

TEST_F(CFrontendTest, UnaryMinusSqrtFabsAndScalars) {
  Function *F = compile(
      "void un(double *out, double *a, double s, long n) {\n"
      "  for (i = 0; i < n; i += 1) {\n"
      "    out[i] = sqrt(fabs(-a[i])) * s;\n"
      "  }\n"
      "}\n");
  ASSERT_NE(F, nullptr);
  double A[3] = {4.0, -9.0, 0.25};
  double Out[3] = {0};
  ExecutionEngine E(*F);
  ASSERT_TRUE(
      E.run({argPointer(Out), argPointer(A), argDouble(2.0), argInt64(3)})
          .Ok);
  EXPECT_DOUBLE_EQ(Out[0], 4.0);
  EXPECT_DOUBLE_EQ(Out[1], 6.0);
  EXPECT_DOUBLE_EQ(Out[2], 1.0);
}

TEST_F(CFrontendTest, IntegerNegationAndMul) {
  Function *F = compile("void in(long *out, long *a, long n) {\n"
                        "  for (i = 0; i < n; i += 1) {\n"
                        "    out[i] = -a[i] * 3 + 7;\n"
                        "  }\n"
                        "}\n");
  ASSERT_NE(F, nullptr);
  int64_t A[3] = {1, -2, 5};
  int64_t Out[3] = {0};
  ExecutionEngine E(*F);
  ASSERT_TRUE(E.run({argPointer(Out), argPointer(A), argInt64(3)}).Ok);
  EXPECT_EQ(Out[0], 4);
  EXPECT_EQ(Out[1], 13);
  EXPECT_EQ(Out[2], -8);
}

TEST_F(CFrontendTest, FloatArraysAndScaledIndex) {
  Function *F = compile("void fs(float *out, float *a, long n) {\n"
                        "  for (i = 0; i < n; i += 1) {\n"
                        "    out[i] = a[i*2] + a[i*2+1];\n"
                        "  }\n"
                        "}\n");
  ASSERT_NE(F, nullptr);
  float A[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  float Out[4] = {0};
  ExecutionEngine E(*F);
  ASSERT_TRUE(E.run({argPointer(Out), argPointer(A), argInt64(4)}).Ok);
  EXPECT_EQ(Out[0], 3.0f);
  EXPECT_EQ(Out[3], 15.0f);
}

TEST_F(CFrontendTest, PositiveAndNegativeOffsets) {
  Function *F = compile("void sc(long *out, long *a, long n) {\n"
                        "  for (i = 0; i < n; i += 1) {\n"
                        "    out[i] = a[i+3] - a[i-1];\n"
                        "  }\n"
                        "}\n");
  ASSERT_NE(F, nullptr);
  int64_t A[8] = {10, 20, 30, 40, 50, 60, 70, 80};
  int64_t Out[4] = {0};
  ExecutionEngine E(*F);
  // Pass &A[1] so i-1 stays in bounds.
  ASSERT_TRUE(E.run({argPointer(Out), argPointer(&A[1]), argInt64(4)}).Ok);
  EXPECT_EQ(Out[0], A[4] - A[0]);
  EXPECT_EQ(Out[3], A[7] - A[3]);
}

TEST_F(CFrontendTest, Diagnostics) {
  expectError("void e(long *a, long n) {\n"
              "  for (i = 0; i < n; i += 1) { a[i] = b[i]; }\n"
              "}\n",
              "unknown name 'b'");
  expectError("void e(long *a, long n) {\n"
              "  for (i = 0; i < n; i += 1) { a[i] = a[i] / 2; }\n"
              "}\n",
              "integer division");
  expectError("void e(long *a, double *d, long n) {\n"
              "  for (i = 0; i < n; i += 1) { a[i] = a[i] + d[i]; }\n"
              "}\n",
              "mixed element types");
  expectError("void e(long *a, long n) {\n"
              "  for (i = 0; i < n; i += 1) { a[i] = sqrt(a[i]); }\n"
              "}\n",
              "sqrt/fabs require");
  expectError("void e(long *a, double n) {\n"
              "  for (i = 0; i < n; i += 1) { a[i] = 1; }\n"
              "}\n",
              "must be a long parameter");
  expectError("void e(long *a, long n) {\n"
              "  for (i = 0; i < n; i += 0) { a[i] = 1; }\n"
              "}\n",
              "step must be positive");
  expectError("void e(long *a, long n) {", "expected 'for'");
}

TEST_F(CFrontendTest, TruncationsAndMutationsNeverCrash) {
  std::string Text = Fig3C;
  for (size_t Len = 0; Len < Text.size(); Len += 5) {
    Context LocalCtx;
    Module LocalM(LocalCtx, "trunc");
    std::string Err;
    Function *F = compileCKernel(Text.substr(0, Len), LocalM, &Err);
    if (F) {
      EXPECT_TRUE(verifyFunction(*F));
    } else {
      EXPECT_FALSE(Err.empty()) << "at length " << Len;
    }
  }
  RNG R(909);
  const char Mutations[] = {'x', '(', ']', '9', ';', '*', '<', '+'};
  for (unsigned Round = 0; Round < 200; ++Round) {
    std::string Mutated = Text;
    Mutated[R.nextBelow(Mutated.size())] =
        Mutations[R.nextBelow(sizeof(Mutations))];
    Context LocalCtx;
    Module LocalM(LocalCtx, "mut");
    std::string Err;
    Function *F = compileCKernel(Mutated, LocalM, &Err);
    if (F) {
      EXPECT_TRUE(verifyFunction(*F)) << "round " << Round;
    } else {
      EXPECT_FALSE(Err.empty()) << "round " << Round;
    }
  }
}

TEST_F(CFrontendTest, CAndIRFormsOfMotiv2AreEquivalentUnderSNSLP) {
  // Cycle-for-cycle equivalence of the frontend-lowered kernel and the
  // hand-written IR kernel after vectorization.
  Function *FromC = compile(Fig3C);
  ASSERT_NE(FromC, nullptr);
  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SNSLP;
  Function *VecC = FromC->cloneInto(M, "c.sn");
  runSLPVectorizer(*VecC, Cfg);

  constexpr size_t N = 64;
  std::vector<int64_t> A(N + 2, 0), B(N + 2), C(N + 2), D(N + 2);
  for (size_t I = 0; I < N + 2; ++I) {
    B[I] = static_cast<int64_t>(I);
    C[I] = static_cast<int64_t>(2 * I);
    D[I] = static_cast<int64_t>(I % 5);
  }
  ExecutionEngine E(*VecC);
  ExecutionResult R =
      E.run({argPointer(A.data()), argPointer(B.data()),
             argPointer(C.data()), argPointer(D.data()), argInt64(N)});
  ASSERT_TRUE(R.Ok);
  EXPECT_GT(R.VectorSteps, 0u);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(A[I], B[I] - C[I] + D[I]);
}

} // namespace
