//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: look-ahead depth. The Super-Node's greedy buildGroup is guided
/// by LSLP's look-ahead score; this sweep shows how much pairing quality
/// the recursion depth buys on the kernel suite (depth 0 = immediate
/// structural score only).
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/TextTable.h"

#include <iostream>

using namespace snslp;

int main() {
  std::cout << "=== Ablation: look-ahead depth (SN-SLP mode) ===\n\n";

  KernelRunner Runner;
  TextTable Table;
  Table.setHeader({"kernel", "depth 0", "depth 1", "depth 2 (paper)",
                   "depth 3"});

  for (const Kernel &K : kernelRegistry()) {
    if (!K.InTableI)
      continue;
    // O3 baseline for normalization.
    CompiledKernel O3 = Runner.compile(K, VectorizerMode::O3);
    KernelData BaseData(K.Buffers, K.N, 5);
    double BaseCycles = Runner.execute(O3, BaseData).Cycles;

    std::vector<std::string> Row{K.Name};
    for (unsigned Depth : {0u, 1u, 2u, 3u}) {
      VectorizerConfig Cfg;
      Cfg.LookAheadDepth = Depth;
      CompiledKernel CK = Runner.compile(K, VectorizerMode::SNSLP, Cfg);
      KernelData Data(K.Buffers, K.N, 5);
      double Cycles = Runner.execute(CK, Data).Cycles;
      Row.push_back(TextTable::formatDouble(BaseCycles / Cycles));
    }
    Table.addRow(std::move(Row));
  }
  Table.print(std::cout);

  std::cout << "\nValues are simulated-cycle speedups over O3. Depth >= 1 is\n"
               "needed to see through a multiply to its loads when pairing\n"
               "leaves (e.g. the stencil kernels); the paper uses the LSLP\n"
               "look-ahead (depth 2).\n";
  return 0;
}
