//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RTValue: the runtime representation of an IR value inside the
/// interpreter — a scalar or a short vector of up to 8 lanes. Lanes store
/// bit patterns; typed accessors apply the semantics of the element kind
/// (f32 arithmetic rounds to float precision, i32 wraps to 32 bits, etc.).
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_INTERP_RTVALUE_H
#define SNSLP_INTERP_RTVALUE_H

#include "ir/Type.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>

namespace snslp {

/// Maximum SIMD width supported by the interpreter (lanes).
inline constexpr unsigned MaxInterpLanes = 8;

/// Machine-readable classification of an interpreter failure. `Error`
/// strings stay human-oriented; callers that need to *dispatch* on the
/// failure kind (the fuzz oracle skipping fuel-exhausted baselines, the
/// fail-safe driver mapping traps to ErrorCodes) read this instead of
/// string-matching.
enum class Trap {
  None = 0,      ///< Run succeeded.
  FuelExhausted, ///< MaxSteps budget hit (possible infinite loop).
  OutOfBounds,   ///< Checked load/store outside registered memory.
  BadPhi,        ///< Phi had no incoming value for the executed edge.
  Other,         ///< Any other interpreter fault.
};

/// Serialized spelling ("none" | "fuel-exhausted" | ...).
inline const char *getTrapName(Trap T) {
  switch (T) {
  case Trap::None:
    return "none";
  case Trap::FuelExhausted:
    return "fuel-exhausted";
  case Trap::OutOfBounds:
    return "out-of-bounds";
  case Trap::BadPhi:
    return "bad-phi";
  case Trap::Other:
    return "other";
  }
  return "unknown";
}

/// A runtime scalar or vector value. POD; copied freely.
struct RTValue {
  TypeKind ElemKind = TypeKind::Void; // Element kind (scalar kind).
  uint8_t Lanes = 1;                  // 1 for scalars.
  std::array<uint64_t, MaxInterpLanes> Raw = {};

  /// \name Typed lane accessors.
  /// @{
  int64_t getInt(unsigned Lane = 0) const {
    assert(Lane < Lanes && "lane out of range");
    return static_cast<int64_t>(Raw[Lane]);
  }
  void setInt(int64_t V, unsigned Lane = 0) {
    assert(Lane < Lanes && "lane out of range");
    Raw[Lane] = static_cast<uint64_t>(V);
  }

  double getFP(unsigned Lane = 0) const {
    assert(Lane < Lanes && "lane out of range");
    double D;
    std::memcpy(&D, &Raw[Lane], sizeof(D));
    return D;
  }
  void setFP(double V, unsigned Lane = 0) {
    assert(Lane < Lanes && "lane out of range");
    std::memcpy(&Raw[Lane], &V, sizeof(V));
  }

  uint64_t getPointer(unsigned Lane = 0) const {
    assert(Lane < Lanes && "lane out of range");
    return Raw[Lane];
  }
  void setPointer(uint64_t V, unsigned Lane = 0) {
    assert(Lane < Lanes && "lane out of range");
    Raw[Lane] = V;
  }
  /// @}

  /// \name Factories.
  /// @{
  static RTValue makeInt(TypeKind Kind, int64_t V) {
    assert(Kind == TypeKind::Int1 || Kind == TypeKind::Int32 ||
           Kind == TypeKind::Int64);
    RTValue R;
    R.ElemKind = Kind;
    R.setInt(canonicalizeInt(Kind, V));
    return R;
  }
  static RTValue makeInt64(int64_t V) { return makeInt(TypeKind::Int64, V); }
  static RTValue makeBool(bool V) { return makeInt(TypeKind::Int1, V ? 1 : 0); }

  static RTValue makeFP(TypeKind Kind, double V) {
    assert(Kind == TypeKind::Float || Kind == TypeKind::Double);
    RTValue R;
    R.ElemKind = Kind;
    R.setFP(canonicalizeFP(Kind, V));
    return R;
  }
  static RTValue makeDouble(double V) { return makeFP(TypeKind::Double, V); }

  static RTValue makePointer(const void *P) {
    RTValue R;
    R.ElemKind = TypeKind::Pointer;
    R.setPointer(reinterpret_cast<uint64_t>(P));
    return R;
  }

  static RTValue makeVector(TypeKind ElemKind, unsigned NumLanes) {
    assert(NumLanes >= 2 && NumLanes <= MaxInterpLanes &&
           "unsupported vector width");
    RTValue R;
    R.ElemKind = ElemKind;
    R.Lanes = static_cast<uint8_t>(NumLanes);
    return R;
  }
  /// @}

  /// Wraps \p V to the width of integer kind \p Kind (sign-extended).
  static int64_t canonicalizeInt(TypeKind Kind, int64_t V) {
    if (Kind == TypeKind::Int1)
      return V & 1;
    if (Kind == TypeKind::Int32)
      return static_cast<int32_t>(V);
    return V;
  }

  /// Rounds \p V to the precision of FP kind \p Kind.
  static double canonicalizeFP(TypeKind Kind, double V) {
    if (Kind == TypeKind::Float)
      return static_cast<float>(V);
    return V;
  }

  /// Bitwise comparison (used by differential tests on integer outputs).
  bool bitwiseEquals(const RTValue &Other) const {
    if (ElemKind != Other.ElemKind || Lanes != Other.Lanes)
      return false;
    for (unsigned I = 0; I < Lanes; ++I)
      if (Raw[I] != Other.Raw[I])
        return false;
    return true;
  }
};

} // namespace snslp

#endif // SNSLP_INTERP_RTVALUE_H
