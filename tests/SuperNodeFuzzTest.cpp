//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based testing of the vectorizer: random expression trees over
/// each operator family (including inverse elements), random per-lane
/// shapes, cross-checked by the differential oracle (src/fuzz) — every
/// vectorizer configuration, both execution engines, the cleanup passes
/// and the metamorphic rewrites. Catches APO/legality bugs that
/// hand-written cases miss.
///
//===----------------------------------------------------------------------===//

#include "fuzz/DiffOracle.h"
#include "fuzz/IRGenerator.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace snslp;
using namespace snslp::fuzz;

namespace {

struct FuzzSetup {
  OpFamily Family;
  unsigned Lanes;
  uint64_t Seed;
};

class SuperNodeFuzzTest : public ::testing::TestWithParam<FuzzSetup> {
protected:
  Context Ctx;
  Module M{Ctx, "fuzz"};
};

TEST_P(SuperNodeFuzzTest, TransformationsPreserveSemantics) {
  const FuzzSetup &Setup = GetParam();
  RNG R(Setup.Seed);
  IRGenerator Gen(M);
  DiffOracle Oracle;

  constexpr unsigned Rounds = 60;
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    GeneratedProgram P = Gen.generateExpressionTree(
        "f" + std::to_string(Round), Setup.Family, Setup.Lanes, R);
    ASSERT_TRUE(verifyFunction(*P.F));
    OracleReport Report = Oracle.check(P, Setup.Seed + Round);
    EXPECT_TRUE(Report.ok())
        << "round " << Round << "\n" << Report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, SuperNodeFuzzTest,
    ::testing::Values(FuzzSetup{OpFamily::IntAddSub, 2, 1001},
                      FuzzSetup{OpFamily::IntAddSub, 4, 1002},
                      FuzzSetup{OpFamily::FPAddSub, 2, 2001},
                      FuzzSetup{OpFamily::FPAddSub, 4, 2002},
                      FuzzSetup{OpFamily::FPMulDiv, 2, 3001},
                      FuzzSetup{OpFamily::FPMulDiv, 4, 3002}),
    [](const ::testing::TestParamInfo<FuzzSetup> &Info) {
      const char *Fam = Info.param.Family == OpFamily::IntAddSub ? "IntAddSub"
                        : Info.param.Family == OpFamily::FPAddSub
                            ? "FPAddSub"
                            : "FPMulDiv";
      return std::string(Fam) + "_x" + std::to_string(Info.param.Lanes);
    });

} // namespace
