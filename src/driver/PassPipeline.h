//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini -O3 pipeline: scalar cleanup (constant folding, local CSE,
/// DCE) around the SLP vectorizer, mirroring where LLVM runs the SLP pass.
/// Built on the instrumented PassManager, so every run can report per-pass
/// wall/cycle timings, verify the IR between passes (pinpointing the
/// offending pass) and snapshot the IR after each pass — see
/// PassManager.h and docs/observability.md.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_DRIVER_PASSPIPELINE_H
#define SNSLP_DRIVER_PASSPIPELINE_H

#include "driver/PassManager.h"
#include "slp/SLPVectorizer.h"

#include <cstddef>

namespace snslp {

class Function;

/// Pipeline configuration.
struct PipelineOptions {
  /// Run constant folding + CSE + DCE before the vectorizer (canonical
  /// input) and after it (cleanup of extracts/duplicates).
  bool EarlyCleanup = true;
  bool LateCleanup = true;
  VectorizerConfig Vectorizer;
  /// Per-pass instrumentation (timing is always recorded; VerifyEach,
  /// PrintAfterAll and the remark sink are opt-in). When a remark sink is
  /// set, the vectorizer's structured decision remarks are forwarded into
  /// it, interleaved with the PassManager's own PassExecuted remarks.
  PassManagerOptions Instrument;
};

/// Aggregated pipeline results.
struct PipelineResult {
  size_t ConstantsFolded = 0;
  size_t CSERemoved = 0;
  size_t DCERemoved = 0;
  VectorizeStats VecStats;
  /// Per-pass execution record of this run (timings, VerifyEach verdicts,
  /// optional IR snapshots). Pass names: "constant-folding", "cse", "dce"
  /// (prefixed "early-"/"late-") and "slp-vectorizer".
  PassRunReport Report;
};

/// Runs cleanup -> vectorizer -> cleanup over \p F in place.
PipelineResult runPassPipeline(Function &F, const PipelineOptions &Options);

} // namespace snslp

#endif // SNSLP_DRIVER_PASSPIPELINE_H
