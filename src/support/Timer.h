//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing utilities used by the compilation-time experiment
/// (Fig. 11) and the benchmark harness (10 runs + warm-up methodology).
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SUPPORT_TIMER_H
#define SNSLP_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>
#include <vector>

namespace snslp {

/// A simple monotonic stopwatch.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Returns elapsed nanoseconds since construction or the last reset().
  uint64_t elapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

  /// Returns elapsed time in seconds.
  double elapsedSeconds() const {
    return static_cast<double>(elapsedNanos()) * 1e-9;
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Mean and standard deviation over a sample of measurements; the paper
/// reports the average of 10 executions after one warm-up run with error
/// bars showing the standard deviation.
struct SampleStats {
  double Mean = 0.0;
  double StdDev = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Computes \ref SampleStats for \p Samples. Returns zeros for empty input.
SampleStats computeSampleStats(const std::vector<double> &Samples);

/// Reads a free-running CPU cycle counter: `rdtsc` on x86-64, the virtual
/// counter (`cntvct_el0`) on AArch64, and the monotonic nanosecond clock
/// elsewhere. Only deltas between two reads on the same thread are
/// meaningful; the instrumented PassManager reports per-pass deltas
/// alongside wall time (-ftime-report style).
uint64_t readCycleCounter();

/// Runs \p Fn once as a warm-up and then \p Runs times, returning the stats
/// of the timed runs in seconds. This mirrors the paper's measurement
/// methodology (Section V: "average of 10 executions, after skipping the
/// first warm-up run").
template <typename Callable>
SampleStats measureSeconds(Callable &&Fn, unsigned Runs = 10) {
  Fn(); // Warm-up run, not measured.
  std::vector<double> Samples;
  Samples.reserve(Runs);
  for (unsigned I = 0; I < Runs; ++I) {
    Timer T;
    Fn();
    Samples.push_back(T.elapsedSeconds());
  }
  return computeSampleStats(Samples);
}

} // namespace snslp

#endif // SNSLP_SUPPORT_TIMER_H
