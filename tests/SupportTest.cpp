//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the support library: casting, RNG determinism, sample
/// statistics, the stats registry, text tables, and command-line parsing.
///
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/RNG.h"
#include "support/Statistic.h"
#include "support/TextTable.h"
#include "support/Timer.h"

#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace snslp;

namespace {

TEST(CastingTest, IsaCastDynCast) {
  Context Ctx;
  Constant *CI = ConstantInt::get(Ctx.getInt64Ty(), 7);
  Constant *CF = ConstantFP::get(Ctx.getDoubleTy(), 1.5);

  Value *VI = CI;
  EXPECT_TRUE(isa<ConstantInt>(VI));
  EXPECT_FALSE(isa<ConstantFP>(VI));
  EXPECT_TRUE(isa<Constant>(VI));
  EXPECT_EQ(cast<ConstantInt>(VI)->getValue(), 7);
  EXPECT_EQ(dyn_cast<ConstantFP>(VI), nullptr);
  EXPECT_NE(dyn_cast<ConstantFP>(static_cast<Value *>(CF)), nullptr);

  Value *Null = nullptr;
  EXPECT_EQ(dyn_cast_or_null<ConstantInt>(Null), nullptr);
  EXPECT_FALSE(isa_and_nonnull<ConstantInt>(Null));
  EXPECT_TRUE(isa_and_nonnull<ConstantInt>(VI));

  // Reference forms.
  const Value &Ref = *CI;
  EXPECT_TRUE(isa<ConstantInt>(Ref));
  EXPECT_EQ(cast<ConstantInt>(Ref).getValue(), 7);
}

TEST(RNGTest, DeterministicAndBounded) {
  RNG A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    uint64_t X = A.next();
    EXPECT_EQ(X, B.next());
  }
  // Different seeds diverge (overwhelmingly likely in 100 draws).
  bool Diverged = false;
  RNG A2(42);
  for (int I = 0; I < 100; ++I)
    if (A2.next() != C.next())
      Diverged = true;
  EXPECT_TRUE(Diverged);

  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(TimerTest, SampleStatsBasics) {
  SampleStats S = computeSampleStats({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                      9.0});
  EXPECT_DOUBLE_EQ(S.Mean, 5.0);
  EXPECT_DOUBLE_EQ(S.StdDev, 2.0);
  EXPECT_DOUBLE_EQ(S.Min, 2.0);
  EXPECT_DOUBLE_EQ(S.Max, 9.0);

  SampleStats Empty = computeSampleStats({});
  EXPECT_DOUBLE_EQ(Empty.Mean, 0.0);
}

TEST(TimerTest, MeasureSecondsRunsWarmupPlusN) {
  int Calls = 0;
  SampleStats S = measureSeconds([&Calls] { ++Calls; }, 5);
  EXPECT_EQ(Calls, 6); // 1 warm-up + 5 measured.
  EXPECT_GE(S.Min, 0.0);
}

TEST(StatsRegistryTest, CountersAndDistributions) {
  StatsRegistry R;
  R.add("graphs", 2);
  R.add("graphs");
  EXPECT_EQ(R.get("graphs"), 3);
  EXPECT_EQ(R.get("missing"), 0);

  R.record("size", 2);
  R.record("size", 4);
  EXPECT_EQ(R.distributionSum("size"), 6);
  EXPECT_DOUBLE_EQ(R.distributionMean("size"), 3.0);
  EXPECT_DOUBLE_EQ(R.distributionMean("nothing"), 0.0);

  StatsRegistry R2;
  R2.add("graphs", 10);
  R2.record("size", 6);
  R.mergeFrom(R2);
  EXPECT_EQ(R.get("graphs"), 13);
  EXPECT_EQ(R.distributionSum("size"), 12);

  std::ostringstream OS;
  R.print(OS);
  EXPECT_NE(OS.str().find("graphs = 13"), std::string::npos);

  R.clear();
  EXPECT_EQ(R.get("graphs"), 0);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer-name", "2.5"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  // Both data rows place the second column at the same offset.
  size_t Row1 = Out.find("x ");
  size_t Row2 = Out.find("longer-name");
  ASSERT_NE(Row1, std::string::npos);
  ASSERT_NE(Row2, std::string::npos);
  size_t Col1 = Out.find('1', Row1) - Out.rfind('\n', Row1);
  size_t Col2 = Out.find("2.5", Row2) - Out.rfind('\n', Row2);
  EXPECT_EQ(Col1, Col2);
}

TEST(TextTableTest, CSVExport) {
  TextTable T;
  T.setHeader({"kernel", "speedup"});
  T.addRow({"a,b", "1.5"});
  T.addRow({"quote\"d", "2"});
  std::ostringstream OS;
  T.printCSV(OS);
  EXPECT_EQ(OS.str(), "kernel,speedup\n\"a,b\",1.5\n\"quote\"\"d\",2\n");
}

TEST(TextTableTest, Formatters) {
  EXPECT_EQ(TextTable::formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::formatDouble(-0.5, 3), "-0.500");
  EXPECT_EQ(TextTable::formatMeanStd(1.5, 0.25, 2), "1.50 ± 0.25");
}

TEST(CommandLineTest, ParsesOptionsAndPositionals) {
  const char *Argv[] = {"prog",          "input.ir", "--mode=snslp",
                        "--max-vf=8",    "--stats",  "--ratio=1.5",
                        "--flag=false",  "second"};
  CommandLine CL(8, Argv);
  EXPECT_EQ(CL.positional().size(), 2u);
  EXPECT_EQ(CL.positional()[0], "input.ir");
  EXPECT_EQ(CL.positional()[1], "second");
  EXPECT_EQ(CL.getString("mode"), "snslp");
  EXPECT_EQ(CL.getInt("max-vf"), 8);
  EXPECT_TRUE(CL.has("stats"));
  EXPECT_TRUE(CL.getBool("stats"));
  EXPECT_FALSE(CL.getBool("flag", true));
  EXPECT_FALSE(CL.has("absent"));
  EXPECT_EQ(CL.getInt("absent", -7), -7);
  EXPECT_EQ(CL.getString("absent", "dflt"), "dflt");
}

} // namespace
