//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine address analysis (a SCEV-lite): decomposes pointer operands into
///   Base + sum(Coefficient_i * Variable_i) + ConstantBytes
/// which lets the SLP vectorizer prove that loads/stores are adjacent in
/// memory and lets the dependence analysis disambiguate accesses.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_ANALYSIS_MEMORYADDRESS_H
#define SNSLP_ANALYSIS_MEMORYADDRESS_H

#include <cstdint>
#include <map>

namespace snslp {

class Instruction;
class Value;

/// Canonical affine form of an address expression, in bytes.
struct AddressDescriptor {
  bool Valid = false;
  /// The underlying pointer (usually a noalias function argument).
  const Value *Base = nullptr;
  /// Variable part: value -> byte coefficient. Canonical: no zero coeffs.
  std::map<const Value *, int64_t> Terms;
  /// Constant byte offset.
  int64_t ConstBytes = 0;

  /// Returns true when both descriptors have the same base and the same
  /// variable part, so their distance is the constant \p Delta (B - A).
  bool hasKnownDistance(const AddressDescriptor &Other,
                        int64_t &Delta) const;
};

/// Analyzes pointer value \p Ptr (typically a GEP chain over an argument).
/// Always returns a descriptor; Valid is false only for null input. Unknown
/// index sub-expressions become opaque variables with coefficient 1, which
/// keeps the result canonical and comparisons conservative.
AddressDescriptor analyzePointer(const Value *Ptr);

/// Result of an alias query between two memory accesses.
enum class AliasResult { NoAlias, MayAlias, MustAlias };

/// Compares accesses (\p A, \p SizeA bytes) and (\p B, \p SizeB bytes).
///
/// Distinct pointer arguments are treated as noalias (the kernel calling
/// convention, documented in DESIGN.md). Same-base accesses with a known
/// distance are disambiguated exactly; everything else is MayAlias.
AliasResult aliasAddresses(const AddressDescriptor &A, unsigned SizeA,
                           const AddressDescriptor &B, unsigned SizeB);

/// Convenience: alias query directly on two load/store instructions.
AliasResult aliasInstructions(const Instruction *A, const Instruction *B);

/// Returns true if \p Second accesses exactly \p First's address plus
/// \p First's access size (i.e. they are adjacent, in order).
bool areConsecutiveAccesses(const Instruction *First,
                            const Instruction *Second);

/// Returns the access size in bytes of a load or store instruction.
unsigned getAccessSize(const Instruction *MemInst);

/// Returns the pointer operand of a load or store instruction.
const Value *getPointerOperand(const Instruction *MemInst);

} // namespace snslp

#endif // SNSLP_ANALYSIS_MEMORYADDRESS_H
