#!/bin/sh
# Deterministic smoke slice for snslp-loadgen against the sharded TCP
# daemon (ctest: loadgen_smoke). Everything is pinned: the loadgen seed
# fixes the corpus, the hit/miss mix, and the (fixed-interval) arrival
# schedule; the daemon arms the one-shot service.shard.queue.overload
# fault so exactly one measured request is shed with the retryable
# `overloaded` code and then retried to success. The run asserts
#
#   - >=1 cache hit        (--assert-min-hits=1: the hot pool repeats)
#   - >=1 shed request     (--assert-min-shed=1: the armed fault)
#   - monotone stats       (--assert-monotone-stats: `stats: 1` per-shard
#                           counter dumps between levels never decrease)
#   - zero hard errors     (loadgen exits nonzero otherwise)
#
# and finally that the daemon drains cleanly on SIGTERM (exit 0, bounded
# wall clock) with the loadgen's connections long gone.
#
# Usage: service_loadgen_smoke.sh <snslpd> <snslp-loadgen> <workdir>
set -eu

SNSLPD=$1
LOADGEN=$2
WORKDIR=$3

mkdir -p "$WORKDIR"
DPID=""

cleanup() {
  [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

fail() {
  echo "service_loadgen_smoke: FAIL: $1" >&2
  exit 1
}

# A 2-shard TCP daemon on an ephemeral port, one-shot shard-overload
# fault armed. No --max-requests: shutdown is the SIGTERM drain below.
SNSLP_FAULT_INJECT=service.shard.queue.overload \
  "$SNSLPD" --tcp-port=0 --shards=2 --workers=2 --queue-depth=64 \
  > "$WORKDIR/snslpd.out" 2> "$WORKDIR/snslpd.err" &
DPID=$!

# Scrape the kernel-assigned port from the announcement line.
TRIES=0
PORT=""
while [ -z "$PORT" ]; do
  TRIES=$((TRIES + 1))
  [ "$TRIES" -gt 100 ] && fail "daemon never announced its TCP port"
  kill -0 "$DPID" 2>/dev/null || fail "daemon exited before listening"
  PORT=$(sed -n 's/^snslpd: listening on tcp 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
         "$WORKDIR/snslpd.out" 2>/dev/null || true)
  [ -n "$PORT" ] || sleep 0.1
done

# Fixed-interval schedule, no warmup (the one-shot fault must hit a
# *measured* request, and the first submit is deterministically first).
"$LOADGEN" --connect="127.0.0.1:$PORT" \
  --arrival=fixed --rate=500 --requests=60 \
  --connections=2 --threads=1 --pool=4 --hit-ratio=0.9 --seed=7 \
  --retries=1 --no-warmup \
  --assert-min-hits=1 --assert-min-shed=1 --assert-monotone-stats \
  --summary="$WORKDIR/summary.txt" > "$WORKDIR/loadgen.out" \
  || fail "loadgen assertions failed (see $WORKDIR/loadgen.out)"

grep -q '^total\.shed=1$' "$WORKDIR/summary.txt" \
  || fail "expected exactly 1 shed from the one-shot fault"
grep -q '^total\.errors=0$' "$WORKDIR/summary.txt" \
  || fail "expected zero hard errors"

# SIGTERM drain: the daemon must exit 0 on its own, promptly.
kill -TERM "$DPID"
TRIES=0
while kill -0 "$DPID" 2>/dev/null; do
  TRIES=$((TRIES + 1))
  [ "$TRIES" -gt 100 ] && fail "daemon did not drain within 10s of SIGTERM"
  sleep 0.1
done
if ! wait "$DPID"; then
  DPID=""
  fail "daemon did not exit cleanly after SIGTERM"
fi
DPID=""

echo "service_loadgen_smoke: PASS"
