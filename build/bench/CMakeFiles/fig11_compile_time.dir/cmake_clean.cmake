file(REMOVE_RECURSE
  "CMakeFiles/fig11_compile_time.dir/fig11_compile_time.cpp.o"
  "CMakeFiles/fig11_compile_time.dir/fig11_compile_time.cpp.o.d"
  "fig11_compile_time"
  "fig11_compile_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
