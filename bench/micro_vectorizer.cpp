//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmark of compile-time components: parsing, the verifier, and
/// one full vectorizer run per configuration — the latter with the
/// look-ahead memo cache both on and off, with hit/miss counters recorded
/// alongside the timings. Complements Fig. 11 with per-phase numbers;
/// everything lands in BENCH_vectorizer.json (name, iters, ns/op).
///
/// Usage: micro_vectorizer [--smoke]
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"

#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "kernels/Kernel.h"
#include "slp/SLPVectorizer.h"

#include <cstdio>

using namespace snslp;
using namespace snslp::benchjson;

namespace {

const Kernel &testKernel() { return *findKernel("motiv2"); }

/// Kernels for the memoization on/off comparison: the motivating example
/// plus the suite's largest graphs (most look-ahead queries per run).
std::vector<const Kernel *> memoKernels() {
  return {findKernel("motiv2"), findKernel("dealii_stencil"),
          findKernel("sphinx_bias")};
}

/// One timed vectorizer series; returns the stats of the last run so the
/// caller can report cache counters.
VectorizeStats benchVectorize(Report &Rep, const Kernel &K,
                              const std::string &Name, VectorizerMode Mode,
                              bool Memo, bool Smoke, unsigned Depth = 0) {
  Context Ctx;
  Module M(Ctx, "bench");
  std::string Err;
  if (!parseIR(K.IRText, M, &Err)) {
    std::fprintf(stderr, "parse failed: %s\n", Err.c_str());
    std::exit(1);
  }
  Function *Pristine = M.getFunction(K.Name);
  unsigned Counter = 0;
  VectorizeStats Last;
  auto Run = [&] {
    // The clone cost is tiny and identical across modes.
    Function *Clone =
        Pristine->cloneInto(M, K.Name + std::to_string(Counter++));
    VectorizerConfig Cfg;
    Cfg.Mode = Mode;
    Cfg.EnableLookAheadMemo = Memo;
    if (Depth)
      Cfg.LookAheadDepth = Depth;
    Last = runSLPVectorizer(*Clone, Cfg);
    M.eraseFunction(Clone->getName());
  };
  auto [Iters, Ns] = measure(Run, Smoke);
  Entry &E = Rep.add(Name, Iters, Ns);
  E.Extra.emplace_back("lookahead_cache_hits",
                       static_cast<double>(Last.LookAheadCacheHits));
  E.Extra.emplace_back("lookahead_cache_misses",
                       static_cast<double>(Last.LookAheadCacheMisses));
  std::printf("%-42s %12.0f ns/op  (hits %llu, misses %llu)\n",
              Name.c_str(), Ns,
              static_cast<unsigned long long>(Last.LookAheadCacheHits),
              static_cast<unsigned long long>(Last.LookAheadCacheMisses));
  return Last;
}

} // namespace

int main(int argc, char **argv) {
  const bool Smoke = isSmokeRun(argc, argv);
  Report Rep("BENCH_vectorizer.json");
  const Kernel &K = testKernel();

  {
    auto Run = [&] {
      Context Ctx;
      Module M(Ctx, "bench");
      std::string Err;
      if (!parseIR(K.IRText, M, &Err))
        std::exit(1);
    };
    auto [Iters, Ns] = measure(Run, Smoke);
    Rep.add("parse/" + K.Name, Iters, Ns);
    std::printf("%-42s %12.0f ns/op\n", ("parse/" + K.Name).c_str(), Ns);
  }

  {
    Context Ctx;
    Module M(Ctx, "bench");
    std::string Err;
    if (!parseIR(K.IRText, M, &Err)) {
      std::fprintf(stderr, "parse failed: %s\n", Err.c_str());
      return 1;
    }
    Function *F = M.getFunction(K.Name);
    auto Run = [&] {
      if (!verifyFunction(*F))
        std::exit(1);
    };
    auto [Iters, Ns] = measure(Run, Smoke);
    Rep.add("verify/" + K.Name, Iters, Ns);
    std::printf("%-42s %12.0f ns/op\n", ("verify/" + K.Name).c_str(), Ns);
  }

  benchVectorize(Rep, K, "vectorize/" + K.Name + "/SLP", VectorizerMode::SLP,
                 true, Smoke);
  for (const Kernel *MK : memoKernels()) {
    for (VectorizerMode Mode :
         {VectorizerMode::LSLP, VectorizerMode::SNSLP}) {
      std::string Base =
          "vectorize/" + MK->Name + "/" + getModeName(Mode);
      benchVectorize(Rep, *MK, Base, Mode, /*Memo=*/true, Smoke);
      benchVectorize(Rep, *MK, Base + "/memo_off", Mode, /*Memo=*/false,
                     Smoke);
    }
  }

  // The GoSLP series (docs/goslp.md): one timed global-selection run per
  // registry kernel, with the greedy-vs-solver committed-cost delta
  // recorded alongside (cost_delta < 0 would mean the solver found a
  // selection greedy missed; 0 means the exact solve confirms greedy).
  for (const Kernel &GK : kernelRegistry()) {
    std::string Base = "vectorize/" + GK.Name + "/GoSLP";
    VectorizeStats Go = benchVectorize(Rep, GK, Base, VectorizerMode::GoSLP,
                                       /*Memo=*/true, Smoke);
    // One untimed greedy SN-SLP run for the comparison column.
    Context Ctx;
    Module M(Ctx, "bench");
    std::string Err;
    if (!parseIR(GK.IRText, M, &Err)) {
      std::fprintf(stderr, "parse failed: %s\n", Err.c_str());
      return 1;
    }
    VectorizerConfig SNCfg;
    SNCfg.Mode = VectorizerMode::SNSLP;
    VectorizeStats SN = runSLPVectorizer(*M.getFunction(GK.Name), SNCfg);
    Entry &E = Rep.last();
    E.Extra.emplace_back("cost_greedy", static_cast<double>(SN.CommittedCost));
    E.Extra.emplace_back("cost_goslp", static_cast<double>(Go.CommittedCost));
    E.Extra.emplace_back("cost_delta",
                         static_cast<double>(Go.CommittedCost -
                                             SN.CommittedCost));
    E.Extra.emplace_back("packs_enumerated",
                         static_cast<double>(Go.PacksEnumerated));
    E.Extra.emplace_back("packs_selected",
                         static_cast<double>(Go.PacksSelected));
    E.Extra.emplace_back("solver_nodes",
                         static_cast<double>(Go.SolverNodesExplored));
    E.Extra.emplace_back("scalar_proved_optimal",
                         static_cast<double>(Go.SolverProvedScalarOptimal));
  }

  // The look-ahead recursion is O(4^depth) per pair without memoization;
  // at the default depth 2 the cache is roughly break-even, so this series
  // shows where it pays: a deep-look-ahead configuration on the suite's
  // largest graph.
  for (const char *KName : {"dealii_stencil", "sphinx_bias"}) {
    const Kernel *MK = findKernel(KName);
    std::string Base = std::string("vectorize/") + KName + "/SN-SLP/depth6";
    benchVectorize(Rep, *MK, Base, VectorizerMode::SNSLP, /*Memo=*/true,
                   Smoke, /*Depth=*/6);
    benchVectorize(Rep, *MK, Base + "/memo_off", VectorizerMode::SNSLP,
                   /*Memo=*/false, Smoke, /*Depth=*/6);
  }

  return Rep.write() ? 0 : 1;
}
