//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned console tables. The benchmark binaries print the paper's
/// tables and figure series as plain-text rows; this helper keeps them
/// readable without pulling in a formatting library.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SUPPORT_TEXTTABLE_H
#define SNSLP_SUPPORT_TEXTTABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace snslp {

/// Accumulates rows of string cells and prints them with aligned columns.
class TextTable {
public:
  /// Sets the header row (printed with a separator underneath).
  void setHeader(std::vector<std::string> Cells) {
    Header = std::move(Cells);
  }

  /// Appends one data row. Rows may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells) {
    Rows.push_back(std::move(Cells));
  }

  /// Prints the table to \p OS with two spaces between columns. When the
  /// SNSLP_CSV environment variable is set, emits CSV instead so benchmark
  /// binaries can regenerate machine-readable figure data without flags.
  void print(std::ostream &OS) const;

  /// Prints the table as CSV (quotes cells containing commas/quotes).
  void printCSV(std::ostream &OS) const;

  /// Formats a double with \p Precision fractional digits.
  static std::string formatDouble(double Value, int Precision = 3);

  /// Formats "Mean ± StdDev" for measurement cells (paper error bars).
  static std::string formatMeanStd(double Mean, double StdDev,
                                   int Precision = 3);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace snslp

#endif // SNSLP_SUPPORT_TEXTTABLE_H
