//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "slp/SLPGraph.h"

#include "ir/IRPrinter.h"
#include "support/ErrorHandling.h"

#include <unordered_map>

using namespace snslp;

const char *snslp::getNodeKindName(SLPNodeKind Kind) {
  switch (Kind) {
  case SLPNodeKind::Vectorize:
    return "Vectorize";
  case SLPNodeKind::Alternate:
    return "Alternate";
  case SLPNodeKind::Gather:
    return "Gather";
  case SLPNodeKind::Shuffle:
    return "Shuffle";
  }
  snslp_unreachable("covered switch");
}

void SLPGraph::print(std::ostream &OS) const {
  std::unordered_map<const SLPNode *, unsigned> Ids;
  for (const auto &N : Nodes)
    Ids[N.get()] = static_cast<unsigned>(Ids.size());

  OS << "SLPGraph: cost=" << TotalCost << ", nodes=" << Nodes.size() << '\n';
  for (const auto &N : Nodes) {
    OS << "  n" << Ids.at(N.get()) << " [" << getNodeKindName(N->getKind())
       << ", cost=" << N->getCost();
    if (N->getSuperNodeId() >= 0)
      OS << ", sn=" << N->getSuperNodeId();
    OS << "] {";
    for (unsigned L = 0; L < N->getNumLanes(); ++L) {
      if (L)
        OS << " | ";
      OS << toString(*N->getLane(L));
    }
    OS << "}";
    if (N->getNumOperands()) {
      OS << " ops:";
      for (unsigned I = 0; I < N->getNumOperands(); ++I)
        OS << " n" << Ids.at(N->getOperand(I));
    }
    OS << '\n';
  }
}
