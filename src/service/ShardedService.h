//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ShardedService: N independent CompileService shards behind one façade.
///
/// Every request is routed by its content digest — `Digest128(config
/// fingerprint + module text) mod N` — to exactly one shard, which owns a
/// private ThreadPool slice, CompileCache partition, StatsRegistry, and
/// admission-control queue bound. Identical requests therefore always meet
/// on the same shard (single-flight coalescing and LRU eviction never take
/// a cross-shard lock), and the PR-9 overload machinery — bounded queues,
/// the retryable `overloaded` rejection, in-queue deadline shedding —
/// becomes per-shard: one hot digest saturating its shard cannot starve
/// the other N-1 queues.
///
/// The persistent ArtifactStore directory is deliberately *shared* across
/// shards: the store is content-addressed and crash-safe (atomic
/// tmp+rename), so disk hits are shard-count-independent — a daemon
/// restarted with a different --shards value still serves `cache: disk`
/// for everything a previous generation published.
///
/// Determinism contract (tests/ShardedServiceTest.cpp): the compiled bytes
/// for a request are a pure function of the request, never of the shard
/// count — 1-shard and 8-shard services are bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SERVICE_SHARDEDSERVICE_H
#define SNSLP_SERVICE_SHARDEDSERVICE_H

#include "service/CompileService.h"
#include "support/Statistic.h"

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

namespace snslp {

/// Construction parameters for the sharded façade.
struct ShardedServiceConfig {
  /// Number of independent shards (clamped to >= 1).
  unsigned Shards = 1;
  /// Total worker threads across every shard (0 = hardware concurrency);
  /// each shard gets an equal slice, minimum one thread. Keeping the
  /// *total* constant as Shards varies is what makes shard-count sweeps a
  /// contention experiment rather than a thread-count experiment.
  unsigned TotalWorkers = 0;
  /// Total compile-cache byte budget, split evenly across shards
  /// (0 = unlimited per shard).
  size_t CacheBytes = 64ull << 20;
  /// Admission control: max pending compile jobs *per shard* (0 =
  /// unbounded). A full shard queue rejects with the retryable
  /// `overloaded` code without touching any other shard.
  size_t MaxQueueDepth = 0;
  /// Persistent artifact store root, shared by all shards (empty = off).
  std::string StoreDir;
};

/// N independent CompileService shards routed by request digest.
/// Thread-safe; routing state is immutable after construction.
class ShardedService {
public:
  explicit ShardedService(ShardedServiceConfig Cfg = ShardedServiceConfig());
  ~ShardedService();

  ShardedService(const ShardedService &) = delete;
  ShardedService &operator=(const ShardedService &) = delete;

  unsigned shards() const { return static_cast<unsigned>(Shard.size()); }

  /// The routing function: the full 128-bit digest reduced mod \p NumShards.
  /// Pure and stable — the same key maps to the same shard in every
  /// process, forever (the loadgen and the tests both depend on it).
  static unsigned shardIndexFor(const Digest128 &Key, unsigned NumShards);

  /// Shard index \p Req routes to (shardIndexFor of its requestKey).
  unsigned shardFor(const CompileRequest &Req) const;

  /// Routes \p Req to its shard's bounded queue. Settles exactly like
  /// CompileService::submit — including the immediate retryable
  /// `overloaded` rejection when that shard's queue is full. The per-shard
  /// admission trip is also a fault site (`service.shard.queue.overload`).
  std::future<Expected<CompiledUnit>> submit(CompileRequest Req);

  /// Callback flavour of submit for reactor front-ends: \p Done is invoked
  /// exactly once — on a shard worker thread on completion, or inline in
  /// the caller when admission control rejects the request. The callback
  /// must not block the worker for long (encode + hand off only).
  void submitAsync(CompileRequest Req,
                   std::function<void(Expected<CompiledUnit>)> Done);

  /// Compiles in the calling thread through the routed shard's cache and
  /// single-flight machinery (admission control does not apply, matching
  /// CompileService::compileSync; the injected per-shard trip still does).
  Expected<CompiledUnit> compileSync(const CompileRequest &Req);

  /// Direct access to shard \p Idx (tests, stats dumps).
  CompileService &shard(unsigned Idx) { return *Shard.at(Idx)->Service; }
  const StatsRegistry &shardStats(unsigned Idx) const {
    return Shard.at(Idx)->Stats;
  }

  /// Deterministically ordered per-shard counter dump:
  ///   shard <i> <counter>: <value>\n
  /// for every service.* counter plus queue depth peaks — the payload of
  /// the protocol's `stats: 1` introspection request, which the loadgen
  /// polls to assert per-shard counters increase monotonically.
  std::string renderStats() const;

private:
  struct ShardState {
    StatsRegistry Stats;
    std::unique_ptr<CompileService> Service;
  };

  /// The injected per-shard admission trip (`service.shard.queue.overload`)
  /// plus its accounting, shared by the three submission paths. Returns
  /// true when the request must be rejected with shardOverloadError.
  bool tripOverload(unsigned Idx);

  /// unique_ptr elements: a shard owns a mutex-bearing registry and a
  /// running pool — neither movable, and their addresses must be stable.
  std::vector<std::unique_ptr<ShardState>> Shard;
};

} // namespace snslp

#endif // SNSLP_SERVICE_SHARDEDSERVICE_H
