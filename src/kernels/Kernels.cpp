//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kernel registry definitions. Every kernel is written as IR text (the
/// project's equivalent of the paper's extracted C kernels) together with
/// a plain C++ reference implementation for differential testing.
///
//===----------------------------------------------------------------------===//

#include "kernels/Kernel.h"

#include <cmath>

using namespace snslp;

using Role = BufferSpec::Role;

namespace {

//===----------------------------------------------------------------------===//
// Motivating examples (Section III; included "for completeness" in Fig. 5)
//===----------------------------------------------------------------------===//

Kernel makeMotiv1() {
  Kernel K;
  K.Name = "motiv1";
  K.Origin = "paper Fig. 2";
  K.PatternNote = "i64 add/sub chain; leaf reordering across the Super-Node";
  K.Unroll = 2;
  K.Expectation = KernelExpectation::SNWins;
  K.Buffers = {{"A", TypeKind::Int64, Role::Output},
               {"B", TypeKind::Int64, Role::Input},
               {"C", TypeKind::Int64, Role::Input},
               {"D", TypeKind::Int64, Role::Input}};
  K.IRText = R"(
func @motiv1(ptr %A, ptr %B, ptr %C, ptr %D, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %pB0 = gep i64, ptr %B, i64 %i
  %b0 = load i64, ptr %pB0
  %pC0 = gep i64, ptr %C, i64 %i
  %c0 = load i64, ptr %pC0
  %pD0 = gep i64, ptr %D, i64 %i
  %d0 = load i64, ptr %pD0
  %s0 = sub i64 %b0, %c0
  %t0 = add i64 %s0, %d0
  %pA0 = gep i64, ptr %A, i64 %i
  store i64 %t0, ptr %pA0
  %pD1 = gep i64, ptr %D, i64 %i1
  %d1 = load i64, ptr %pD1
  %pC1 = gep i64, ptr %C, i64 %i1
  %c1 = load i64, ptr %pC1
  %pB1 = gep i64, ptr %B, i64 %i1
  %b1 = load i64, ptr %pB1
  %s1 = sub i64 %d1, %c1
  %t1 = add i64 %s1, %b1
  %pA1 = gep i64, ptr %A, i64 %i1
  store i64 %t1, ptr %pA1
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    int64_t *A = D.i64(0);
    const int64_t *B = D.i64(1), *C = D.i64(2), *DD = D.i64(3);
    for (size_t I = 0; I < D.getN(); I += 2) {
      A[I] = (B[I] - C[I]) + DD[I];
      A[I + 1] = (DD[I + 1] - C[I + 1]) + B[I + 1];
    }
  };
  return K;
}

Kernel makeMotiv2() {
  Kernel K;
  K.Name = "motiv2";
  K.Origin = "paper Fig. 3";
  K.PatternNote = "i64 add/sub chain; trunk + leaf reordering";
  K.Unroll = 2;
  K.Expectation = KernelExpectation::SNWins;
  K.Buffers = {{"A", TypeKind::Int64, Role::Output},
               {"B", TypeKind::Int64, Role::Input},
               {"C", TypeKind::Int64, Role::Input},
               {"D", TypeKind::Int64, Role::Input}};
  K.IRText = R"(
func @motiv2(ptr %A, ptr %B, ptr %C, ptr %D, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %pB0 = gep i64, ptr %B, i64 %i
  %b0 = load i64, ptr %pB0
  %pC0 = gep i64, ptr %C, i64 %i
  %c0 = load i64, ptr %pC0
  %pD0 = gep i64, ptr %D, i64 %i
  %d0 = load i64, ptr %pD0
  %s0 = sub i64 %b0, %c0
  %t0 = add i64 %s0, %d0
  %pA0 = gep i64, ptr %A, i64 %i
  store i64 %t0, ptr %pA0
  %pB1 = gep i64, ptr %B, i64 %i1
  %b1 = load i64, ptr %pB1
  %pD1 = gep i64, ptr %D, i64 %i1
  %d1 = load i64, ptr %pD1
  %s1 = add i64 %b1, %d1
  %pC1 = gep i64, ptr %C, i64 %i1
  %c1 = load i64, ptr %pC1
  %t1 = sub i64 %s1, %c1
  %pA1 = gep i64, ptr %A, i64 %i1
  store i64 %t1, ptr %pA1
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    int64_t *A = D.i64(0);
    const int64_t *B = D.i64(1), *C = D.i64(2), *DD = D.i64(3);
    for (size_t I = 0; I < D.getN(); I += 2) {
      A[I] = B[I] - C[I] + DD[I];
      A[I + 1] = B[I + 1] + DD[I + 1] - C[I + 1];
    }
  };
  return K;
}

//===----------------------------------------------------------------------===//
// SPEC-pattern kernels where SN-SLP is expected to win
//===----------------------------------------------------------------------===//

Kernel makeMilcForce() {
  Kernel K;
  K.Name = "milc_force";
  K.Origin = "433.milc (add_force_to_mom-style momentum update)";
  K.PatternNote = "f64 a+b-c*s with per-lane permuted term order";
  K.Unroll = 2;
  K.Expectation = KernelExpectation::SNWins;
  K.RelTol = 1e-12;
  K.Buffers = {{"out", TypeKind::Double, Role::Output},
               {"a", TypeKind::Double, Role::Input},
               {"b", TypeKind::Double, Role::Input},
               {"c", TypeKind::Double, Role::Input}};
  K.IRText = R"(
func @milc_force(ptr %out, ptr %a, ptr %b, ptr %c, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %pa0 = gep f64, ptr %a, i64 %i
  %a0 = load f64, ptr %pa0
  %pb0 = gep f64, ptr %b, i64 %i
  %b0 = load f64, ptr %pb0
  %pc0 = gep f64, ptr %c, i64 %i
  %c0 = load f64, ptr %pc0
  %m0 = fmul f64 %c0, 1.5
  %s0 = fadd f64 %a0, %b0
  %t0 = fsub f64 %s0, %m0
  %po0 = gep f64, ptr %out, i64 %i
  store f64 %t0, ptr %po0
  %pb1 = gep f64, ptr %b, i64 %i1
  %b1 = load f64, ptr %pb1
  %pc1 = gep f64, ptr %c, i64 %i1
  %c1 = load f64, ptr %pc1
  %m1 = fmul f64 %c1, 1.5
  %u1 = fsub f64 %b1, %m1
  %pa1 = gep f64, ptr %a, i64 %i1
  %a1 = load f64, ptr %pa1
  %t1 = fadd f64 %u1, %a1
  %po1 = gep f64, ptr %out, i64 %i1
  store f64 %t1, ptr %po1
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    double *Out = D.f64(0);
    const double *A = D.f64(1), *B = D.f64(2), *C = D.f64(3);
    for (size_t I = 0; I < D.getN(); I += 2) {
      Out[I] = (A[I] + B[I]) - C[I] * 1.5;
      Out[I + 1] = (B[I + 1] - C[I + 1] * 1.5) + A[I + 1];
    }
  };
  return K;
}

Kernel makeNamdForce() {
  Kernel K;
  K.Name = "namd_force";
  K.Origin = "444.namd (nonbonded force accumulation)";
  K.PatternNote = "f64 in-place f += d*r - e with permuted lanes";
  K.Unroll = 2;
  K.Expectation = KernelExpectation::SNWins;
  K.RelTol = 1e-12;
  K.Buffers = {{"f", TypeKind::Double, Role::InOut},
               {"d", TypeKind::Double, Role::Input},
               {"r", TypeKind::Double, Role::Input},
               {"e", TypeKind::Double, Role::Input}};
  K.IRText = R"(
func @namd_force(ptr %f, ptr %d, ptr %r, ptr %e, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %pf0 = gep f64, ptr %f, i64 %i
  %f0 = load f64, ptr %pf0
  %pd0 = gep f64, ptr %d, i64 %i
  %d0 = load f64, ptr %pd0
  %pr0 = gep f64, ptr %r, i64 %i
  %r0 = load f64, ptr %pr0
  %pe0 = gep f64, ptr %e, i64 %i
  %e0 = load f64, ptr %pe0
  %m0 = fmul f64 %d0, %r0
  %s0 = fadd f64 %f0, %m0
  %t0 = fsub f64 %s0, %e0
  store f64 %t0, ptr %pf0
  %pf1 = gep f64, ptr %f, i64 %i1
  %f1 = load f64, ptr %pf1
  %pe1 = gep f64, ptr %e, i64 %i1
  %e1 = load f64, ptr %pe1
  %u1 = fsub f64 %f1, %e1
  %pd1 = gep f64, ptr %d, i64 %i1
  %d1 = load f64, ptr %pd1
  %pr1 = gep f64, ptr %r, i64 %i1
  %r1 = load f64, ptr %pr1
  %m1 = fmul f64 %d1, %r1
  %t1 = fadd f64 %u1, %m1
  store f64 %t1, ptr %pf1
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    double *F = D.f64(0);
    const double *Dd = D.f64(1), *R = D.f64(2), *E = D.f64(3);
    for (size_t I = 0; I < D.getN(); I += 2) {
      F[I] = (F[I] + Dd[I] * R[I]) - E[I];
      F[I + 1] = (F[I + 1] - E[I + 1]) + Dd[I + 1] * R[I + 1];
    }
  };
  return K;
}

Kernel makeDealIIStencil() {
  Kernel K;
  K.Name = "dealii_stencil";
  K.Origin = "447.dealII (assembled 1-D Laplacian application)";
  K.PatternNote = "f64 four-term stencil, neighbour loads, permuted lanes";
  K.Unroll = 2;
  K.Expectation = KernelExpectation::SNWins;
  K.RelTol = 1e-12;
  K.Buffers = {{"out", TypeKind::Double, Role::Output},
               {"u", TypeKind::Double, Role::Input},
               {"rhs", TypeKind::Double, Role::Input}};
  K.IRText = R"(
func @dealii_stencil(ptr %out, ptr %u, ptr %rhs, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 2, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %im1 = sub i64 %i, 1
  %ip2 = add i64 %i, 2
  %pu0 = gep f64, ptr %u, i64 %i
  %u0 = load f64, ptr %pu0
  %m0 = fmul f64 %u0, 0.5
  %pum = gep f64, ptr %u, i64 %im1
  %um = load f64, ptr %pum
  %mm = fmul f64 %um, 0.25
  %x0 = fsub f64 %m0, %mm
  %pr0 = gep f64, ptr %rhs, i64 %i
  %r0 = load f64, ptr %pr0
  %y0 = fadd f64 %x0, %r0
  %pup = gep f64, ptr %u, i64 %i1
  %up = load f64, ptr %pup
  %mp = fmul f64 %up, 0.25
  %t0 = fsub f64 %y0, %mp
  %po0 = gep f64, ptr %out, i64 %i
  store f64 %t0, ptr %po0
  %pr1 = gep f64, ptr %rhs, i64 %i1
  %r1 = load f64, ptr %pr1
  %pu2 = gep f64, ptr %u, i64 %ip2
  %u2 = load f64, ptr %pu2
  %m2 = fmul f64 %u2, 0.25
  %x1 = fsub f64 %r1, %m2
  %pu1 = gep f64, ptr %u, i64 %i1
  %u1 = load f64, ptr %pu1
  %c1 = fmul f64 %u1, 0.5
  %y1 = fadd f64 %x1, %c1
  %pui = gep f64, ptr %u, i64 %i
  %ui = load f64, ptr %pui
  %mi = fmul f64 %ui, 0.25
  %t1 = fsub f64 %y1, %mi
  %po1 = gep f64, ptr %out, i64 %i1
  store f64 %t1, ptr %po1
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    double *Out = D.f64(0);
    const double *U = D.f64(1), *Rhs = D.f64(2);
    for (size_t I = 2; I < D.getN(); I += 2) {
      Out[I] = ((U[I] * 0.5 - U[I - 1] * 0.25) + Rhs[I]) - U[I + 1] * 0.25;
      Out[I + 1] =
          ((Rhs[I + 1] - U[I + 2] * 0.25) + U[I + 1] * 0.5) - U[I] * 0.25;
    }
  };
  return K;
}

Kernel makeSphinxRescale() {
  Kernel K;
  K.Name = "sphinx_rescale";
  K.Origin = "482.sphinx3 (gaussian density rescaling)";
  K.PatternNote = "f32 multiplicative family (fmul/fdiv), VF=4";
  K.Unroll = 4;
  K.Expectation = KernelExpectation::SNWins;
  K.RelTol = 1e-3;
  K.Buffers = {{"out", TypeKind::Float, Role::Output},
               {"a", TypeKind::Float, Role::Input},
               {"b", TypeKind::Float, Role::Input}};
  K.IRText = R"(
func @sphinx_rescale(ptr %out, ptr %a, ptr %b, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %i2 = add i64 %i, 2
  %i3 = add i64 %i, 3
  %pa0 = gep f32, ptr %a, i64 %i
  %a0 = load f32, ptr %pa0
  %pb0 = gep f32, ptr %b, i64 %i
  %b0 = load f32, ptr %pb0
  %m0 = fmul f32 %a0, 1.25
  %t0 = fdiv f32 %m0, %b0
  %po0 = gep f32, ptr %out, i64 %i
  store f32 %t0, ptr %po0
  %pa1 = gep f32, ptr %a, i64 %i1
  %a1 = load f32, ptr %pa1
  %pb1 = gep f32, ptr %b, i64 %i1
  %b1 = load f32, ptr %pb1
  %d1 = fdiv f32 %a1, %b1
  %t1 = fmul f32 %d1, 1.25
  %po1 = gep f32, ptr %out, i64 %i1
  store f32 %t1, ptr %po1
  %pa2 = gep f32, ptr %a, i64 %i2
  %a2 = load f32, ptr %pa2
  %pb2 = gep f32, ptr %b, i64 %i2
  %b2 = load f32, ptr %pb2
  %m2 = fmul f32 %a2, 1.25
  %t2 = fdiv f32 %m2, %b2
  %po2 = gep f32, ptr %out, i64 %i2
  store f32 %t2, ptr %po2
  %pa3 = gep f32, ptr %a, i64 %i3
  %a3 = load f32, ptr %pa3
  %pb3 = gep f32, ptr %b, i64 %i3
  %b3 = load f32, ptr %pb3
  %d3 = fdiv f32 %a3, %b3
  %t3 = fmul f32 %d3, 1.25
  %po3 = gep f32, ptr %out, i64 %i3
  store f32 %t3, ptr %po3
  %i.next = add i64 %i, 4
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    float *Out = D.f32(0);
    const float *A = D.f32(1), *B = D.f32(2);
    for (size_t I = 0; I < D.getN(); I += 4) {
      Out[I] = (A[I] * 1.25f) / B[I];
      Out[I + 1] = (A[I + 1] / B[I + 1]) * 1.25f;
      Out[I + 2] = (A[I + 2] * 1.25f) / B[I + 2];
      Out[I + 3] = (A[I + 3] / B[I + 3]) * 1.25f;
    }
  };
  return K;
}

Kernel makeSphinxBias() {
  Kernel K;
  K.Name = "sphinx_bias";
  K.Origin = "482.sphinx3 (feature bias/normalization, integer path)";
  K.PatternNote = "i32 x+b-m with four differently permuted lanes, VF=4";
  K.Unroll = 4;
  K.Expectation = KernelExpectation::SNWins;
  K.Buffers = {{"out", TypeKind::Int32, Role::Output},
               {"x", TypeKind::Int32, Role::Input},
               {"b", TypeKind::Int32, Role::Input},
               {"m", TypeKind::Int32, Role::Input}};
  K.IRText = R"(
func @sphinx_bias(ptr %out, ptr %x, ptr %b, ptr %m, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %i2 = add i64 %i, 2
  %i3 = add i64 %i, 3
  %px0 = gep i32, ptr %x, i64 %i
  %x0 = load i32, ptr %px0
  %pb0 = gep i32, ptr %b, i64 %i
  %b0 = load i32, ptr %pb0
  %pm0 = gep i32, ptr %m, i64 %i
  %m0 = load i32, ptr %pm0
  %s0 = add i32 %x0, %b0
  %t0 = sub i32 %s0, %m0
  %po0 = gep i32, ptr %out, i64 %i
  store i32 %t0, ptr %po0
  %px1 = gep i32, ptr %x, i64 %i1
  %x1 = load i32, ptr %px1
  %pm1 = gep i32, ptr %m, i64 %i1
  %m1 = load i32, ptr %pm1
  %s1 = sub i32 %x1, %m1
  %pb1 = gep i32, ptr %b, i64 %i1
  %b1 = load i32, ptr %pb1
  %t1 = add i32 %s1, %b1
  %po1 = gep i32, ptr %out, i64 %i1
  store i32 %t1, ptr %po1
  %pb2 = gep i32, ptr %b, i64 %i2
  %b2 = load i32, ptr %pb2
  %pm2 = gep i32, ptr %m, i64 %i2
  %m2 = load i32, ptr %pm2
  %s2 = sub i32 %b2, %m2
  %px2 = gep i32, ptr %x, i64 %i2
  %x2 = load i32, ptr %px2
  %t2 = add i32 %s2, %x2
  %po2 = gep i32, ptr %out, i64 %i2
  store i32 %t2, ptr %po2
  %pb3 = gep i32, ptr %b, i64 %i3
  %b3 = load i32, ptr %pb3
  %px3 = gep i32, ptr %x, i64 %i3
  %x3 = load i32, ptr %px3
  %s3 = add i32 %b3, %x3
  %pm3 = gep i32, ptr %m, i64 %i3
  %m3 = load i32, ptr %pm3
  %t3 = sub i32 %s3, %m3
  %po3 = gep i32, ptr %out, i64 %i3
  store i32 %t3, ptr %po3
  %i.next = add i64 %i, 4
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    int32_t *Out = D.i32(0);
    const int32_t *X = D.i32(1), *B = D.i32(2), *Mm = D.i32(3);
    for (size_t I = 0; I < D.getN(); I += 4) {
      Out[I] = (X[I] + B[I]) - Mm[I];
      Out[I + 1] = (X[I + 1] - Mm[I + 1]) + B[I + 1];
      Out[I + 2] = (B[I + 2] - Mm[I + 2]) + X[I + 2];
      Out[I + 3] = (B[I + 3] + X[I + 3]) - Mm[I + 3];
    }
  };
  return K;
}

/// Pure commutative chains with permuted leaves: LSLP's Multi-Node handles
/// these (no inverse element involved), so LSLP and SN-SLP tie while plain
/// SLP fails — the case class LSLP [9] was built for.
Kernel makeNamdAccum() {
  Kernel K;
  K.Name = "namd_accum";
  K.Origin = "444.namd (energy accumulation, pure additions)";
  K.PatternNote = "f64 a+b+c with permuted leaves; Multi-Node (LSLP) case";
  K.Unroll = 2;
  K.Expectation = KernelExpectation::MultiNodeWins;
  K.RelTol = 1e-12;
  K.Buffers = {{"out", TypeKind::Double, Role::Output},
               {"a", TypeKind::Double, Role::Input},
               {"b", TypeKind::Double, Role::Input},
               {"c", TypeKind::Double, Role::Input}};
  K.IRText = R"(
func @namd_accum(ptr %out, ptr %a, ptr %b, ptr %c, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %pa0 = gep f64, ptr %a, i64 %i
  %a0 = load f64, ptr %pa0
  %pb0 = gep f64, ptr %b, i64 %i
  %b0 = load f64, ptr %pb0
  %pc0 = gep f64, ptr %c, i64 %i
  %c0 = load f64, ptr %pc0
  %s0 = fadd f64 %a0, %b0
  %t0 = fadd f64 %s0, %c0
  %po0 = gep f64, ptr %out, i64 %i
  store f64 %t0, ptr %po0
  %pc1 = gep f64, ptr %c, i64 %i1
  %c1 = load f64, ptr %pc1
  %pa1 = gep f64, ptr %a, i64 %i1
  %a1 = load f64, ptr %pa1
  %s1 = fadd f64 %c1, %a1
  %pb1 = gep f64, ptr %b, i64 %i1
  %b1 = load f64, ptr %pb1
  %t1 = fadd f64 %s1, %b1
  %po1 = gep f64, ptr %out, i64 %i1
  store f64 %t1, ptr %po1
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    double *Out = D.f64(0);
    const double *A = D.f64(1), *B = D.f64(2), *C = D.f64(3);
    for (size_t I = 0; I < D.getN(); I += 2) {
      Out[I] = (A[I] + B[I]) + C[I];
      Out[I + 1] = (C[I + 1] + A[I + 1]) + B[I + 1];
    }
  };
  return K;
}

/// A vector-length computation with sqrt: uniform lanes, so plain SLP
/// already vectorizes the whole chain including the unary sqrt row.
Kernel makePovrayNorm() {
  Kernel K;
  K.Name = "povray_norm";
  K.Origin = "453.povray (vector length: sqrt(x^2 + y^2))";
  K.PatternNote = "f64 sqrt over a uniform mul/add chain";
  K.Unroll = 2;
  K.Expectation = KernelExpectation::AllEqual;
  K.RelTol = 1e-12;
  K.Buffers = {{"out", TypeKind::Double, Role::Output},
               {"x", TypeKind::Double, Role::Input},
               {"y", TypeKind::Double, Role::Input}};
  K.IRText = R"(
func @povray_norm(ptr %out, ptr %x, ptr %y, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %px0 = gep f64, ptr %x, i64 %i
  %x0 = load f64, ptr %px0
  %py0 = gep f64, ptr %y, i64 %i
  %y0 = load f64, ptr %py0
  %xx0 = fmul f64 %x0, %x0
  %yy0 = fmul f64 %y0, %y0
  %s0 = fadd f64 %xx0, %yy0
  %r0 = sqrt f64 %s0
  %po0 = gep f64, ptr %out, i64 %i
  store f64 %r0, ptr %po0
  %px1 = gep f64, ptr %x, i64 %i1
  %x1 = load f64, ptr %px1
  %py1 = gep f64, ptr %y, i64 %i1
  %y1 = load f64, ptr %py1
  %xx1 = fmul f64 %x1, %x1
  %yy1 = fmul f64 %y1, %y1
  %s1 = fadd f64 %xx1, %yy1
  %r1 = sqrt f64 %s1
  %po1 = gep f64, ptr %out, i64 %i1
  store f64 %r1, ptr %po1
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    double *Out = D.f64(0);
    const double *X = D.f64(1), *Y = D.f64(2);
    for (size_t I = 0; I < D.getN(); ++I)
      Out[I] = std::sqrt(X[I] * X[I] + Y[I] * Y[I]);
  };
  return K;
}

/// Integer address/index arithmetic in the style of soplex's sparse
/// updates: the add/sub chain is permuted across the inverse operator in
/// the second lane, so only the Super-Node recovers isomorphism.
Kernel makeSoplexIndex() {
  Kernel K;
  K.Name = "soplex_index";
  K.Origin = "450.soplex (sparse index update arithmetic)";
  K.PatternNote = "i64 base + 8*idx - off with permuted lanes";
  K.Unroll = 2;
  K.Expectation = KernelExpectation::SNWins;
  K.Buffers = {{"out", TypeKind::Int64, Role::Output},
               {"base", TypeKind::Int64, Role::Input},
               {"idx", TypeKind::Int64, Role::Input},
               {"off", TypeKind::Int64, Role::Input}};
  K.IRText = R"(
func @soplex_index(ptr %out, ptr %base, ptr %idx, ptr %off, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %pb0 = gep i64, ptr %base, i64 %i
  %b0 = load i64, ptr %pb0
  %pi0 = gep i64, ptr %idx, i64 %i
  %x0 = load i64, ptr %pi0
  %m0 = mul i64 %x0, 8
  %po0 = gep i64, ptr %off, i64 %i
  %o0 = load i64, ptr %po0
  %s0 = add i64 %b0, %m0
  %t0 = sub i64 %s0, %o0
  %pq0 = gep i64, ptr %out, i64 %i
  store i64 %t0, ptr %pq0
  %pb1 = gep i64, ptr %base, i64 %i1
  %b1 = load i64, ptr %pb1
  %po1 = gep i64, ptr %off, i64 %i1
  %o1 = load i64, ptr %po1
  %s1 = sub i64 %b1, %o1
  %pi1 = gep i64, ptr %idx, i64 %i1
  %x1 = load i64, ptr %pi1
  %m1 = mul i64 %x1, 8
  %t1 = add i64 %s1, %m1
  %pq1 = gep i64, ptr %out, i64 %i1
  store i64 %t1, ptr %pq1
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    int64_t *Out = D.i64(0);
    const int64_t *B = D.i64(1), *X = D.i64(2), *O = D.i64(3);
    for (size_t I = 0; I < D.getN(); ++I)
      Out[I] = B[I] + 8 * X[I] - O[I];
  };
  return K;
}

/// A real 3-D cross product: three adjacent stores per point; the run of
/// three slices into one VF=2 group. The rotated operand pattern leaves
/// two gathers that exactly cancel the vector savings (cost 0), so no
/// configuration commits — cross products are classically SLP-hostile.
Kernel makePovrayCross() {
  Kernel K;
  K.Name = "povray_cross";
  K.Origin = "453.povray (vector cross product)";
  K.PatternNote = "f64 3-wide cross product; rotated operands defeat SLP";
  K.Unroll = 1; // One point (3 elements) per iteration.
  K.Expectation = KernelExpectation::NoneWin;
  K.RelTol = 1e-12;
  K.N = 256; // Points; element buffers are 3x.
  K.Buffers = {{"out", TypeKind::Double, Role::Output, 3.0},
               {"a", TypeKind::Double, Role::Input, 3.0},
               {"b", TypeKind::Double, Role::Input, 3.0}};
  K.IRText = R"(
func @povray_cross(ptr %out, ptr %a, ptr %b, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %j = mul i64 %i, 3
  %j1 = add i64 %j, 1
  %j2 = add i64 %j, 2
  %pa0 = gep f64, ptr %a, i64 %j
  %a0 = load f64, ptr %pa0
  %pa1 = gep f64, ptr %a, i64 %j1
  %a1 = load f64, ptr %pa1
  %pa2 = gep f64, ptr %a, i64 %j2
  %a2 = load f64, ptr %pa2
  %pb0 = gep f64, ptr %b, i64 %j
  %b0 = load f64, ptr %pb0
  %pb1 = gep f64, ptr %b, i64 %j1
  %b1 = load f64, ptr %pb1
  %pb2 = gep f64, ptr %b, i64 %j2
  %b2 = load f64, ptr %pb2
  %m00 = fmul f64 %a1, %b2
  %m01 = fmul f64 %a2, %b1
  %c0 = fsub f64 %m00, %m01
  %pc0 = gep f64, ptr %out, i64 %j
  store f64 %c0, ptr %pc0
  %m10 = fmul f64 %a2, %b0
  %m11 = fmul f64 %a0, %b2
  %c1 = fsub f64 %m10, %m11
  %pc1 = gep f64, ptr %out, i64 %j1
  store f64 %c1, ptr %pc1
  %m20 = fmul f64 %a0, %b1
  %m21 = fmul f64 %a1, %b0
  %c2 = fsub f64 %m20, %m21
  %pc2 = gep f64, ptr %out, i64 %j2
  store f64 %c2, ptr %pc2
  %i.next = add i64 %i, 1
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    double *Out = D.f64(0);
    const double *A = D.f64(1), *B = D.f64(2);
    for (size_t I = 0; I < D.getN(); ++I) {
      const double *Ai = A + 3 * I;
      const double *Bi = B + 3 * I;
      Out[3 * I] = Ai[1] * Bi[2] - Ai[2] * Bi[1];
      Out[3 * I + 1] = Ai[2] * Bi[0] - Ai[0] * Bi[2];
      Out[3 * I + 2] = Ai[0] * Bi[1] - Ai[1] * Bi[0];
    }
  };
  return K;
}

/// A horizontal-reduction kernel (the paper runs with -slp-vectorize-hor):
/// a 4-term dot product per output element. Reduction vectorization is
/// mode-independent, so all configurations tie.
Kernel makeSphinxDot() {
  Kernel K;
  K.Name = "sphinx_dot";
  K.Origin = "482.sphinx3 (gaussian distance, 4-term dot product)";
  K.PatternNote = "f64 horizontal reduction of 4 products per element";
  K.Unroll = 1;
  K.Expectation = KernelExpectation::AllEqual;
  K.RelTol = 1e-12;
  K.Buffers = {{"out", TypeKind::Double, Role::Output},
               {"x", TypeKind::Double, Role::Input, 4.0},
               {"m", TypeKind::Double, Role::Input, 4.0}};
  K.N = 256;
  K.IRText = R"(
func @sphinx_dot(ptr %out, ptr %x, ptr %m, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i4 = mul i64 %i, 4
  %k1 = add i64 %i4, 1
  %k2 = add i64 %i4, 2
  %k3 = add i64 %i4, 3
  %px0 = gep f64, ptr %x, i64 %i4
  %x0 = load f64, ptr %px0
  %pm0 = gep f64, ptr %m, i64 %i4
  %m0 = load f64, ptr %pm0
  %p0 = fmul f64 %x0, %m0
  %px1 = gep f64, ptr %x, i64 %k1
  %x1 = load f64, ptr %px1
  %pm1 = gep f64, ptr %m, i64 %k1
  %m1 = load f64, ptr %pm1
  %p1 = fmul f64 %x1, %m1
  %px2 = gep f64, ptr %x, i64 %k2
  %x2 = load f64, ptr %px2
  %pm2 = gep f64, ptr %m, i64 %k2
  %m2 = load f64, ptr %pm2
  %p2 = fmul f64 %x2, %m2
  %px3 = gep f64, ptr %x, i64 %k3
  %x3 = load f64, ptr %px3
  %pm3 = gep f64, ptr %m, i64 %k3
  %m3 = load f64, ptr %pm3
  %p3 = fmul f64 %x3, %m3
  %s01 = fadd f64 %p0, %p1
  %s012 = fadd f64 %s01, %p2
  %dot = fadd f64 %s012, %p3
  %po = gep f64, ptr %out, i64 %i
  store f64 %dot, ptr %po
  %i.next = add i64 %i, 1
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    double *Out = D.f64(0);
    const double *X = D.f64(1), *Mm = D.f64(2);
    for (size_t I = 0; I < D.getN(); ++I) {
      // The vectorized form reduces pairwise: (p0+p2) + (p1+p3) after the
      // rotate-by-2 step, then a rotate-by-1 combine. Reassociation is
      // covered by the kernel tolerance; compute the natural order here.
      double P0 = X[4 * I] * Mm[4 * I];
      double P1 = X[4 * I + 1] * Mm[4 * I + 1];
      double P2 = X[4 * I + 2] * Mm[4 * I + 2];
      double P3 = X[4 * I + 3] * Mm[4 * I + 3];
      Out[I] = ((P0 + P1) + P2) + P3;
    }
  };
  return K;
}

//===----------------------------------------------------------------------===//
// Control kernels: vanilla SLP already succeeds (AllEqual) or nothing is
// profitable (NoneWin), mirroring the kernels in Fig. 5 where LSLP and
// SN-SLP show no statistical difference.
//===----------------------------------------------------------------------===//

Kernel makePovrayDot() {
  Kernel K;
  K.Name = "povray_dot";
  K.Origin = "453.povray (fused multiply-subtract in shading)";
  K.PatternNote = "f64 a*b-c, isomorphic lanes; plain SLP suffices";
  K.Unroll = 2;
  K.Expectation = KernelExpectation::AllEqual;
  K.RelTol = 1e-12;
  K.Buffers = {{"out", TypeKind::Double, Role::Output},
               {"a", TypeKind::Double, Role::Input},
               {"b", TypeKind::Double, Role::Input},
               {"c", TypeKind::Double, Role::Input}};
  K.IRText = R"(
func @povray_dot(ptr %out, ptr %a, ptr %b, ptr %c, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %pa0 = gep f64, ptr %a, i64 %i
  %a0 = load f64, ptr %pa0
  %pb0 = gep f64, ptr %b, i64 %i
  %b0 = load f64, ptr %pb0
  %m0 = fmul f64 %a0, %b0
  %pc0 = gep f64, ptr %c, i64 %i
  %c0 = load f64, ptr %pc0
  %t0 = fsub f64 %m0, %c0
  %po0 = gep f64, ptr %out, i64 %i
  store f64 %t0, ptr %po0
  %pa1 = gep f64, ptr %a, i64 %i1
  %a1 = load f64, ptr %pa1
  %pb1 = gep f64, ptr %b, i64 %i1
  %b1 = load f64, ptr %pb1
  %m1 = fmul f64 %a1, %b1
  %pc1 = gep f64, ptr %c, i64 %i1
  %c1 = load f64, ptr %pc1
  %t1 = fsub f64 %m1, %c1
  %po1 = gep f64, ptr %out, i64 %i1
  store f64 %t1, ptr %po1
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    double *Out = D.f64(0);
    const double *A = D.f64(1), *B = D.f64(2), *C = D.f64(3);
    for (size_t I = 0; I < D.getN(); ++I)
      Out[I] = A[I] * B[I] - C[I];
  };
  return K;
}

Kernel makeSoplexAxpy() {
  Kernel K;
  K.Name = "soplex_axpy";
  K.Origin = "450.soplex (dense vector update y -= a*x)";
  K.PatternNote = "f64 in-place axpy, isomorphic lanes; plain SLP suffices";
  K.Unroll = 2;
  K.Expectation = KernelExpectation::AllEqual;
  K.RelTol = 1e-12;
  K.Buffers = {{"y", TypeKind::Double, Role::InOut},
               {"x", TypeKind::Double, Role::Input}};
  K.IRText = R"(
func @soplex_axpy(ptr %y, ptr %x, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %py0 = gep f64, ptr %y, i64 %i
  %y0 = load f64, ptr %py0
  %px0 = gep f64, ptr %x, i64 %i
  %x0 = load f64, ptr %px0
  %m0 = fmul f64 %x0, 1.5
  %t0 = fsub f64 %y0, %m0
  store f64 %t0, ptr %py0
  %py1 = gep f64, ptr %y, i64 %i1
  %y1 = load f64, ptr %py1
  %px1 = gep f64, ptr %x, i64 %i1
  %x1 = load f64, ptr %px1
  %m1 = fmul f64 %x1, 1.5
  %t1 = fsub f64 %y1, %m1
  store f64 %t1, ptr %py1
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    double *Y = D.f64(0);
    const double *X = D.f64(1);
    for (size_t I = 0; I < D.getN(); ++I)
      Y[I] = Y[I] - X[I] * 1.5;
  };
  return K;
}

Kernel makeMilcCmul() {
  Kernel K;
  K.Name = "milc_cmul";
  K.Origin = "433.milc (complex multiply, su3 core)";
  K.PatternNote = "f64 complex multiply; cross-lane shuffles defeat all "
                  "configurations at this cost model";
  K.Unroll = 2;
  K.Expectation = KernelExpectation::NoneWin;
  K.RelTol = 1e-12;
  K.Buffers = {{"out", TypeKind::Double, Role::Output},
               {"a", TypeKind::Double, Role::Input},
               {"b", TypeKind::Double, Role::Input}};
  K.IRText = R"(
func @milc_cmul(ptr %out, ptr %a, ptr %b, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i1 = add i64 %i, 1
  %par = gep f64, ptr %a, i64 %i
  %ar = load f64, ptr %par
  %pai = gep f64, ptr %a, i64 %i1
  %ai = load f64, ptr %pai
  %pbr = gep f64, ptr %b, i64 %i
  %br0 = load f64, ptr %pbr
  %pbi = gep f64, ptr %b, i64 %i1
  %bi = load f64, ptr %pbi
  %rr = fmul f64 %ar, %br0
  %ii = fmul f64 %ai, %bi
  %re = fsub f64 %rr, %ii
  %po0 = gep f64, ptr %out, i64 %i
  store f64 %re, ptr %po0
  %ri = fmul f64 %ar, %bi
  %ir = fmul f64 %ai, %br0
  %im = fadd f64 %ri, %ir
  %po1 = gep f64, ptr %out, i64 %i1
  store f64 %im, ptr %po1
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    double *Out = D.f64(0);
    const double *A = D.f64(1), *B = D.f64(2);
    for (size_t I = 0; I < D.getN(); I += 2) {
      Out[I] = A[I] * B[I] - A[I + 1] * B[I + 1];
      Out[I + 1] = A[I] * B[I + 1] + A[I + 1] * B[I];
    }
  };
  return K;
}

/// Scalar filler used by the whole-benchmark programs: strided stores that
/// never form adjacent seeds, so no configuration vectorizes it.
Kernel makeScalarFiller() {
  Kernel K;
  K.Name = "scalar_filler";
  K.Origin = "synthetic (cold/scalar code of a full benchmark)";
  K.PatternNote = "stride-2 stores; no adjacent seeds exist";
  K.Unroll = 1;
  K.Expectation = KernelExpectation::NoneWin;
  K.RelTol = 1e-12;
  K.InTableI = false;
  K.Buffers = {{"out", TypeKind::Double, Role::Output},
               {"a", TypeKind::Double, Role::Input},
               {"b", TypeKind::Double, Role::Input}};
  K.IRText = R"(
func @scalar_filler(ptr %out, ptr %a, ptr %b, i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %pa = gep f64, ptr %a, i64 %i
  %va = load f64, ptr %pa
  %pb = gep f64, ptr %b, i64 %i
  %vb = load f64, ptr %pb
  %m = fmul f64 %va, %vb
  %s = fadd f64 %m, 0.125
  %po = gep f64, ptr %out, i64 %i
  store f64 %s, ptr %po
  %i.next = add i64 %i, 2
  %cond = icmp ult i64 %i.next, %n
  br i1 %cond, label %loop, label %exit
exit:
  ret void
}
)";
  K.Reference = [](KernelData &D) {
    double *Out = D.f64(0);
    const double *A = D.f64(1), *B = D.f64(2);
    for (size_t I = 0; I < D.getN(); I += 2)
      Out[I] = A[I] * B[I] + 0.125;
  };
  return K;
}

} // namespace

const std::vector<Kernel> &snslp::kernelRegistry() {
  static const std::vector<Kernel> Registry = [] {
    std::vector<Kernel> Ks;
    Ks.push_back(makeMotiv1());
    Ks.push_back(makeMotiv2());
    Ks.push_back(makeMilcForce());
    Ks.push_back(makeNamdForce());
    Ks.push_back(makeDealIIStencil());
    Ks.push_back(makeNamdAccum());
    Ks.push_back(makeSphinxRescale());
    Ks.push_back(makeSoplexIndex());
    Ks.push_back(makeSphinxBias());
    Ks.push_back(makeSphinxDot());
    Ks.push_back(makePovrayDot());
    Ks.push_back(makePovrayCross());
    Ks.push_back(makePovrayNorm());
    Ks.push_back(makeSoplexAxpy());
    Ks.push_back(makeMilcCmul());
    Ks.push_back(makeScalarFiller());
    return Ks;
  }();
  return Registry;
}

const Kernel *snslp::findKernel(const std::string &Name) {
  for (const Kernel &K : kernelRegistry())
    if (K.Name == Name)
      return &K;
  return nullptr;
}
