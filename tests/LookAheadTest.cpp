//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the LSLP look-ahead pairwise scoring that guides operand
/// and leaf reordering.
///
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "slp/LookAhead.h"

#include <gtest/gtest.h>

using namespace snslp;

namespace {

class LookAheadTest : public ::testing::Test {
protected:
  Context Ctx;
  Module M{Ctx, "la"};

  Function *parse(const std::string &Source) {
    std::string Err;
    EXPECT_TRUE(parseIR(Source, M, &Err)) << Err;
    return M.functions().back().get();
  }

  Instruction *byName(Function *F, const std::string &Name) {
    for (const auto &BB : F->blocks())
      for (const auto &Inst : *BB)
        if (Inst->getName() == Name)
          return Inst.get();
    return nullptr;
  }
};

TEST_F(LookAheadTest, ConsecutiveLoadsBeatEverything) {
  Function *F = parse("func @f(ptr %a, ptr %b) {\n"
                      "entry:\n"
                      "  %p0 = gep f64, ptr %a, i64 0\n"
                      "  %l0 = load f64, ptr %p0\n"
                      "  %p1 = gep f64, ptr %a, i64 1\n"
                      "  %l1 = load f64, ptr %p1\n"
                      "  %q = gep f64, ptr %b, i64 5\n"
                      "  %lb = load f64, ptr %q\n"
                      "  %s = fadd f64 %l0, %l1\n"
                      "  %t = fadd f64 %s, %lb\n"
                      "  store f64 %t, ptr %q\n"
                      "  ret void\n"
                      "}\n");
  LookAhead LA(2);
  Instruction *L0 = byName(F, "l0");
  Instruction *L1 = byName(F, "l1");
  Instruction *LB = byName(F, "lb");
  // Adjacent in order scores the maximum...
  EXPECT_EQ(LA.score(L0, L1), 4);
  // ...reversed or unrelated loads score nothing.
  EXPECT_EQ(LA.score(L1, L0), 0);
  EXPECT_EQ(LA.score(L0, LB), 0);
}

TEST_F(LookAheadTest, SplatAndConstantScores) {
  Function *F = parse("func @f(f64 %x, ptr %p) {\n"
                      "entry:\n"
                      "  %s = fadd f64 %x, 1.0\n"
                      "  store f64 %s, ptr %p\n"
                      "  ret void\n"
                      "}\n");
  LookAhead LA(0);
  Value *X = F->getArgByName("x");
  Constant *C1 = ConstantFP::get(Ctx.getDoubleTy(), 1.0);
  Constant *C2 = ConstantFP::get(Ctx.getDoubleTy(), 2.0);
  EXPECT_EQ(LA.score(X, X), 3);   // Splat.
  EXPECT_EQ(LA.score(C1, C2), 2); // Two constants.
  EXPECT_EQ(LA.score(C1, C1), 3); // Identical constants count as splat.
  EXPECT_EQ(LA.score(X, C1), 0);  // Nothing in common.
}

TEST_F(LookAheadTest, SameOpcodeAndFamilyScores) {
  Function *F = parse("func @f(f64 %a, f64 %b, ptr %p) {\n"
                      "entry:\n"
                      "  %s1 = fadd f64 %a, %b\n"
                      "  %s2 = fadd f64 %b, %a\n"
                      "  %s3 = fsub f64 %a, %b\n"
                      "  %s4 = fmul f64 %a, %b\n"
                      "  %u1 = fadd f64 %s1, %s2\n"
                      "  %u2 = fadd f64 %s3, %s4\n"
                      "  %u3 = fadd f64 %u1, %u2\n"
                      "  store f64 %u3, ptr %p\n"
                      "  ret void\n"
                      "}\n");
  LookAhead LA(0); // Immediate scores only.
  EXPECT_EQ(LA.score(byName(F, "s1"), byName(F, "s2")), 2); // Same opcode.
  EXPECT_EQ(LA.score(byName(F, "s1"), byName(F, "s3")), 1); // Same family.
  EXPECT_EQ(LA.score(byName(F, "s1"), byName(F, "s4")), 0); // Unrelated.
}

TEST_F(LookAheadTest, DepthRecursionSeesThroughOperands) {
  // Two fadds whose operands are consecutive loads pair better than two
  // fadds over unrelated loads — visible only at depth >= 1.
  Function *F = parse("func @f(ptr %a, ptr %b) {\n"
                      "entry:\n"
                      "  %p0 = gep f64, ptr %a, i64 0\n"
                      "  %l0 = load f64, ptr %p0\n"
                      "  %p1 = gep f64, ptr %a, i64 1\n"
                      "  %l1 = load f64, ptr %p1\n"
                      "  %q0 = gep f64, ptr %b, i64 0\n"
                      "  %k0 = load f64, ptr %q0\n"
                      "  %q9 = gep f64, ptr %b, i64 9\n"
                      "  %k9 = load f64, ptr %q9\n"
                      "  %s1 = fadd f64 %l0, %k0\n"
                      "  %s2 = fadd f64 %l1, %k9\n"
                      "  %s3 = fadd f64 %k9, %l1\n"
                      "  %t1 = fadd f64 %s1, %s2\n"
                      "  %t2 = fadd f64 %t1, %s3\n"
                      "  store f64 %t2, ptr %a\n"
                      "  ret void\n"
                      "}\n");
  LookAhead Shallow(0), Deep(2);
  Instruction *S1 = byName(F, "s1");
  Instruction *S2 = byName(F, "s2");
  Instruction *S3 = byName(F, "s3");
  // At depth 0 both pairs look identical (same opcode).
  EXPECT_EQ(Shallow.score(S1, S2), Shallow.score(S1, S3));
  // At depth 2 the (l0,l1) adjacency is discovered either way (the
  // look-ahead tries both operand pairings), and both beat depth 0.
  EXPECT_GT(Deep.score(S1, S2), Shallow.score(S1, S2));
  EXPECT_EQ(Deep.score(S1, S2), Deep.score(S1, S3));
}

TEST_F(LookAheadTest, GroupScoreSumsConsecutivePairs) {
  Function *F = parse("func @f(ptr %a) {\n"
                      "entry:\n"
                      "  %p0 = gep f64, ptr %a, i64 0\n"
                      "  %l0 = load f64, ptr %p0\n"
                      "  %p1 = gep f64, ptr %a, i64 1\n"
                      "  %l1 = load f64, ptr %p1\n"
                      "  %p2 = gep f64, ptr %a, i64 2\n"
                      "  %l2 = load f64, ptr %p2\n"
                      "  %s = fadd f64 %l0, %l1\n"
                      "  %t = fadd f64 %s, %l2\n"
                      "  store f64 %t, ptr %p0\n"
                      "  ret void\n"
                      "}\n");
  LookAhead LA(1);
  std::vector<const Value *> Group = {byName(F, "l0"), byName(F, "l1"),
                                      byName(F, "l2")};
  EXPECT_EQ(LA.groupScore(Group), 8); // 4 + 4.
  std::vector<const Value *> Single = {byName(F, "l0")};
  EXPECT_EQ(LA.groupScore(Single), 0);
}

} // namespace
