#!/bin/sh
# Round-trip test for the snslpd daemon + snslp-client pair (ctest:
# service_smoke). Starts the daemon on a private socket, then drives it
# through the protocol's happy path and its input-hardening paths:
#
#   1. compile+run of a vectorizable kernel  -> status ok, cache: miss
#   2. the identical request again           -> cache: hit, same mem-hash
#   3. a frame payload that is not a request -> positioned parse-error
#   4. a well-formed request whose module
#      text does not parse                   -> positioned parse-error
#
# then through the overload/retry exit-code contract (against daemons
# with the service.queue.overload fault site armed):
#
#   5. retryable rejection + --retries=2     -> retry succeeds, exit 0
#   6. retryable rejection + --retries=0     -> exit 75 (EX_TEMPFAIL)
#   7. permanent error without --expect-error-> exit 1
#   8. no daemon at all                      -> exit 2 (transport)
#
# then through the reactor-era contracts:
#
#   9. SIGTERM drain with an idle-but-open client connection: the daemon
#      must exit 0 promptly (the old accept-loop daemon wedged in a
#      blocking read here — the single-acceptor shutdown race)
#  10. TCP listener: a request over --connect=127.0.0.1:PORT (ephemeral,
#      scraped from the announcement line) hits the same cache as the
#      Unix listener
#
# The daemon serves exactly the expected number of frames
# (--max-requests) and must exit 0 on its own; the malformed inputs must
# be answered, never crash it or drop the connection.
#
# Usage: service_roundtrip.sh <snslpd> <snslp-client> <workdir>
set -eu

SNSLPD=$1
CLIENT=$2
WORKDIR=$3

mkdir -p "$WORKDIR"
SOCK="$WORKDIR/snslpd.sock"
DPID=""

cleanup() {
  [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

fail() {
  echo "service_roundtrip: FAIL: $1" >&2
  exit 1
}

# A kernel the SN-SLP vectorizer handles: 4-wide add/sub alternation over
# consecutive addresses (the paper's operator + inverse-element shape).
cat > "$WORKDIR/kernel.ir" <<'EOF'
func @addsub4(ptr %a, ptr %b, ptr %c) {
entry:
  %pa0 = gep i64, ptr %a, i64 0
  %pa1 = gep i64, ptr %a, i64 1
  %pa2 = gep i64, ptr %a, i64 2
  %pa3 = gep i64, ptr %a, i64 3
  %pb0 = gep i64, ptr %b, i64 0
  %pb1 = gep i64, ptr %b, i64 1
  %pb2 = gep i64, ptr %b, i64 2
  %pb3 = gep i64, ptr %b, i64 3
  %a0 = load i64, ptr %pa0
  %a1 = load i64, ptr %pa1
  %a2 = load i64, ptr %pa2
  %a3 = load i64, ptr %pa3
  %b0 = load i64, ptr %pb0
  %b1 = load i64, ptr %pb1
  %b2 = load i64, ptr %pb2
  %b3 = load i64, ptr %pb3
  %r0 = add i64 %a0, %b0
  %r1 = sub i64 %a1, %b1
  %r2 = add i64 %a2, %b2
  %r3 = sub i64 %a3, %b3
  %pc0 = gep i64, ptr %c, i64 0
  %pc1 = gep i64, ptr %c, i64 1
  %pc2 = gep i64, ptr %c, i64 2
  %pc3 = gep i64, ptr %c, i64 3
  store i64 %r0, ptr %pc0
  store i64 %r1, ptr %pc1
  store i64 %r2, ptr %pc2
  store i64 %r3, ptr %pc3
  ret void
}
EOF

"$SNSLPD" --socket="$SOCK" --max-requests=4 > "$WORKDIR/snslpd.out" &
DPID=$!

# Wait for the socket to appear (the daemon prints after listen()).
TRIES=0
while [ ! -S "$SOCK" ]; do
  TRIES=$((TRIES + 1))
  [ "$TRIES" -gt 100 ] && fail "daemon socket never appeared"
  kill -0 "$DPID" 2>/dev/null || fail "daemon exited before listening"
  sleep 0.1
done

# 1. Cold compile + run.
OUT1=$("$CLIENT" --socket="$SOCK" --file="$WORKDIR/kernel.ir" \
       --mode=SNSLP --run --elems=8 --data-seed=7) \
  || fail "cold request was rejected"
echo "$OUT1" | grep -q '^status: ok$'    || fail "cold request: not ok"
echo "$OUT1" | grep -q '^cache: miss$'   || fail "cold request: expected cache miss"
echo "$OUT1" | grep -q '^run-ok: 1$'     || fail "cold request: run failed"
echo "$OUT1" | grep -q '^mem-hash: '     || fail "cold request: no mem-hash"
# The kernel must actually have been vectorized, not just compiled.
GV=$(echo "$OUT1" | sed -n 's/^graphs-vectorized: //p')
[ "$GV" -ge 1 ] || fail "cold request: expected >=1 vectorized graph, got $GV"

# 2. Identical request: a cache hit with a bit-identical execution.
OUT2=$("$CLIENT" --socket="$SOCK" --file="$WORKDIR/kernel.ir" \
       --mode=SNSLP --run --elems=8 --data-seed=7) \
  || fail "warm request was rejected"
echo "$OUT2" | grep -q '^cache: hit$' || fail "warm request: expected cache hit"
H1=$(echo "$OUT1" | sed -n 's/^mem-hash: //p')
H2=$(echo "$OUT2" | sed -n 's/^mem-hash: //p')
[ "$H1" = "$H2" ] || fail "mem-hash differs cold vs warm ($H1 vs $H2)"
B1=$(echo "$OUT1" | sed -n '/^$/,$p')
B2=$(echo "$OUT2" | sed -n '/^$/,$p')
[ "$B1" = "$B2" ] || fail "vectorized module text differs cold vs warm"

# 3. A frame whose payload is not a request: the daemon must answer with
# a positioned parse error on the same connection, not crash or hang up.
printf 'definitely not a snslp request\n' > "$WORKDIR/bad.payload"
OUT3=$("$CLIENT" --socket="$SOCK" --raw-payload="$WORKDIR/bad.payload" \
       --expect-error=parse-error) \
  || fail "malformed payload was not answered with parse-error"
echo "$OUT3" | grep -q 'line 1:' || fail "parse error is not positioned"

# 4. A well-formed request whose module text is garbage.
printf 'this is not ir !!\n' > "$WORKDIR/bad.ir"
"$CLIENT" --socket="$SOCK" --file="$WORKDIR/bad.ir" \
    --expect-error=parse-error > /dev/null \
  || fail "bad module was not answered with parse-error"

# The daemon has now served its 4 frames and must exit 0 by itself.
if ! wait "$DPID"; then
  DPID=""
  fail "daemon did not exit cleanly"
fi
DPID=""
grep -q "listening on" "$WORKDIR/snslpd.out" || fail "daemon never announced itself"

# --- The overload/retry exit-code contract -----------------------------

wait_socket() {
  TRIES=0
  while [ ! -S "$SOCK" ]; do
    TRIES=$((TRIES + 1))
    [ "$TRIES" -gt 100 ] && fail "daemon socket never appeared"
    kill -0 "$DPID" 2>/dev/null || fail "daemon exited before listening"
    sleep 0.1
  done
}

# 5. Daemon with the one-shot admission-control fault armed: the first
# compile attempt is shed with the retryable `overloaded` code; a client
# allowed to retry backs off, tries again, and succeeds — exit 0.
SNSLP_FAULT_INJECT=service.queue.overload \
  "$SNSLPD" --socket="$SOCK" --max-requests=2 > "$WORKDIR/snslpd5.out" &
DPID=$!
wait_socket
"$CLIENT" --socket="$SOCK" --file="$WORKDIR/kernel.ir" \
    --retries=2 --retry-base-ms=1 \
    > "$WORKDIR/retry.out" 2> "$WORKDIR/retry.err" \
  || fail "retry after overloaded did not succeed (exit $?)"
grep -q '^status: ok$' "$WORKDIR/retry.out" || fail "retry: not ok"
grep -q 'overloaded.*retrying' "$WORKDIR/retry.err" \
  || fail "retry: no backoff notice on stderr"
wait "$DPID" || { DPID=""; fail "daemon (5) did not exit cleanly"; }
DPID=""

# 6. Same armed fault, retries forbidden: the retryable failure survives
# every (single) attempt — EX_TEMPFAIL (75), never a dropped connection.
# 7. A permanent error without --expect-error exits 1, not 75.
SNSLP_FAULT_INJECT=service.queue.overload \
  "$SNSLPD" --socket="$SOCK" --max-requests=2 > "$WORKDIR/snslpd6.out" &
DPID=$!
wait_socket
set +e
"$CLIENT" --socket="$SOCK" --file="$WORKDIR/kernel.ir" --retries=0 \
    > "$WORKDIR/overloaded.out" 2>/dev/null
RC=$?
set -e
[ "$RC" -eq 75 ] || fail "expected exit 75 for exhausted retryable, got $RC"
grep -q '^error-code: overloaded$' "$WORKDIR/overloaded.out" \
  || fail "expected the pinned 'overloaded' spelling"
set +e
"$CLIENT" --socket="$SOCK" --file="$WORKDIR/bad.ir" --retries=3 \
    > /dev/null 2>&1
RC=$?
set -e
[ "$RC" -eq 1 ] || fail "expected exit 1 for permanent parse-error, got $RC"
wait "$DPID" || { DPID=""; fail "daemon (6) did not exit cleanly"; }
DPID=""

# 8. No daemon listening: transport failure after every attempt, exit 2.
set +e
"$CLIENT" --socket="$WORKDIR/nobody-home.sock" --file="$WORKDIR/kernel.ir" \
    --retries=1 --retry-base-ms=1 > /dev/null 2>&1
RC=$?
set -e
[ "$RC" -eq 2 ] || fail "expected exit 2 for transport failure, got $RC"

# --- The reactor-era contracts -----------------------------------------

# 9. SIGTERM drain with an idle-but-open connection. A client holds its
# connection open (--linger-ms) *after* being served; SIGTERM mid-linger
# must still exit 0 within seconds. The old one-connection-at-a-time
# daemon wedged forever in its blocking readFrame here.
"$SNSLPD" --socket="$SOCK" > "$WORKDIR/snslpd9.out" &
DPID=$!
wait_socket
"$CLIENT" --socket="$SOCK" --file="$WORKDIR/kernel.ir" \
    --linger-ms=10000 > "$WORKDIR/linger.out" &
CPID=$!
# Wait until the lingering client has been served — the TERM below must
# land while the connection is open but *idle*, the exact shape that
# wedged the old daemon.
TRIES=0
while ! grep -q '^status: ok$' "$WORKDIR/linger.out" 2>/dev/null; do
  TRIES=$((TRIES + 1))
  [ "$TRIES" -gt 100 ] && fail "lingering client was never served"
  sleep 0.1
done
kill -TERM "$DPID"
TRIES=0
while kill -0 "$DPID" 2>/dev/null; do
  TRIES=$((TRIES + 1))
  [ "$TRIES" -gt 50 ] && fail "daemon (9) did not drain within 5s of SIGTERM"
  sleep 0.1
done
wait "$DPID" || { DPID=""; fail "daemon (9) did not exit cleanly"; }
DPID=""
wait "$CPID" || fail "lingering client failed"
[ -S "$SOCK" ] && fail "daemon (9) left its socket file behind"

# 10. TCP listener sharing the Unix listener's cache: cold compile over
# the Unix socket, then the identical request over TCP must be a hit.
"$SNSLPD" --socket="$SOCK" --tcp-port=0 --max-requests=2 \
    > "$WORKDIR/snslpd10.out" &
DPID=$!
wait_socket
PORT=$(sed -n 's/^snslpd: listening on tcp 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
       "$WORKDIR/snslpd10.out")
[ -n "$PORT" ] || fail "daemon (10) never announced its TCP port"
OUT10A=$("$CLIENT" --socket="$SOCK" --file="$WORKDIR/kernel.ir" \
         --mode=SNSLP --run --elems=8 --data-seed=7) \
  || fail "unix request (10) was rejected"
echo "$OUT10A" | grep -q '^cache: miss$' || fail "unix request (10): expected miss"
OUT10B=$("$CLIENT" --connect="127.0.0.1:$PORT" --file="$WORKDIR/kernel.ir" \
         --mode=SNSLP --run --elems=8 --data-seed=7) \
  || fail "tcp request (10) was rejected"
echo "$OUT10B" | grep -q '^cache: hit$' \
  || fail "tcp request (10): expected a hit from the unix-side compile"
HA=$(echo "$OUT10A" | sed -n 's/^mem-hash: //p')
HB=$(echo "$OUT10B" | sed -n 's/^mem-hash: //p')
[ "$HA" = "$HB" ] || fail "mem-hash differs unix vs tcp ($HA vs $HB)"
wait "$DPID" || { DPID=""; fail "daemon (10) did not exit cleanly"; }
DPID=""

echo "service_roundtrip: PASS"
