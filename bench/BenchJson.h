//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny self-timing harness + machine-readable JSON reporter for the micro
/// benchmarks. Every entry carries (name, iters, ns_per_op) plus optional
/// numeric extras, and the report is written as BENCH_<component>.json so
/// the perf trajectory of the interpreter and the vectorizer can be
/// tracked PR over PR (and diffed in CI) without scraping stdout.
///
/// All binaries accept --smoke: run every benchmark body exactly once and
/// still emit the JSON file. The bench_smoke ctest target uses it to keep
/// the harnesses from bit-rotting.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_BENCH_BENCHJSON_H
#define SNSLP_BENCH_BENCHJSON_H

#include "jit/CPUFeatures.h"

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace snslp {
namespace benchjson {

/// One benchmark result row.
struct Entry {
  std::string Name;
  uint64_t Iters = 0;
  double NsPerOp = 0.0;
  /// Extra numeric facts (speedups, cache hits, ...), appended verbatim.
  std::vector<std::pair<std::string, double>> Extra;
  /// Extra string facts (engine names, ISA strings, ...), emitted as
  /// JSON strings after the numeric extras.
  std::vector<std::pair<std::string, std::string>> ExtraStr;
};

/// Collects entries and serializes them to one JSON file.
class Report {
public:
  explicit Report(std::string Path) : Path(std::move(Path)) {}

  Entry &add(std::string Name, uint64_t Iters, double NsPerOp) {
    Entries.push_back(Entry{std::move(Name), Iters, NsPerOp, {}, {}});
    return Entries.back();
  }

  /// Last-added entry, for attaching extra columns computed after the
  /// timed run itself (e.g. a comparison baseline).
  Entry &last() { return Entries.back(); }

  /// Report-level string metadata ("isa", host facts, ...), emitted as
  /// top-level JSON fields before the benchmark array.
  void addMeta(std::string Key, std::string Value) {
    MetaStr.emplace_back(std::move(Key), std::move(Value));
  }
  /// Report-level numeric metadata ("host_cpus", ...).
  void addMeta(std::string Key, double Value) {
    MetaNum.emplace_back(std::move(Key), Value);
  }

  /// Writes the report; returns false (and complains on stderr) on I/O
  /// failure. Format:
  ///   {"host_cpus":N,"isa":"...",...,
  ///    "benchmarks":[{"name":...,"iters":...,"ns_per_op":...,...},...]}
  bool write() const {
    std::ofstream OS(Path);
    if (!OS) {
      std::cerr << "error: cannot write " << Path << "\n";
      return false;
    }
    OS << "{\n";
    for (const auto &[K, V] : MetaNum)
      OS << "  \"" << escape(K) << "\": " << V << ",\n";
    for (const auto &[K, V] : MetaStr)
      OS << "  \"" << escape(K) << "\": \"" << escape(V) << "\",\n";
    OS << "  \"benchmarks\": [\n";
    for (size_t I = 0; I < Entries.size(); ++I) {
      const Entry &E = Entries[I];
      OS << "    {\"name\": \"" << escape(E.Name) << "\", \"iters\": "
         << E.Iters << ", \"ns_per_op\": " << E.NsPerOp;
      for (const auto &[K, V] : E.Extra)
        OS << ", \"" << escape(K) << "\": " << V;
      for (const auto &[K, V] : E.ExtraStr)
        OS << ", \"" << escape(K) << "\": \"" << escape(V) << "\"";
      OS << "}" << (I + 1 < Entries.size() ? "," : "") << "\n";
    }
    OS << "  ]\n}\n";
    std::cout << "wrote " << Path << " (" << Entries.size()
              << " entries)\n";
    return true;
  }

private:
  static std::string escape(const std::string &S) {
    std::string Out;
    Out.reserve(S.size());
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out.push_back('\\');
      Out.push_back(C);
    }
    return Out;
  }

  std::string Path;
  std::vector<Entry> Entries;
  std::vector<std::pair<std::string, double>> MetaNum;
  std::vector<std::pair<std::string, std::string>> MetaStr;
};

/// Stamps the standard host facts every report should carry: logical CPU
/// count and the CPUID-detected ISA string (jit/CPUFeatures.h) — the two
/// facts needed to interpret engine-comparison numbers across machines.
inline void addHostMeta(Report &Rep) {
  Rep.addMeta("host_cpus",
              static_cast<double>(std::thread::hardware_concurrency()));
  Rep.addMeta("isa", hostCPUFeatures().isaString());
}

/// True when --smoke is among the arguments (single-iteration mode).
inline bool isSmokeRun(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      return true;
  return false;
}

/// Times \p Fn: one untimed warm-up call, then repeated calls until
/// \p MinNanos of wall time accumulate (exactly one timed call in smoke
/// mode). Returns {iterations, ns per call}.
template <typename Fn>
std::pair<uint64_t, double> measure(Fn &&F, bool Smoke,
                                    uint64_t MinNanos = 150'000'000) {
  using Clock = std::chrono::steady_clock;
  F(); // Warm-up (compile caches, page-in).
  uint64_t Iters = 0;
  auto Start = Clock::now();
  do {
    F();
    ++Iters;
  } while (!Smoke &&
           static_cast<uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - Start)
                   .count()) < MinNanos);
  uint64_t Elapsed = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           Start)
          .count());
  return {Iters, static_cast<double>(Elapsed) / static_cast<double>(Iters)};
}

} // namespace benchjson
} // namespace snslp

#endif // SNSLP_BENCH_BENCHJSON_H
