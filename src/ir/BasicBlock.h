//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock: an ordered list of instructions ending in a terminator.
/// Owns its instructions; supports mid-block insertion and stable position
/// queries (comesBefore) via lazy renumbering.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_IR_BASICBLOCK_H
#define SNSLP_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <list>
#include <memory>
#include <string>
#include <vector>

namespace snslp {

class Function;

/// A maximal straight-line instruction sequence; the unit the SLP
/// vectorizer operates on.
class BasicBlock {
public:
  using InstListType = std::list<std::unique_ptr<Instruction>>;
  using iterator = InstListType::iterator;
  using const_iterator = InstListType::const_iterator;

  BasicBlock(Function *Parent, std::string Name)
      : Parent(Parent), Name(std::move(Name)) {}

  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  const std::string &getName() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }
  Function *getParent() const { return Parent; }
  Context &getContext() const;

  /// \name Instruction list access.
  /// @{
  iterator begin() { return Insts.begin(); }
  iterator end() { return Insts.end(); }
  const_iterator begin() const { return Insts.begin(); }
  const_iterator end() const { return Insts.end(); }
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  Instruction &front() { return *Insts.front(); }
  Instruction &back() { return *Insts.back(); }
  const Instruction &back() const { return *Insts.back(); }
  /// @}

  /// Inserts \p Inst (taking ownership) before \p Pos; returns the raw
  /// pointer for convenience.
  Instruction *insert(iterator Pos, std::unique_ptr<Instruction> Inst);

  /// Appends \p Inst at the end of the block.
  Instruction *append(std::unique_ptr<Instruction> Inst) {
    return insert(Insts.end(), std::move(Inst));
  }

  /// Returns the block terminator, or null if the block is empty or does
  /// not (yet) end in a terminator.
  Instruction *getTerminator();
  const Instruction *getTerminator() const {
    return const_cast<BasicBlock *>(this)->getTerminator();
  }

  /// Returns the successor blocks (empty for return blocks).
  std::vector<BasicBlock *> successors() const;

  /// Returns the predecessor blocks (computed by scanning the function).
  std::vector<BasicBlock *> predecessors() const;

  /// Returns the iterator pointing at \p Inst; asserts membership.
  iterator getIterator(Instruction *Inst);

  /// Makes comesBefore() O(1) until the next structural change.
  void renumberInstructions() const;

private:
  friend class Instruction;
  friend class Function; ///< takeBody reparents moved blocks.

  /// Unlinks \p Inst and returns ownership (used by move/erase).
  std::unique_ptr<Instruction> remove(Instruction *Inst);

  Function *Parent;
  std::string Name;
  InstListType Insts;
  mutable bool OrderValid = false;
};

} // namespace snslp

#endif // SNSLP_IR_BASICBLOCK_H
