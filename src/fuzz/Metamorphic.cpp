//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Metamorphic.h"

#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"

#include <algorithm>
#include <vector>

using namespace snslp;
using namespace snslp::fuzz;

const char *fuzz::getRuleName(MetamorphicRule Rule) {
  switch (Rule) {
  case MetamorphicRule::CommuteOperands:
    return "commute";
  case MetamorphicRule::ResugarInverse:
    return "resugar";
  case MetamorphicRule::ReassociateChain:
    return "reassoc";
  case MetamorphicRule::ShuffleStatements:
    return "shuffle";
  }
  return "unknown";
}

namespace {

unsigned commuteOperands(Function &F, RNG &R) {
  unsigned Rewrites = 0;
  for (const auto &BB : F.blocks())
    for (const auto &InstPtr : *BB)
      if (auto *Bin = dyn_cast<BinaryOperator>(InstPtr.get()))
        if (isCommutative(Bin->getOpcode()) && R.nextBool(0.5)) {
          Bin->swapOperands();
          ++Rewrites;
        }
  return Rewrites;
}

unsigned resugarInverse(Function &F, RNG &R) {
  unsigned Rewrites = 0;
  Context &Ctx = F.getContext();
  for (const auto &BB : F.blocks()) {
    // Collect first: the rewrite inserts instructions.
    std::vector<BinaryOperator *> Subs;
    for (const auto &InstPtr : *BB)
      if (auto *Bin = dyn_cast<BinaryOperator>(InstPtr.get()))
        if ((Bin->getOpcode() == BinOpcode::Sub ||
             Bin->getOpcode() == BinOpcode::FSub) &&
            !Bin->getType()->isVector() && R.nextBool(0.6))
          Subs.push_back(Bin);
    for (BinaryOperator *Sub : Subs) {
      IRBuilder B(Ctx);
      B.setInsertPointBefore(Sub);
      Value *Neg;
      BinOpcode AddOp;
      if (Sub->getOpcode() == BinOpcode::FSub) {
        // a - b  ->  a + (-b); bit-exact in IEEE-754.
        Neg = B.createFNeg(Sub->getRHS());
        AddOp = BinOpcode::FAdd;
      } else {
        // a - b  ->  a + (0 - b); exact under wrap-around.
        Neg = B.createSub(Ctx.getConstantInt(Sub->getType(), 0),
                          Sub->getRHS());
        AddOp = BinOpcode::Add;
      }
      Value *Add = B.createBinOp(AddOp, Sub->getLHS(), Neg);
      if (auto *AddInst = dyn_cast<Instruction>(Add))
        AddInst->setName(Sub->getName());
      Sub->replaceAllUsesWith(Add);
      Sub->eraseFromParent();
      ++Rewrites;
    }
  }
  return Rewrites;
}

/// One leaf of a +/- chain together with its accumulated sign (+1/-1),
/// i.e. its APO restricted to the integer add/sub family.
struct ChainLeaf {
  Value *V;
  int Sign;
};

/// Collects the leaves of the maximal add/sub chain rooted at \p Root.
/// Interior nodes must be single-use adds/subs of the same scalar integer
/// type so that re-emitting the chain cannot change other users.
void collectChain(Value *V, int Sign, BinaryOperator *Root,
                  std::vector<ChainLeaf> &Leaves) {
  auto *Bin = dyn_cast<BinaryOperator>(V);
  bool Interior = Bin &&
                  (Bin->getOpcode() == BinOpcode::Add ||
                   Bin->getOpcode() == BinOpcode::Sub) &&
                  (Bin == Root || Bin->hasOneUse()) &&
                  Bin->getParent() == Root->getParent();
  if (!Interior) {
    Leaves.push_back({V, Sign});
    return;
  }
  collectChain(Bin->getLHS(), Sign, Root, Leaves);
  int RhsSign = Bin->getOpcode() == BinOpcode::Sub ? -Sign : Sign;
  collectChain(Bin->getRHS(), RhsSign, Root, Leaves);
}

unsigned reassociateChains(Function &F, RNG &R) {
  unsigned Rewrites = 0;
  Context &Ctx = F.getContext();
  for (const auto &BB : F.blocks()) {
    // Chain roots: integer add/sub whose users are not add/sub in the
    // same block (i.e. maximal chains), scalar type only.
    std::vector<BinaryOperator *> Roots;
    for (const auto &InstPtr : *BB) {
      auto *Bin = dyn_cast<BinaryOperator>(InstPtr.get());
      if (!Bin || Bin->getType()->isVector() ||
          !Bin->getType()->isInteger())
        continue;
      if (Bin->getOpcode() != BinOpcode::Add &&
          Bin->getOpcode() != BinOpcode::Sub)
        continue;
      bool IsRoot = true;
      for (const Use &U : Bin->uses()) {
        auto *UserBin = dyn_cast<BinaryOperator>(U.User);
        if (UserBin && UserBin->getParent() == Bin->getParent() &&
            (UserBin->getOpcode() == BinOpcode::Add ||
             UserBin->getOpcode() == BinOpcode::Sub) && Bin->hasOneUse())
          IsRoot = false;
      }
      if (IsRoot)
        Roots.push_back(Bin);
    }

    for (BinaryOperator *Root : Roots) {
      std::vector<ChainLeaf> Leaves;
      collectChain(Root, +1, Root, Leaves);
      if (Leaves.size() < 3 || !R.nextBool(0.8))
        continue;

      // Random permutation of the leaves; APO signs travel with them.
      for (size_t I = Leaves.size(); I > 1; --I)
        std::swap(Leaves[I - 1], Leaves[R.nextBelow(I)]);

      // Re-emit: start from a positive leaf when one exists (move it to
      // the front); otherwise start from 0 - leaf.
      auto FirstPos = std::find_if(Leaves.begin(), Leaves.end(),
                                   [](const ChainLeaf &L) {
                                     return L.Sign > 0;
                                   });
      if (FirstPos != Leaves.end())
        std::iter_swap(Leaves.begin(), FirstPos);

      IRBuilder B(Ctx);
      B.setInsertPointBefore(Root);
      Value *Acc;
      if (Leaves.front().Sign > 0)
        Acc = Leaves.front().V;
      else
        Acc = B.createSub(Ctx.getConstantInt(Root->getType(), 0),
                          Leaves.front().V);
      for (size_t I = 1; I < Leaves.size(); ++I)
        Acc = B.createBinOp(Leaves[I].Sign > 0 ? BinOpcode::Add
                                               : BinOpcode::Sub,
                            Acc, Leaves[I].V);
      if (auto *AccInst = dyn_cast<Instruction>(Acc))
        AccInst->setName(Root->getName());
      Root->replaceAllUsesWith(Acc);
      // The old interior nodes are now dead; leave them to DCE-style
      // cleanup below (they are pure and unused).
      std::vector<Instruction *> Dead{Root};
      while (!Dead.empty()) {
        Instruction *D = Dead.back();
        Dead.pop_back();
        if (D->hasUses() || D->hasSideEffects())
          continue;
        for (unsigned I = 0; I < D->getNumOperands(); ++I)
          if (auto *OpInst = dyn_cast<BinaryOperator>(D->getOperand(I)))
            Dead.push_back(OpInst);
        D->eraseFromParent();
      }
      ++Rewrites;
    }
  }
  return Rewrites;
}

unsigned shuffleStatements(Function &F, RNG &R) {
  unsigned Rewrites = 0;
  for (const auto &BB : F.blocks()) {
    // Movable window: everything between the leading phis and the
    // terminator.
    std::vector<Instruction *> Body;
    for (const auto &InstPtr : *BB) {
      Instruction *I = InstPtr.get();
      if (isa<PhiNode>(I) || I->isTerminator())
        continue;
      Body.push_back(I);
    }
    if (Body.size() < 2)
      continue;

    // Dependence edges: SSA operands within the window, plus conservative
    // memory ordering (a store depends on every earlier memory op; a load
    // depends on every earlier store).
    const size_t N = Body.size();
    std::vector<std::vector<size_t>> Preds(N);
    std::vector<size_t> Index(N);
    for (size_t I = 0; I < N; ++I) {
      for (unsigned Op = 0; Op < Body[I]->getNumOperands(); ++Op)
        for (size_t J = 0; J < I; ++J)
          if (Body[J] == Body[I]->getOperand(Op))
            Preds[I].push_back(J);
      if (Body[I]->mayReadOrWriteMemory())
        for (size_t J = 0; J < I; ++J) {
          if (!Body[J]->mayReadOrWriteMemory())
            continue;
          bool EitherStores = isa<StoreInst>(Body[I]) ||
                              isa<StoreInst>(Body[J]);
          if (EitherStores)
            Preds[I].push_back(J);
        }
    }

    // Random topological order (Kahn with a randomly drawn ready set).
    std::vector<size_t> Remaining(N);
    for (size_t I = 0; I < N; ++I)
      Remaining[I] = Preds[I].size();
    std::vector<bool> Placed(N, false);
    std::vector<size_t> NewOrder;
    NewOrder.reserve(N);
    while (NewOrder.size() < N) {
      std::vector<size_t> Ready;
      for (size_t I = 0; I < N; ++I)
        if (!Placed[I] && Remaining[I] == 0)
          Ready.push_back(I);
      size_t Pick = Ready[R.nextBelow(Ready.size())];
      Placed[Pick] = true;
      NewOrder.push_back(Pick);
      for (size_t I = 0; I < N; ++I)
        if (!Placed[I])
          for (size_t P : Preds[I])
            if (P == Pick)
              --Remaining[I];
    }

    bool Changed = false;
    for (size_t I = 0; I < N; ++I)
      if (NewOrder[I] != I)
        Changed = true;
    if (!Changed)
      continue;

    // Materialize the order by moving each instruction before the
    // terminator in sequence.
    Instruction *Term = BB->getTerminator();
    for (size_t I : NewOrder)
      Body[I]->moveBefore(Term);
    ++Rewrites;
  }
  return Rewrites;
}

} // namespace

unsigned fuzz::applyMetamorphicRule(Function &F, MetamorphicRule Rule,
                                    RNG &R) {
  switch (Rule) {
  case MetamorphicRule::CommuteOperands:
    return commuteOperands(F, R);
  case MetamorphicRule::ResugarInverse:
    return resugarInverse(F, R);
  case MetamorphicRule::ReassociateChain:
    return reassociateChains(F, R);
  case MetamorphicRule::ShuffleStatements:
    return shuffleStatements(F, R);
  }
  return 0;
}
