//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "slp/SLPVectorizer.h"

#include "ir/DCE.h"
#include "ir/Function.h"
#include "ir/Verifier.h"
#include "slp/GraphBuilder.h"
#include "slp/IRTransaction.h"
#include "slp/PackEnumerator.h"
#include "slp/PackSelector.h"
#include "slp/VectorCodeGen.h"
#include "support/ErrorHandling.h"
#include "support/FaultInjection.h"
#include "support/Statistic.h"
#include "support/Timer.h"

#include <optional>
#include <unordered_map>

using namespace snslp;

const char *snslp::getModeName(VectorizerMode Mode) {
  switch (Mode) {
  case VectorizerMode::O3:
    return "O3";
  case VectorizerMode::SLP:
    return "SLP";
  case VectorizerMode::LSLP:
    return "LSLP";
  case VectorizerMode::SNSLP:
    return "SN-SLP";
  case VectorizerMode::GoSLP:
    return "GoSLP";
  }
  snslp_unreachable("covered switch");
}

void VectorizeStats::mergeFrom(const VectorizeStats &Other) {
  GraphsBuilt += Other.GraphsBuilt;
  GraphsVectorized += Other.GraphsVectorized;
  CommittedCost += Other.CommittedCost;
  CommittedSuperNodeSizes.insert(CommittedSuperNodeSizes.end(),
                                 Other.CommittedSuperNodeSizes.begin(),
                                 Other.CommittedSuperNodeSizes.end());
  InstructionsRemoved += Other.InstructionsRemoved;
  CompileNanos += Other.CompileNanos;
  LookAheadCacheHits += Other.LookAheadCacheHits;
  LookAheadCacheMisses += Other.LookAheadCacheMisses;
  Remarks.insert(Remarks.end(), Other.Remarks.begin(), Other.Remarks.end());
  VectorizeNodes += Other.VectorizeNodes;
  AlternateNodes += Other.AlternateNodes;
  GatherNodes += Other.GatherNodes;
  ShuffleNodes += Other.ShuffleNodes;
  BudgetBailouts += Other.BudgetBailouts;
  VerifyBailouts += Other.VerifyBailouts;
  FaultBailouts += Other.FaultBailouts;
  PacksEnumerated += Other.PacksEnumerated;
  PacksSelected += Other.PacksSelected;
  SolverNodesExplored += Other.SolverNodesExplored;
  SolverProvedScalarOptimal += Other.SolverProvedScalarOptimal;
  GoSLPGreedyFallbacks += Other.GoSLPGreedyFallbacks;
}

/// Tallies the node kinds of a committed graph into \p Stats.
static void tallyNodeKinds(const SLPGraph &Graph, VectorizeStats &Stats) {
  for (const auto &N : Graph.nodes()) {
    switch (N->getKind()) {
    case SLPNodeKind::Vectorize:
      ++Stats.VectorizeNodes;
      break;
    case SLPNodeKind::Alternate:
      ++Stats.AlternateNodes;
      break;
    case SLPNodeKind::Gather:
      ++Stats.GatherNodes;
      break;
    case SLPNodeKind::Shuffle:
      ++Stats.ShuffleNodes;
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Transactional attempt support
//===----------------------------------------------------------------------===//

/// Rolling back an IRTransaction recreates every instruction of the
/// function, so the raw StoreInst pointers held by the remaining seed
/// worklist dangle. Rollback is bit-identical in printed form, which means
/// instruction *positions* are stable: captureStorePositions records the
/// in-block index of every store of the tail worklist groups before an
/// attempt, and reanchorStores re-resolves those indexes against the
/// restored block afterwards.
static std::vector<std::vector<size_t>>
captureStorePositions(const BasicBlock &BB,
                      const std::vector<SeedGroup> &Worklist, size_t From) {
  std::unordered_map<const Instruction *, size_t> Pos;
  size_t Idx = 0;
  for (const auto &Inst : BB)
    Pos[Inst.get()] = Idx++;
  std::vector<std::vector<size_t>> Out;
  Out.reserve(Worklist.size() > From ? Worklist.size() - From : 0);
  for (size_t K = From; K < Worklist.size(); ++K) {
    std::vector<size_t> G;
    G.reserve(Worklist[K].Stores.size());
    for (const StoreInst *S : Worklist[K].Stores)
      G.push_back(Pos.at(S));
    Out.push_back(std::move(G));
  }
  return Out;
}

/// See captureStorePositions.
static void reanchorStores(BasicBlock &BB,
                           const std::vector<std::vector<size_t>> &Positions,
                           std::vector<SeedGroup> &Worklist, size_t From) {
  std::vector<Instruction *> ByPos;
  ByPos.reserve(BB.size());
  for (const auto &Inst : BB)
    ByPos.push_back(Inst.get());
  for (size_t K = 0; K < Positions.size(); ++K) {
    SeedGroup &G = Worklist[From + K];
    G.Stores.clear();
    G.Stores.reserve(Positions[K].size());
    for (size_t P : Positions[K]) {
      assert(P < ByPos.size() && "rollback changed the block shape");
      G.Stores.push_back(cast<StoreInst>(ByPos[P]));
    }
  }
}

/// Re-resolves one position list against (possibly restored) \p BB.
static std::vector<StoreInst *>
resolveStoresAt(BasicBlock &BB, const std::vector<size_t> &Positions) {
  std::vector<Instruction *> ByPos;
  ByPos.reserve(BB.size());
  for (const auto &Inst : BB)
    ByPos.push_back(Inst.get());
  std::vector<StoreInst *> Out;
  Out.reserve(Positions.size());
  for (size_t P : Positions) {
    assert(P < ByPos.size() && "rollback changed the block shape");
    Out.push_back(cast<StoreInst>(ByPos[P]));
  }
  return Out;
}

/// Restores the pre-attempt snapshot; a rollback can only fail when the
/// printer/parser fixpoint invariant itself is broken, which is a
/// programmer error, not an input error.
static void rollbackOrDie(IRTransaction &Txn) {
  std::string Err;
  if (!Txn.rollback(&Err))
    reportFatalError(Err);
}

/// Joins verifier diagnostics into one remark message.
static std::string joinErrors(const std::vector<std::string> &Errors) {
  std::string Out;
  for (const std::string &E : Errors) {
    if (!Out.empty())
      Out += "; ";
    Out += E;
  }
  return Out;
}

/// Stores carry no name; identify a pack by its pointer-operand names (the
/// same convention as the seed collector's remarks).
static std::vector<std::string>
packValueNames(const std::vector<StoreInst *> &Stores) {
  std::vector<std::string> Names;
  Names.reserve(Stores.size());
  for (const StoreInst *S : Stores) {
    const std::string &N = S->getPointerOperand()->getName();
    Names.push_back(N.empty() ? std::string("<store>") : N);
  }
  return Names;
}

namespace {

//===----------------------------------------------------------------------===//
// VectorizerDriver
//===----------------------------------------------------------------------===//

/// One vectorizer run over one function. The greedy store phase, the GoSLP
/// enumerate/solve/commit phase and the reduction phase share the
/// transactional attempt machinery; GoSLP additionally uses the greedy
/// phase as its budget/fault fallback (docs/goslp.md).
class VectorizerDriver {
public:
  VectorizerDriver(Function &F, const VectorizerConfig &Cfg)
      : F(F), Cfg(Cfg), TCM(Cfg.Target), Fn(F.getName()),
        Transactional(Cfg.TransactionalRegions) {}

  VectorizeStats run() {
    for (size_t BI = 0; BI < F.blocks().size(); ++BI) {
      // GoSLP needs the transactional layer (candidate evaluation is
      // build-then-rollback); without it the mode degrades to greedy
      // SN-SLP selection for the whole function.
      if (Cfg.useGlobalPackSelection() && Transactional)
        runGoSLPStorePhase(BI);
      else
        runGreedyStorePhase(BI);
      runReductionPhase(BI);
    }
    Stats.Remarks = RC.take();
    return std::move(Stats);
  }

private:
  void runGreedyStorePhase(size_t BI) {
    BasicBlock *BB = F.blocks()[BI].get();
    // Step 1 of Fig. 1: scan for vectorizable seed instructions.
    std::vector<SeedGroup> Worklist = collectStoreSeeds(
        *BB, Cfg.MinVF, Cfg.MaxVF, Cfg.Target.MaxVectorWidthBytes, &RC);
    processStoreGroups(BI, std::move(Worklist), /*AllowHalving=*/true);
  }

  /// Steps 2-8 over one store-group worklist. With \p AllowHalving, a
  /// cost-rejected group re-tries both halves at the smaller VF (LLVM's
  /// SLP retries narrower widths the same way); the GoSLP commit phase
  /// turns this off — the solver already chose the widths.
  void processStoreGroups(size_t BI, std::vector<SeedGroup> Worklist,
                          bool AllowHalving);

  /// GoSLP: enumerate -> evaluate -> solve -> commit, degrading to the
  /// greedy phase on a blown budget or injected fault (never scalar-only:
  /// the fallback is a full greedy pass over the block).
  void runGoSLPStorePhase(size_t BI);

  /// Costs every candidate against the pristine scalar block: ordinary
  /// graph build (silent), then bit-identical rollback. On success each
  /// candidate carries Cost and Score. Returns false when a per-attempt
  /// budget blew mid-evaluation (\p Reason then names it).
  bool evaluateCandidates(size_t BI, std::vector<PackCandidate> &Candidates,
                          std::string &Reason);

  /// Extension: horizontal-reduction seeds (-slp-vectorize-hor).
  void runReductionPhase(size_t BI);

  Function &F;
  const VectorizerConfig &Cfg;
  TargetCostModel TCM;
  // Every decision of this run lands in one ordered collector; the caller
  // reads the stream from Stats.Remarks (irtool --remarks, fuzzslp
  // artifact headers, golden-remark tests).
  RemarkCollector RC;
  VectorizeStats Stats;
  const std::string Fn;
  const bool Transactional;
};

void VectorizerDriver::processStoreGroups(size_t BI,
                                          std::vector<SeedGroup> Worklist,
                                          bool AllowHalving) {
  BasicBlock *BB = F.blocks()[BI].get();
  for (size_t WI = 0; WI < Worklist.size(); ++WI) {
    SeedGroup Group = Worklist[WI];

    // ---- Fail-safe attempt boundary ---------------------------------
    // Snapshot the function and anchor the tail of the worklist by
    // position; any defect below (blown budget, injected fault, verify
    // failure) rolls the region back bit-identically and the pass
    // continues with the next seed.
    std::optional<IRTransaction> Txn;
    std::vector<std::vector<size_t>> TailPositions;
    if (Transactional) {
      Txn.emplace(F);
      TailPositions = captureStorePositions(*BB, Worklist, WI + 1);
    }
    BudgetTracker Budget(Cfg.Budgets);
    if (Transactional && faultPoint("slp.graph.budget"))
      Budget.forceExhausted("fault:slp.graph.budget");

    // Rolls the attempt back, re-anchors the worklist tail onto the
    // restored IR, counts the bailout and emits the missed remark. The
    // caller `continue`s to the next seed afterwards.
    auto Bailout = [&](const char *Why, unsigned &Counter,
                       std::string Detail) {
      rollbackOrDie(*Txn);
      ++Counter;
      BB = F.blocks()[BI].get();
      reanchorStores(*BB, TailPositions, Worklist, WI + 1);
      RC.add(Remark::missed("slp-vectorizer", "VectorizeAborted", Fn)
                 .withDecision(std::string("bailout:") + Why)
                 .withValues({})
                 .withMessage(std::move(Detail) +
                              "; region rolled back to scalar form"));
    };

    GraphBuilder GB(Cfg, TCM, &RC);
    if (Cfg.Budgets.anyLimited() || Budget.exhausted())
      GB.setBudget(&Budget);
    std::unique_ptr<SLPGraph> Graph = GB.build(Group);
    ++Stats.GraphsBuilt;
    Stats.LookAheadCacheHits += GB.getLookAhead().getCacheHits();
    Stats.LookAheadCacheMisses += GB.getLookAhead().getCacheMisses();

    // A blown budget means the graph (and any Super-Node massaging that
    // happened before exhaustion) is not trustworthy: degrade to the
    // pre-attempt scalar code and move on.
    if (Budget.exhausted()) {
      if (Txn) {
        Bailout("budget", Stats.BudgetBailouts,
                "resource budget '" + Budget.reason() +
                    "' exhausted while vectorizing a " +
                    std::to_string(Group.getVF()) +
                    "-wide store group in '" + BB->getName() + "' (" +
                    std::to_string(Budget.graphNodes()) + " nodes, " +
                    std::to_string(Budget.lookAheadEvals()) + " evals, " +
                    std::to_string(Budget.superNodePermutations()) +
                    " permutations)");
        continue;
      }
      // Without the transactional layer the degraded (all-gather) graph
      // simply fails the cost test below; scalar semantics are intact
      // either way.
    }

    // Step 5: compare the cost against the threshold.
    if (Graph->getTotalCost() >= Cfg.CostThreshold) {
      RC.add(Remark::missed("slp-vectorizer", "GraphRejected", Fn)
                 .withDecision("reject:cost")
                 .withCost(0, Graph->getTotalCost())
                 .withMessage("rejected " + std::to_string(Group.getVF()) +
                              "-wide store group in '" + BB->getName() +
                              "' (cost " +
                              std::to_string(Graph->getTotalCost()) +
                              " >= threshold " +
                              std::to_string(Cfg.CostThreshold) + ")"));
      // The Super-Node probe may have massaged the scalar IR before the
      // cost verdict; that massaging is kept (it is semantics-preserving
      // and the paper's halving retry builds on it) — but only when it
      // verifies. A corrupted massage rolls back like any other defect.
      if (Txn && Cfg.VerifyAfterAttempt && Txn->modified()) {
        std::vector<std::string> VErrors;
        if (!verifyFunction(F, &VErrors)) {
          Bailout("verify", Stats.VerifyBailouts,
                  "function failed verification after a cost-rejected "
                  "attempt: " +
                      joinErrors(VErrors));
          continue; // The halves would reference rolled-back IR.
        }
      }
      // Not profitable; retry the halves when still wide enough.
      if (AllowHalving && Group.getVF() / 2 >= Cfg.MinVF) {
        SeedGroup Low, High;
        unsigned Half = Group.getVF() / 2;
        Low.Stores.assign(Group.Stores.begin(),
                          Group.Stores.begin() + Half);
        High.Stores.assign(Group.Stores.begin() + Half,
                           Group.Stores.end());
        Worklist.push_back(std::move(Low));
        Worklist.push_back(std::move(High));
      }
      continue; // Scalar code stays (possibly massaged).
    }

    // Step 6.b: vectorize.
    VectorCodeGen(*Graph, GB.getScalarMap()).run();

    // Planted fault: simulate a code-generator defect by corrupting the
    // region (dropping the block terminator); the post-attempt verifier
    // must catch it and roll back.
    if (Txn && faultPoint("slp.codegen.corrupt-ir")) {
      if (Instruction *Term = BB->getTerminator()) {
        Term->dropAllReferences();
        Term->eraseFromParent();
      }
    }
    // Planted fault: simulate an internal defect detected after codegen
    // but before the commit is published.
    if (Txn && faultPoint("slp.vectorize.abort")) {
      Bailout("fault", Stats.FaultBailouts,
              "injected fault 'slp.vectorize.abort' fired after codegen "
              "of a " +
                  std::to_string(Group.getVF()) +
                  "-wide store group in '" + BB->getName() + "'");
      continue;
    }
    if (Txn && Cfg.VerifyAfterAttempt) {
      std::vector<std::string> VErrors;
      if (!verifyFunction(F, &VErrors)) {
        Bailout("verify", Stats.VerifyBailouts,
                "function failed verification after vectorizing a " +
                    std::to_string(Group.getVF()) +
                    "-wide store group in '" + BB->getName() +
                    "': " + joinErrors(VErrors));
        continue;
      }
    }

    ++Stats.GraphsVectorized;
    Stats.CommittedCost += Graph->getTotalCost();
    RC.add(Remark::passed("slp-vectorizer", "GraphVectorized", Fn)
               .withDecision("vectorize")
               .withCost(0, Graph->getTotalCost())
               .withMessage("vectorized " + std::to_string(Group.getVF()) +
                            "-wide store group in '" + BB->getName() +
                            "' (cost " +
                            std::to_string(Graph->getTotalCost()) + ", " +
                            std::to_string(
                                Graph->getSuperNodeSizes().size()) +
                            " super-node(s))"));
    tallyNodeKinds(*Graph, Stats);
    for (unsigned S : Graph->getSuperNodeSizes())
      Stats.CommittedSuperNodeSizes.push_back(S);
  }
}

bool VectorizerDriver::evaluateCandidates(
    size_t BI, std::vector<PackCandidate> &Candidates, std::string &Reason) {
  for (PackCandidate &C : Candidates) {
    // Prior evaluations may have rolled the function back; re-resolve the
    // candidate's stores from their (stable) in-block positions.
    BasicBlock *BB = F.blocks()[BI].get();
    C.Group.Stores = resolveStoresAt(*BB, C.Positions);

    // The tie-break edge weight: the memoized look-ahead group score of
    // the stored values, taken on the pristine scalar IR (the build below
    // may massage it).
    IRTransaction Txn(F);
    BudgetTracker Budget(Cfg.Budgets);
    GraphBuilder GB(Cfg, TCM, /*RC=*/nullptr); // Probe builds stay silent:
    // the committed build re-emits the full node trail.
    if (Cfg.Budgets.anyLimited())
      GB.setBudget(&Budget);
    {
      std::vector<const Value *> Stored;
      Stored.reserve(C.Group.Stores.size());
      for (const StoreInst *S : C.Group.Stores)
        Stored.push_back(S->getValueOperand());
      C.Score = GB.getLookAhead().groupScore(Stored);
    }
    std::unique_ptr<SLPGraph> Graph = GB.build(C.Group);
    Stats.LookAheadCacheHits += GB.getLookAhead().getCacheHits();
    Stats.LookAheadCacheMisses += GB.getLookAhead().getCacheMisses();
    C.Cost = Graph->getTotalCost();
    const bool Exhausted = Budget.exhausted();
    if (Exhausted)
      Reason = Budget.reason();
    // Whatever the probe did to the IR (Super-Node re-emission), undo it:
    // selection must judge every candidate against the same scalar block.
    if (Txn.modified())
      rollbackOrDie(Txn);
    if (Exhausted)
      return false;
  }
  return true;
}

void VectorizerDriver::runGoSLPStorePhase(size_t BI) {
  BasicBlock *BB = F.blocks()[BI].get();
  BudgetTracker Budget(Cfg.Budgets);

  // The budget/fault fallback ladder: GoSLP never leaves the block
  // scalar-only because its solver pipeline failed — it re-runs the block
  // through the greedy phase (the SN-SLP behaviour) instead.
  auto FallBackToGreedy = [&](const char *Why, unsigned &Counter,
                              std::string Detail) {
    ++Counter;
    ++Stats.GoSLPGreedyFallbacks;
    RC.add(Remark::missed("slp-vectorizer", "VectorizeAborted", Fn)
               .withDecision(std::string("bailout:") + Why)
               .withValues({})
               .withMessage(std::move(Detail) +
                            "; falling back to greedy pack selection"));
    runGreedyStorePhase(BI);
  };

  // Planted fault: enumeration itself dies. Probed before any work so the
  // site fires deterministically on every GoSLP block.
  if (faultPoint("slp.goslp.enumerate.abort")) {
    FallBackToGreedy("fault", Stats.FaultBailouts,
                     "injected fault 'slp.goslp.enumerate.abort' fired "
                     "before pack enumeration in '" +
                         BB->getName() + "'");
    return;
  }

  PackEnumeration Enum = enumeratePackCandidates(*BB, Cfg, Budget, &RC);
  if (!Enum.Complete) {
    FallBackToGreedy("budget", Stats.BudgetBailouts,
                     "resource budget 'pack-candidates' exhausted after " +
                         std::to_string(Budget.packCandidates()) +
                         " candidate packs in '" + BB->getName() + "'");
    return;
  }
  Stats.PacksEnumerated += static_cast<unsigned>(Enum.Candidates.size());

  std::string EvalReason;
  const bool EvalComplete =
      evaluateCandidates(BI, Enum.Candidates, EvalReason);
  // Evaluation probe builds roll the function back, which replaces every
  // BasicBlock: the entry-time pointer is dangling from here on, on the
  // budget-bailout path just as much as on the success path.
  BB = F.blocks()[BI].get();
  if (!EvalComplete) {
    FallBackToGreedy("budget", Stats.BudgetBailouts,
                     "resource budget '" + EvalReason +
                         "' exhausted while costing candidate packs in '" +
                         BB->getName() + "'");
    return;
  }

  // The decision trail: one PackEnumerated per candidate (with its
  // evaluated cost), then the solver's verdict per candidate.
  for (size_t I = 0; I < Enum.Candidates.size(); ++I) {
    PackCandidate &C = Enum.Candidates[I];
    C.Group.Stores = resolveStoresAt(*BB, C.Positions);
    RC.add(Remark::analysis("slp-vectorizer", "PackEnumerated", Fn)
               .withDecision("enumerate")
               .withCost(0, C.Cost)
               .withValues(packValueNames(C.Group.Stores))
               .withMessage("candidate #" + std::to_string(I) + ": " +
                            std::to_string(C.Group.getVF()) +
                            "-wide window at offset " +
                            std::to_string(C.Offset) + " of run " +
                            std::to_string(C.RunIndex) + " in '" +
                            BB->getName() + "' (cost " +
                            std::to_string(C.Cost) + ", score " +
                            std::to_string(C.Score) + ")"));
  }

  // Planted fault: the solver dies. Same contract: greedy takes over.
  if (faultPoint("slp.goslp.solve.abort")) {
    FallBackToGreedy("fault", Stats.FaultBailouts,
                     "injected fault 'slp.goslp.solve.abort' fired before "
                     "pack selection in '" +
                         BB->getName() + "'");
    return;
  }

  std::vector<SolverCandidate> SolverInput;
  SolverInput.reserve(Enum.Candidates.size());
  for (const PackCandidate &C : Enum.Candidates) {
    SolverCandidate S;
    S.Cost = C.Cost;
    S.Score = C.Score;
    for (size_t P : C.Positions)
      S.Elements.push_back(static_cast<unsigned>(P));
    SolverInput.push_back(std::move(S));
  }
  PackSelector Selector(std::move(SolverInput), Cfg.CostThreshold,
                        Cfg.Budgets.MaxSolverNodes, Cfg.SolverJobs);
  SolverResult Sel = Selector.solve();
  Stats.SolverNodesExplored += Sel.NodesExplored;
  if (!Sel.Complete) {
    FallBackToGreedy("budget", Stats.BudgetBailouts,
                     "resource budget 'solver-nodes' exhausted after " +
                         std::to_string(Sel.NodesExplored) +
                         " search nodes in '" + BB->getName() + "'");
    return;
  }

  std::vector<char> Selected(Enum.Candidates.size(), 0);
  for (unsigned I : Sel.Selected)
    Selected[I] = 1;
  for (size_t I = 0; I < Enum.Candidates.size(); ++I) {
    const PackCandidate &C = Enum.Candidates[I];
    if (Selected[I])
      RC.add(Remark::passed("slp-vectorizer", "PackSelected", Fn)
                 .withDecision("select")
                 .withCost(0, C.Cost)
                 .withValues(packValueNames(C.Group.Stores))
                 .withMessage("selected candidate #" + std::to_string(I) +
                              " (cost " + std::to_string(C.Cost) +
                              "): part of the cost-minimal conflict-free "
                              "selection"));
    else if (C.Cost < Cfg.CostThreshold)
      RC.add(Remark::missed("slp-vectorizer", "PackRejected", Fn)
                 .withDecision("reject:solver-overlap")
                 .withCost(0, C.Cost)
                 .withValues(packValueNames(C.Group.Stores))
                 .withMessage("candidate #" + std::to_string(I) +
                              " is profitable (cost " +
                              std::to_string(C.Cost) +
                              ") but conflicts with the cost-minimal "
                              "selection"));
    else
      RC.add(Remark::missed("slp-vectorizer", "PackRejected", Fn)
                 .withDecision("reject:solver-cost")
                 .withCost(0, C.Cost)
                 .withValues(packValueNames(C.Group.Stores))
                 .withMessage("candidate #" + std::to_string(I) + " (cost " +
                              std::to_string(C.Cost) +
                              " >= threshold " +
                              std::to_string(Cfg.CostThreshold) +
                              ") can never be part of a profitable "
                              "selection"));
  }

  if (!Enum.Candidates.empty() && Sel.Selected.empty()) {
    // The exhaustive search over a complete candidate set chose the empty
    // selection: scalar code is cost-optimal — provably so under the
    // additive per-candidate cost model (docs/goslp.md §2), which is
    // tight for the empty selection. This is the analysis remark the
    // greedy modes can never emit (they only know the windows they
    // tried).
    ++Stats.SolverProvedScalarOptimal;
    RC.add(Remark::analysis("slp-vectorizer", "SolverVerdict", Fn)
               .withDecision("solver-proves-scalar-optimal")
               .withCost(0, 0)
               .withMessage("exhaustive selection over " +
                            std::to_string(Enum.Candidates.size()) +
                            " candidate pack(s) in '" + BB->getName() +
                            "' proves scalar code cost-optimal (" +
                            std::to_string(Sel.NodesExplored) +
                            " search nodes)"));
  }
  Stats.PacksSelected += static_cast<unsigned>(Sel.Selected.size());

  // Commit the chosen packs through the shared transactional machinery,
  // in enumeration (= address) order. Halving stays off: the solver
  // already chose the widths. A pack whose cost went stale (an earlier
  // commit changed shared subexpressions) fails the ordinary cost
  // re-check and stays scalar.
  std::vector<SeedGroup> Commit;
  Commit.reserve(Sel.Selected.size());
  for (unsigned I : Sel.Selected)
    Commit.push_back(Enum.Candidates[I].Group);
  processStoreGroups(BI, std::move(Commit), /*AllowHalving=*/false);
}

void VectorizerDriver::runReductionPhase(size_t BI) {
  if (!Cfg.EnableReductionSeeds)
    return;
  BasicBlock *BB = F.blocks()[BI].get();
  // Committing one reduction can invalidate the leaves of another, so
  // seeds are re-collected after every commit.
  bool Committed = true;
  // A bailed-out reduction attempt ends the reduction phase for this
  // block: the remaining collected seeds reference rolled-back IR, and
  // a deterministic defect (blown budget) would otherwise re-fire on
  // every re-collection.
  bool RegionAborted = false;
  while (Committed && !RegionAborted) {
    Committed = false;
    std::vector<ReductionSeed> RSeeds = collectReductionSeeds(
        *BB, Cfg.MinVF, Cfg.MaxVF, Cfg.Target.MaxVectorWidthBytes, &RC);
    for (ReductionSeed &Seed : RSeeds) {
      std::optional<IRTransaction> Txn;
      if (Transactional)
        Txn.emplace(F);
      BudgetTracker Budget(Cfg.Budgets);

      auto BailoutReduction = [&](const char *Why, unsigned &Counter,
                                  std::string Detail) {
        rollbackOrDie(*Txn);
        ++Counter;
        BB = F.blocks()[BI].get();
        RegionAborted = true;
        RC.add(Remark::missed("slp-vectorizer", "VectorizeAborted", Fn)
                   .withDecision(std::string("bailout:") + Why)
                   .withMessage(std::move(Detail) +
                                "; region rolled back to scalar form"));
      };

      GraphBuilder GB(Cfg, TCM, &RC);
      if (Cfg.Budgets.anyLimited())
        GB.setBudget(&Budget);
      std::unordered_set<const Instruction *> Ignored(
          Seed.TreeInsts.begin(), Seed.TreeInsts.end());
      std::unique_ptr<SLPGraph> Graph =
          GB.buildFromBundle(Seed.Leaves, Ignored);
      ++Stats.GraphsBuilt;
      Stats.LookAheadCacheHits += GB.getLookAhead().getCacheHits();
      Stats.LookAheadCacheMisses += GB.getLookAhead().getCacheMisses();

      if (Budget.exhausted()) {
        if (Txn) {
          BailoutReduction(
              "budget", Stats.BudgetBailouts,
              "resource budget '" + Budget.reason() +
                  "' exhausted while vectorizing a reduction in '" +
                  BB->getName() + "'");
          break;
        }
      }

      int Total =
          Graph->getTotalCost() +
          TCM.getReductionCost(
              static_cast<unsigned>(Seed.Leaves.size()));
      if (Total >= Cfg.CostThreshold ||
          Graph->getRoot()->getKind() == SLPNodeKind::Gather) {
        bool GatherRoot =
            Graph->getRoot()->getKind() == SLPNodeKind::Gather;
        RC.add(Remark::missed("slp-vectorizer", "ReductionRejected", Fn)
                   .withDecision(GatherRoot ? "reject:gather-root"
                                            : "reject:cost")
                   .withCost(0, Total)
                   .withValues({Seed.Root->getName()})
                   .withMessage(
                       "rejected " +
                       std::to_string(Seed.Leaves.size()) +
                       "-wide reduction of '" + Seed.Root->getName() +
                       "' (cost " + std::to_string(Total) + ")"));
        if (Txn && Cfg.VerifyAfterAttempt && Txn->modified()) {
          std::vector<std::string> VErrors;
          if (!verifyFunction(F, &VErrors)) {
            BailoutReduction(
                "verify", Stats.VerifyBailouts,
                "function failed verification after a cost-rejected "
                "reduction attempt: " +
                    joinErrors(VErrors));
            break;
          }
        }
        continue;
      }

      std::string RootName = Seed.Root->getName();
      VectorCodeGen(*Graph, GB.getScalarMap())
          .runReduction(Seed.Root, Seed.TreeInsts);

      // Planted fault: internal defect in a reduction attempt.
      if (Txn && faultPoint("slp.reduction.abort")) {
        BailoutReduction("fault", Stats.FaultBailouts,
                         "injected fault 'slp.reduction.abort' fired "
                         "after reduction codegen of '" +
                             RootName + "'");
        break;
      }
      if (Txn && Cfg.VerifyAfterAttempt) {
        std::vector<std::string> VErrors;
        if (!verifyFunction(F, &VErrors)) {
          BailoutReduction(
              "verify", Stats.VerifyBailouts,
              "function failed verification after vectorizing the "
              "reduction of '" +
                  RootName + "': " + joinErrors(VErrors));
          break;
        }
      }

      ++Stats.GraphsVectorized;
      RC.add(Remark::passed("slp-vectorizer", "ReductionVectorized", Fn)
                 .withDecision("vectorize")
                 .withCost(0, Total)
                 .withValues({RootName})
                 .withMessage("vectorized " +
                              std::to_string(Seed.Leaves.size()) +
                              "-wide horizontal reduction of '" +
                              RootName + "' (cost " +
                              std::to_string(Total) + ")"));
      Stats.CommittedCost += Total;
      tallyNodeKinds(*Graph, Stats);
      for (unsigned S : Graph->getSuperNodeSizes())
        Stats.CommittedSuperNodeSizes.push_back(S);
      Committed = true;
      break; // Re-collect: other seeds may now be stale.
    }
  }
}

} // namespace

VectorizeStats snslp::runSLPVectorizer(Function &F,
                                       const VectorizerConfig &Cfg) {
  VectorizeStats Stats;
  if (!Cfg.enabled())
    return Stats;

  Timer PassTimer;
  size_t InstsBefore = F.instructionCount();

  Stats = VectorizerDriver(F, Cfg).run();

  runDeadCodeElimination(F);
  size_t InstsAfter = F.instructionCount();
  Stats.InstructionsRemoved =
      InstsBefore > InstsAfter ? InstsBefore - InstsAfter : 0;
  Stats.CompileNanos = PassTimer.elapsedNanos();
  if (Cfg.Stats) {
    Cfg.Stats->add("graphs-built", Stats.GraphsBuilt);
    Cfg.Stats->add("graphs-vectorized", Stats.GraphsVectorized);
    Cfg.Stats->add("lookahead-cache-hits",
                   static_cast<int64_t>(Stats.LookAheadCacheHits));
    Cfg.Stats->add("lookahead-cache-misses",
                   static_cast<int64_t>(Stats.LookAheadCacheMisses));
    Cfg.Stats->add("bailout-budget",
                   static_cast<int64_t>(Stats.BudgetBailouts));
    Cfg.Stats->add("bailout-verify",
                   static_cast<int64_t>(Stats.VerifyBailouts));
    Cfg.Stats->add("bailout-fault",
                   static_cast<int64_t>(Stats.FaultBailouts));
    if (Cfg.useGlobalPackSelection()) {
      Cfg.Stats->add("goslp-packs-enumerated", Stats.PacksEnumerated);
      Cfg.Stats->add("goslp-packs-selected", Stats.PacksSelected);
      Cfg.Stats->add("goslp-solver-nodes",
                     static_cast<int64_t>(Stats.SolverNodesExplored));
      Cfg.Stats->add("goslp-proved-scalar-optimal",
                     Stats.SolverProvedScalarOptimal);
      Cfg.Stats->add("goslp-greedy-fallbacks", Stats.GoSLPGreedyFallbacks);
    }
  }
  return Stats;
}
