//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table I: the kernel suite. The paper lists kernels extracted from the
/// SPEC CPU2006 functions where Super-Node SLP activates; this binary
/// prints our pattern-equivalent suite with provenance and the activation
/// measured on this implementation.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/TextTable.h"

#include <iostream>

using namespace snslp;

int main() {
  std::cout << "=== Table I: benchmark kernels (SPEC-pattern equivalents) "
               "===\n\n";

  KernelRunner Runner;
  TextTable Table;
  Table.setHeader({"kernel", "origin pattern", "type", "VF", "SN-SLP nodes",
                   "nat/byte", "pattern"});

  for (const Kernel &K : kernelRegistry()) {
    if (!K.InTableI)
      continue;
    CompiledKernel SN = Runner.compile(K, VectorizerMode::SNSLP);

    // Native-vs-bytecode wall speedup on the SN-SLP build (5 runs +
    // warm-up each); "byte" marks hosts where the JIT degrades.
    std::string NativeCell = "byte";
    {
      KernelData Data(K.Buffers, K.N, /*Seed=*/5);
      ExecutionResult Probe = Runner.execute(SN, Data, EngineKind::Native);
      if (Probe.Ok && Probe.EngineUsed == EngineKind::Native) {
        SampleStats Nat = measureSeconds(
            [&] { Runner.execute(SN, Data, EngineKind::Native); }, 5);
        SampleStats Byte = measureSeconds(
            [&] { Runner.execute(SN, Data, EngineKind::Bytecode); }, 5);
        if (Nat.Mean > 0.0)
          NativeCell = TextTable::formatDouble(Byte.Mean / Nat.Mean);
      }
    }
    std::string ElemName;
    switch (K.Buffers.front().Elem) {
    case TypeKind::Int32:
      ElemName = "i32";
      break;
    case TypeKind::Int64:
      ElemName = "i64";
      break;
    case TypeKind::Float:
      ElemName = "f32";
      break;
    default:
      ElemName = "f64";
      break;
    }
    Table.addRow({K.Name, K.Origin, ElemName, std::to_string(K.Unroll),
                  std::to_string(SN.Stats.superNodesCommitted()),
                  NativeCell, K.PatternNote});
  }
  Table.print(std::cout);

  std::cout << "\n'SN-SLP nodes' counts the Super-Nodes committed when the\n"
               "kernel is compiled under SN-SLP; kernels with 0 are the\n"
               "control cases where plain SLP suffices or nothing is\n"
               "profitable. 'nat/byte' is the native JIT's wall-time\n"
               "speedup over the bytecode engine on the SN-SLP build\n"
               "('byte' where the JIT is unavailable and runs degrade).\n";
  return 0;
}
