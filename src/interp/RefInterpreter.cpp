//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The original tree-walking interpreter, moved here verbatim when the
// bytecode engine became the default path. This file is the semantic
// oracle: change it only when the *language* changes, never for speed.
//
//===----------------------------------------------------------------------===//

#include "interp/RefInterpreter.h"

#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "support/ErrorHandling.h"

#include <cmath>
#include <cstring>
#include <ostream>
#include <unordered_map>

using namespace snslp;

namespace {

/// Reads one scalar of kind \p Kind from host memory.
uint64_t loadScalar(TypeKind Kind, uint64_t Addr) {
  const void *P = reinterpret_cast<const void *>(Addr);
  switch (Kind) {
  case TypeKind::Int1: {
    uint8_t V;
    std::memcpy(&V, P, sizeof(V));
    return V & 1;
  }
  case TypeKind::Int32: {
    int32_t V;
    std::memcpy(&V, P, sizeof(V));
    return static_cast<uint64_t>(static_cast<int64_t>(V));
  }
  case TypeKind::Int64:
  case TypeKind::Pointer: {
    uint64_t V;
    std::memcpy(&V, P, sizeof(V));
    return V;
  }
  case TypeKind::Float: {
    float V;
    std::memcpy(&V, P, sizeof(V));
    double D = V;
    uint64_t Bits;
    std::memcpy(&Bits, &D, sizeof(Bits));
    return Bits;
  }
  case TypeKind::Double: {
    uint64_t Bits;
    std::memcpy(&Bits, P, sizeof(Bits));
    return Bits;
  }
  case TypeKind::Void:
  case TypeKind::Vector:
    break;
  }
  snslp_unreachable("bad scalar load kind");
}

/// Writes one scalar lane (bit pattern \p Raw of kind \p Kind) to memory.
void storeScalar(TypeKind Kind, uint64_t Addr, uint64_t Raw) {
  void *P = reinterpret_cast<void *>(Addr);
  switch (Kind) {
  case TypeKind::Int1: {
    uint8_t V = static_cast<uint8_t>(Raw & 1);
    std::memcpy(P, &V, sizeof(V));
    return;
  }
  case TypeKind::Int32: {
    int32_t V = static_cast<int32_t>(Raw);
    std::memcpy(P, &V, sizeof(V));
    return;
  }
  case TypeKind::Int64:
  case TypeKind::Pointer:
    std::memcpy(P, &Raw, sizeof(Raw));
    return;
  case TypeKind::Float: {
    double D;
    std::memcpy(&D, &Raw, sizeof(D));
    float V = static_cast<float>(D);
    std::memcpy(P, &V, sizeof(V));
    return;
  }
  case TypeKind::Double:
    std::memcpy(P, &Raw, sizeof(Raw));
    return;
  case TypeKind::Void:
  case TypeKind::Vector:
    break;
  }
  snslp_unreachable("bad scalar store kind");
}

/// Applies one binary opcode to a single lane.
uint64_t applyLane(BinOpcode Op, TypeKind Kind, uint64_t A, uint64_t B) {
  auto AsInt = [](uint64_t X) { return static_cast<int64_t>(X); };
  auto AsFP = [](uint64_t X) {
    double D;
    std::memcpy(&D, &X, sizeof(D));
    return D;
  };
  auto FromInt = [Kind](int64_t X) {
    return static_cast<uint64_t>(RTValue::canonicalizeInt(Kind, X));
  };
  auto FromFP = [Kind](double X) {
    X = RTValue::canonicalizeFP(Kind, X);
    uint64_t Bits;
    std::memcpy(&Bits, &X, sizeof(Bits));
    return Bits;
  };
  // Integer overflow wraps (two's complement); compute in unsigned space.
  switch (Op) {
  case BinOpcode::Add:
    return FromInt(AsInt(A + B));
  case BinOpcode::Sub:
    return FromInt(AsInt(A - B));
  case BinOpcode::Mul:
    return FromInt(AsInt(A * B));
  case BinOpcode::FAdd:
    return FromFP(AsFP(A) + AsFP(B));
  case BinOpcode::FSub:
    return FromFP(AsFP(A) - AsFP(B));
  case BinOpcode::FMul:
    return FromFP(AsFP(A) * AsFP(B));
  case BinOpcode::FDiv:
    return FromFP(AsFP(A) / AsFP(B));
  }
  snslp_unreachable("covered switch");
}

bool applyPredicate(ICmpPredicate Pred, int64_t A, int64_t B) {
  switch (Pred) {
  case ICmpPredicate::EQ:
    return A == B;
  case ICmpPredicate::NE:
    return A != B;
  case ICmpPredicate::SLT:
    return A < B;
  case ICmpPredicate::SLE:
    return A <= B;
  case ICmpPredicate::SGT:
    return A > B;
  case ICmpPredicate::SGE:
    return A >= B;
  case ICmpPredicate::ULT:
    return static_cast<uint64_t>(A) < static_cast<uint64_t>(B);
  case ICmpPredicate::ULE:
    return static_cast<uint64_t>(A) <= static_cast<uint64_t>(B);
  }
  snslp_unreachable("covered switch");
}

/// Materializes a constant operand into an RTValue.
RTValue materializeConstant(const Constant &C) {
  if (const auto *CI = dyn_cast<ConstantInt>(&C))
    return RTValue::makeInt(CI->getType()->getKind(), CI->getValue());
  if (const auto *CF = dyn_cast<ConstantFP>(&C))
    return RTValue::makeFP(CF->getType()->getKind(), CF->getValue());
  const auto &CV = cast<ConstantVector>(C);
  TypeKind EK = CV.getElement(0)->getType()->getKind();
  RTValue R = RTValue::makeVector(EK, CV.getNumLanes());
  for (unsigned I = 0, E = CV.getNumLanes(); I != E; ++I) {
    const Constant *Elem = CV.getElement(I);
    if (const auto *CI = dyn_cast<ConstantInt>(Elem))
      R.Raw[I] = static_cast<uint64_t>(CI->getValue());
    else
      R.setFP(cast<ConstantFP>(Elem)->getValue(), I);
  }
  return R;
}

/// Formats an RTValue for the execution trace.
std::string formatRTValue(const RTValue &V) {
  auto FormatLane = [&V](unsigned L) {
    switch (V.ElemKind) {
    case TypeKind::Float:
    case TypeKind::Double:
      return std::to_string(V.getFP(L));
    case TypeKind::Pointer: {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "0x%llx",
                    static_cast<unsigned long long>(V.getPointer(L)));
      return std::string(Buf);
    }
    default:
      return std::to_string(V.getInt(L));
    }
  };
  if (V.Lanes == 1)
    return FormatLane(0);
  std::string S = "<";
  for (unsigned L = 0; L < V.Lanes; ++L) {
    if (L)
      S += ", ";
    S += FormatLane(L);
  }
  return S + ">";
}

} // namespace

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

RefInterpreter::RefInterpreter(const Function &Fn, const CycleFn &Cycles)
    : F(Fn) {
  // Assign slots: arguments first, then every non-void instruction.
  std::unordered_map<const Value *, int> SlotOf;
  for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
    SlotOf[F.getArg(I)] = static_cast<int>(NumSlots++);
  for (const auto &BB : F.blocks())
    for (const auto &Inst : *BB)
      if (!Inst->getType()->isVoid())
        SlotOf[Inst.get()] = static_cast<int>(NumSlots++);

  std::unordered_map<const BasicBlock *, int> BlockIdx;
  for (const auto &BB : F.blocks()) {
    BlockIdx[BB.get()] = static_cast<int>(Blocks.size());
    Blocks.push_back(CompiledBlock{BB.get(), {}, 0});
  }

  auto MakeOperand = [&SlotOf](const Value *V) {
    Operand Op;
    if (const auto *C = dyn_cast<Constant>(V)) {
      Op.IsConstant = true;
      Op.Const = materializeConstant(*C);
    } else {
      Op.Slot = SlotOf.at(V);
    }
    return Op;
  };

  for (auto &CB : Blocks) {
    unsigned PhiCount = 0;
    for (const auto &Inst : *CB.BB) {
      Step S;
      S.Inst = Inst.get();
      if (!Inst->getType()->isVoid())
        S.ResultSlot = SlotOf.at(Inst.get());
      for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I)
        S.Operands.push_back(MakeOperand(Inst->getOperand(I)));
      if (Cycles)
        S.Cycles = Cycles(*Inst);
      S.TouchesVector = Inst->getType()->isVector();
      for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I)
        S.TouchesVector |= Inst->getOperand(I)->getType()->isVector();
      if (const auto *Br = dyn_cast<BranchInst>(Inst.get())) {
        S.Succ0 = BlockIdx.at(Br->getSuccessor(0));
        if (Br->isConditional())
          S.Succ1 = BlockIdx.at(Br->getSuccessor(1));
      }
      if (isa<PhiNode>(Inst.get()))
        ++PhiCount;
      CB.Steps.push_back(std::move(S));
    }
    CB.FirstNonPhi = PhiCount;
  }
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

ExecutionResult RefInterpreter::run(
    const std::vector<RTValue> &Args, uint64_t MaxSteps, std::ostream *Trace,
    const std::vector<std::pair<uint64_t, uint64_t>> &MemoryRanges) const {
  ExecutionResult Result;
  if (Args.size() != F.getNumArgs()) {
    Result.Error = "argument count mismatch";
    Result.TrapKind = Trap::Other;
    return Result;
  }

  std::vector<RTValue> Slots(NumSlots);
  for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
    Slots[I] = Args[I];

  auto Fetch = [&Slots](const Operand &Op) -> const RTValue & {
    return Op.IsConstant ? Op.Const : Slots[Op.Slot];
  };

  const CompiledBlock *Cur = &Blocks.front();
  const BasicBlock *PrevBB = nullptr;
  uint64_t Steps = 0;
  uint64_t VectorSteps = 0;
  double Cycles = 0.0;
  // Scratch for parallel phi evaluation.
  std::vector<RTValue> PhiScratch;

  while (true) {
    if (Trace)
      *Trace << Cur->BB->getName() << ":\n";
    // Evaluate phis as a parallel copy using values from the edge taken.
    if (Cur->FirstNonPhi > 0) {
      PhiScratch.clear();
      for (unsigned I = 0; I < Cur->FirstNonPhi; ++I) {
        const Step &S = Cur->Steps[I];
        const auto *Phi = cast<PhiNode>(S.Inst);
        int Incoming = -1;
        for (unsigned K = 0, E = Phi->getNumIncoming(); K != E; ++K)
          if (Phi->getIncomingBlock(K) == PrevBB)
            Incoming = static_cast<int>(K);
        if (Incoming < 0) {
          Result.Error = "phi has no incoming value for executed edge";
          Result.TrapKind = Trap::BadPhi;
          return Result;
        }
        PhiScratch.push_back(Fetch(S.Operands[Incoming]));
        Steps += 1;
        VectorSteps += S.TouchesVector ? 1 : 0;
        Cycles += S.Cycles;
      }
      for (unsigned I = 0; I < Cur->FirstNonPhi; ++I)
        Slots[Cur->Steps[I].ResultSlot] = PhiScratch[I];
    }

    for (unsigned SI = Cur->FirstNonPhi,
                  SE = static_cast<unsigned>(Cur->Steps.size());
         SI != SE; ++SI) {
      const Step &S = Cur->Steps[SI];
      const Instruction &Inst = *S.Inst;
      ++Steps;
      VectorSteps += S.TouchesVector ? 1 : 0;
      Cycles += S.Cycles;
      if (Steps > MaxSteps) {
        Result.Error = "execution fuel exhausted (possible infinite loop)";
        Result.TrapKind = Trap::FuelExhausted;
        return Result;
      }

      switch (Inst.getKind()) {
      case ValueKind::BinOp: {
        const auto &BO = cast<BinaryOperator>(Inst);
        const RTValue &A = Fetch(S.Operands[0]);
        const RTValue &B = Fetch(S.Operands[1]);
        RTValue R = A;
        for (unsigned L = 0; L < A.Lanes; ++L)
          R.Raw[L] = applyLane(BO.getOpcode(), A.ElemKind, A.Raw[L], B.Raw[L]);
        Slots[S.ResultSlot] = R;
        break;
      }
      case ValueKind::UnaryOp: {
        const auto &UO = cast<UnaryOperator>(Inst);
        const RTValue &A = Fetch(S.Operands[0]);
        RTValue R = A;
        for (unsigned L = 0; L < A.Lanes; ++L) {
          double D;
          std::memcpy(&D, &A.Raw[L], sizeof(D));
          switch (UO.getOpcode()) {
          case UnaryOpcode::FNeg:
            D = -D;
            break;
          case UnaryOpcode::Sqrt:
            D = std::sqrt(D);
            break;
          case UnaryOpcode::Fabs:
            D = std::fabs(D);
            break;
          }
          D = RTValue::canonicalizeFP(A.ElemKind, D);
          std::memcpy(&R.Raw[L], &D, sizeof(D));
        }
        Slots[S.ResultSlot] = R;
        break;
      }
      case ValueKind::AlternateOp: {
        const auto &AO = cast<AlternateOp>(Inst);
        const RTValue &A = Fetch(S.Operands[0]);
        const RTValue &B = Fetch(S.Operands[1]);
        RTValue R = A;
        for (unsigned L = 0; L < A.Lanes; ++L)
          R.Raw[L] =
              applyLane(AO.getLaneOpcode(L), A.ElemKind, A.Raw[L], B.Raw[L]);
        Slots[S.ResultSlot] = R;
        break;
      }
      case ValueKind::Load: {
        Type *Ty = Inst.getType();
        uint64_t Addr = Fetch(S.Operands[0]).getPointer();
        if (!checkAccess(MemoryRanges, Addr, Ty->getSizeInBytes())) {
          Result.Error = "out-of-bounds load: " + toString(Inst);
          Result.TrapKind = Trap::OutOfBounds;
          return Result;
        }
        if (const auto *VT = dyn_cast<VectorType>(Ty)) {
          TypeKind EK = VT->getElementType()->getKind();
          unsigned EltSize = VT->getElementType()->getSizeInBytes();
          RTValue R = RTValue::makeVector(EK, VT->getNumLanes());
          for (unsigned L = 0; L < VT->getNumLanes(); ++L)
            R.Raw[L] = loadScalar(EK, Addr + static_cast<uint64_t>(L) *
                                                EltSize);
          Slots[S.ResultSlot] = R;
        } else {
          RTValue R;
          R.ElemKind = Ty->getKind();
          R.Raw[0] = loadScalar(Ty->getKind(), Addr);
          Slots[S.ResultSlot] = R;
        }
        break;
      }
      case ValueKind::Store: {
        const RTValue &V = Fetch(S.Operands[0]);
        uint64_t Addr = Fetch(S.Operands[1]).getPointer();
        Type *Ty = cast<StoreInst>(Inst).getValueOperand()->getType();
        if (!checkAccess(MemoryRanges, Addr, Ty->getSizeInBytes())) {
          Result.Error = "out-of-bounds store: " + toString(Inst);
          Result.TrapKind = Trap::OutOfBounds;
          return Result;
        }
        if (const auto *VT = dyn_cast<VectorType>(Ty)) {
          unsigned EltSize = VT->getElementType()->getSizeInBytes();
          for (unsigned L = 0; L < VT->getNumLanes(); ++L)
            storeScalar(V.ElemKind,
                        Addr + static_cast<uint64_t>(L) * EltSize, V.Raw[L]);
        } else {
          storeScalar(V.ElemKind, Addr, V.Raw[0]);
        }
        break;
      }
      case ValueKind::GEP: {
        const auto &GEP = cast<GEPInst>(Inst);
        uint64_t Base = Fetch(S.Operands[0]).getPointer();
        int64_t Index = Fetch(S.Operands[1]).getInt();
        uint64_t Addr =
            Base + static_cast<uint64_t>(
                       Index *
                       static_cast<int64_t>(
                           GEP.getElementType()->getSizeInBytes()));
        RTValue R;
        R.ElemKind = TypeKind::Pointer;
        R.setPointer(Addr);
        Slots[S.ResultSlot] = R;
        break;
      }
      case ValueKind::ICmp: {
        const auto &Cmp = cast<ICmpInst>(Inst);
        bool V = applyPredicate(Cmp.getPredicate(),
                                Fetch(S.Operands[0]).getInt(),
                                Fetch(S.Operands[1]).getInt());
        Slots[S.ResultSlot] = RTValue::makeBool(V);
        break;
      }
      case ValueKind::Select: {
        bool C = Fetch(S.Operands[0]).getInt() != 0;
        Slots[S.ResultSlot] = Fetch(S.Operands[C ? 1 : 2]);
        break;
      }
      case ValueKind::Branch: {
        int NextIdx = S.Succ0;
        if (S.Succ1 >= 0 && Fetch(S.Operands[0]).getInt() == 0)
          NextIdx = S.Succ1;
        PrevBB = Cur->BB;
        Cur = &Blocks[NextIdx];
        goto NextBlock;
      }
      case ValueKind::Ret: {
        Result.Ok = true;
        Result.StepsExecuted = Steps;
        Result.VectorSteps = VectorSteps;
        Result.Cycles = Cycles;
        if (!S.Operands.empty())
          Result.ReturnValue = Fetch(S.Operands[0]);
        return Result;
      }
      case ValueKind::InsertElement: {
        const auto &IE = cast<InsertElementInst>(Inst);
        RTValue R = Fetch(S.Operands[0]);
        R.Raw[IE.getLane()] = Fetch(S.Operands[1]).Raw[0];
        Slots[S.ResultSlot] = R;
        break;
      }
      case ValueKind::ExtractElement: {
        const auto &EE = cast<ExtractElementInst>(Inst);
        const RTValue &V = Fetch(S.Operands[0]);
        RTValue R;
        R.ElemKind = V.ElemKind;
        R.Raw[0] = V.Raw[EE.getLane()];
        Slots[S.ResultSlot] = R;
        break;
      }
      case ValueKind::ShuffleVector: {
        const auto &SV = cast<ShuffleVectorInst>(Inst);
        const RTValue &A = Fetch(S.Operands[0]);
        const RTValue &B = Fetch(S.Operands[1]);
        unsigned InLanes = A.Lanes;
        RTValue R = RTValue::makeVector(
            A.ElemKind, static_cast<unsigned>(SV.getMask().size()));
        for (unsigned L = 0; L < R.Lanes; ++L) {
          int MIdx = SV.getMask()[L];
          R.Raw[L] = MIdx < static_cast<int>(InLanes)
                         ? A.Raw[MIdx]
                         : B.Raw[MIdx - static_cast<int>(InLanes)];
        }
        Slots[S.ResultSlot] = R;
        break;
      }
      case ValueKind::Phi:
        snslp_unreachable("phi outside the phi prefix");
      case ValueKind::Argument:
      case ValueKind::ConstantInt:
      case ValueKind::ConstantFP:
      case ValueKind::ConstantVector:
        snslp_unreachable("non-instruction in step list");
      }
      if (Trace) {
        *Trace << "  [" << Steps << "] " << toString(Inst);
        if (S.ResultSlot >= 0)
          *Trace << "  ; = " << formatRTValue(Slots[S.ResultSlot]);
        *Trace << '\n';
      }
    }
    // A well-formed block ends in a terminator; reaching here means the
    // Branch/Ret cases above always fired.
    snslp_unreachable("fell off the end of a basic block");
  NextBlock:;
  }
}
