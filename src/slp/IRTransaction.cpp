//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "slp/IRTransaction.h"

#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Parser.h"

using namespace snslp;

IRTransaction::IRTransaction(Function &F) : F(F) { refresh(); }

void IRTransaction::refresh() {
  Snapshot = toString(F);
  SnapshotInstCount = F.instructionCount();
}

bool IRTransaction::modified() const {
  // Almost every mutation the vectorizer performs changes the instruction
  // count (re-emission erases + recreates, codegen inserts vector ops and
  // DCE removes scalars), so the count compare usually decides. The text
  // compare catches count-preserving rewrites (operand swaps, renames).
  if (F.instructionCount() != SnapshotInstCount)
    return true;
  return toString(F) != Snapshot;
}

bool IRTransaction::rollback(std::string *Err) {
  // Parse the snapshot into a scratch module sharing F's Context (types
  // and constants are interned there, so the transplanted body references
  // the same type/constant objects F's signature uses).
  Module Scratch(F.getContext(), "irtxn.rollback");
  std::string ParseErr;
  if (!parseIR(Snapshot, Scratch, &ParseErr)) {
    if (Err)
      *Err = "IRTransaction snapshot failed to re-parse (printer/parser "
             "invariant broken): " +
             ParseErr;
    return false;
  }
  Function *Restored = Scratch.getFunction(F.getName());
  if (!Restored) {
    if (Err)
      *Err = "IRTransaction snapshot lost function '" + F.getName() + "'";
    return false;
  }
  F.takeBody(*Restored);
  // Scratch (and the now-empty Restored shell) dies here; the moved blocks
  // are owned by F.
  return true;
}
