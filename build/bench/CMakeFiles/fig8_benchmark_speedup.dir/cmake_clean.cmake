file(REMOVE_RECURSE
  "CMakeFiles/fig8_benchmark_speedup.dir/fig8_benchmark_speedup.cpp.o"
  "CMakeFiles/fig8_benchmark_speedup.dir/fig8_benchmark_speedup.cpp.o.d"
  "fig8_benchmark_speedup"
  "fig8_benchmark_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_benchmark_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
