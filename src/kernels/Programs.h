//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic "whole benchmark" programs for the full-benchmark experiments
/// (Figs. 8-10). The paper measures complete SPEC CPU2006 binaries in which
/// SN-SLP-relevant kernels are a small fraction of runtime; each program
/// here composes kernels with a dominant scalar filler in a similar hot/
/// cold ratio, named after the six C/C++ benchmarks where SN-SLP activates.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_KERNELS_PROGRAMS_H
#define SNSLP_KERNELS_PROGRAMS_H

#include <string>
#include <vector>

namespace snslp {

/// One kernel occurrence inside a program with its dynamic weight (how
/// many times the kernel's loop runs relative to the others).
struct ProgramComponent {
  std::string KernelName;
  double Weight = 1.0;
};

/// A named composition of kernels standing in for one SPEC benchmark.
struct BenchmarkProgram {
  std::string Name;
  std::vector<ProgramComponent> Components;
};

/// The six benchmark programs of the paper's Fig. 8 (Section V-B).
const std::vector<BenchmarkProgram> &programRegistry();

} // namespace snslp

#endif // SNSLP_KERNELS_PROGRAMS_H
