//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KernelRunner: the shared harness that compiles a kernel under one of
/// the paper's vectorizer configurations and executes it in the
/// interpreter. Used by the test suite, every benchmark binary, and the
/// examples.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_DRIVER_KERNELRUNNER_H
#define SNSLP_DRIVER_KERNELRUNNER_H

#include "interp/ExecutionEngine.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "kernels/Kernel.h"
#include "slp/SLPVectorizer.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <unordered_map>

namespace snslp {

/// A kernel compiled under one vectorizer configuration, ready to run.
struct CompiledKernel {
  const Kernel *Spec = nullptr;
  Function *F = nullptr; ///< Owned by the runner's module.
  VectorizerMode Mode = VectorizerMode::O3;
  VectorizeStats Stats;  ///< Vectorizer statistics (node sizes, time, ...).
};

/// Owns the Context/Module that compiled kernels live in.
class KernelRunner {
public:
  KernelRunner() : M(Ctx, "kernels") {}

  /// Parses \p K's IR, runs the \p Mode vectorizer over a private clone,
  /// and verifies the result. Returns a positioned recoverable Error
  /// (parse-error / verify-error) instead of aborting, so tools and the
  /// fuzzer can report and continue. Fault site: `driver.compile.parse`.
  Expected<CompiledKernel> tryCompile(const Kernel &K, VectorizerMode Mode,
                                      VectorizerConfig BaseCfg =
                                          VectorizerConfig());

  /// Fatal-on-error convenience wrapper around tryCompile for callers
  /// whose kernel definitions are library-internal (the benchmark and
  /// example binaries): aborts with the error's diagnostic.
  CompiledKernel compile(const Kernel &K, VectorizerMode Mode,
                         VectorizerConfig BaseCfg = VectorizerConfig());

  /// Executes \p CK over \p Data (buffers in spec order plus the implicit
  /// trailing n argument), with simulated-cycle accounting.
  ExecutionResult execute(const CompiledKernel &CK, KernelData &Data);

  /// Like execute(), but through the engine selected by \p Engine
  /// (bytecode / reference / native). A native request degrades to
  /// bytecode when the JIT is unavailable; the result's EngineUsed field
  /// reports what actually ran.
  ExecutionResult execute(const CompiledKernel &CK, KernelData &Data,
                          EngineKind Engine);

  /// Differential check: runs the kernel's C++ reference and the compiled
  /// IR on identically seeded buffers and compares outputs. Returns true
  /// on a match; otherwise fills \p Message.
  bool check(const CompiledKernel &CK, uint64_t Seed,
             std::string *Message = nullptr);

  Context &getContext() { return Ctx; }
  Module &getModule() { return M; }

private:
  Context Ctx;
  Module M;
  TargetCostModel TCM;
  unsigned CloneCounter = 0;
  /// Engine cache: functions compile to bytecode once per runner; repeated
  /// execute() calls (the benchmark pattern) reuse the compiled form and
  /// its register file. Memory ranges are re-registered per call.
  std::unordered_map<const Function *, std::unique_ptr<ExecutionEngine>>
      Engines;
};

} // namespace snslp

#endif // SNSLP_DRIVER_KERNELRUNNER_H
