//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the seeded fault-injection harness (support/FaultInjection.h):
/// registry mechanics (arm / fire-once / Nth-hit / spec parsing), and the
/// end-to-end contract at every armed site — a planted internal defect must
/// degrade to a bit-identical scalar rollback plus a `bailout:*` remark
/// (vectorizer sites) or a recoverable fault-injected Error (driver site),
/// never an abort and never silently corrupt IR.
///
//===----------------------------------------------------------------------===//

#include "driver/KernelRunner.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "kernels/Kernel.h"
#include "slp/SLPVectorizer.h"
#include "support/Error.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

using namespace snslp;

namespace {

/// Every test starts and ends with a fully disarmed injector: fault state
/// is process-global and must never leak across tests.
class FaultInjectionTest : public ::testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().disarmAll(); }
  void TearDown() override { FaultInjector::instance().disarmAll(); }
};

// ---------------------------------------------------------------------------
// Registry mechanics.
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, UnarmedProbesAreInert) {
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_FALSE(FI.anyArmed());
  EXPECT_FALSE(faultPoint("slp.vectorize.abort"));
  EXPECT_EQ(FI.fireCount("slp.vectorize.abort"), 0u);
}

TEST_F(FaultInjectionTest, ArmedSiteFiresExactlyOnce) {
  FaultInjector &FI = FaultInjector::instance();
  FI.arm("test.site");
  EXPECT_TRUE(FI.anyArmed());
  EXPECT_TRUE(faultPoint("test.site"));
  // One-shot: subsequent hits of the same site never fire again.
  EXPECT_FALSE(faultPoint("test.site"));
  EXPECT_FALSE(faultPoint("test.site"));
  EXPECT_EQ(FI.fireCount("test.site"), 1u);
  // A different site never fires.
  EXPECT_FALSE(faultPoint("test.other"));
}

TEST_F(FaultInjectionTest, NthHitArmingSkipsEarlierHits) {
  FaultInjector &FI = FaultInjector::instance();
  FI.arm("test.nth", /*FireOnNthHit=*/3);
  EXPECT_FALSE(faultPoint("test.nth")); // hit 1
  EXPECT_FALSE(faultPoint("test.nth")); // hit 2
  EXPECT_TRUE(faultPoint("test.nth"));  // hit 3: fires
  EXPECT_FALSE(faultPoint("test.nth")); // spent
  EXPECT_EQ(FI.fireCount("test.nth"), 1u);
}

TEST_F(FaultInjectionTest, DisarmAllResetsCountersAndArming) {
  FaultInjector &FI = FaultInjector::instance();
  FI.arm("test.reset");
  EXPECT_TRUE(faultPoint("test.reset"));
  FI.disarmAll();
  EXPECT_FALSE(FI.anyArmed());
  EXPECT_EQ(FI.fireCount("test.reset"), 0u);
  EXPECT_FALSE(faultPoint("test.reset"));
}

TEST_F(FaultInjectionTest, SpecParsingArmsListedSites) {
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.armFromSpec("test.a,test.b:2"));
  EXPECT_TRUE(faultPoint("test.a"));      // default: first hit
  EXPECT_FALSE(faultPoint("test.b"));     // hit 1 of 2
  EXPECT_TRUE(faultPoint("test.b"));      // hit 2: fires
  EXPECT_EQ(FI.fireCount("test.a"), 1u);
  EXPECT_EQ(FI.fireCount("test.b"), 1u);
}

TEST_F(FaultInjectionTest, MalformedSpecArmsNothing) {
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_FALSE(FI.armFromSpec("test.bad:notanumber"));
  EXPECT_FALSE(FI.anyArmed());
  EXPECT_FALSE(FI.armFromSpec("test.bad:0"));
  EXPECT_FALSE(FI.anyArmed());
  EXPECT_FALSE(FI.armFromSpec(":3"));
  EXPECT_FALSE(FI.anyArmed());
}

TEST_F(FaultInjectionTest, RegistryListsEveryCompiledInSite) {
  const std::vector<std::string> &Sites = knownFaultSites();
  auto Has = [&](const char *Name) {
    return std::find(Sites.begin(), Sites.end(), Name) != Sites.end();
  };
  EXPECT_TRUE(Has("slp.graph.budget"));
  EXPECT_TRUE(Has("slp.codegen.corrupt-ir"));
  EXPECT_TRUE(Has("slp.vectorize.abort"));
  EXPECT_TRUE(Has("slp.reduction.abort"));
  EXPECT_TRUE(Has("slp.goslp.enumerate.abort"));
  EXPECT_TRUE(Has("slp.goslp.solve.abort"));
  EXPECT_TRUE(Has("driver.compile.parse"));
  EXPECT_TRUE(Has("service.queue.overload"));
  EXPECT_TRUE(Has("service.deadline.expire"));
  EXPECT_TRUE(Has("service.store.corrupt"));
  EXPECT_TRUE(Has("service.store.io-error"));
}

// ---------------------------------------------------------------------------
// End-to-end: each vectorizer fault site must degrade to a bit-identical
// scalar rollback (the pre-pass printed form) with the matching bailout
// counter bumped and the matching `bailout:*` remark emitted.
// ---------------------------------------------------------------------------

struct SiteExpectation {
  const char *Site;
  const char *Decision; // Expected remark decision.
  unsigned VectorizeStats::*Counter;
};

class VectorizerFaultSiteTest
    : public FaultInjectionTest,
      public ::testing::WithParamInterface<SiteExpectation> {};

TEST_P(VectorizerFaultSiteTest, StoreRegionRollsBackBitIdentically) {
  const SiteExpectation &E = GetParam();
  const Kernel *K = findKernel("motiv2");
  ASSERT_NE(K, nullptr);
  Context Ctx;
  Module M(Ctx, "fault");
  std::string Err;
  ASSERT_TRUE(parseIR(K->IRText, M, &Err)) << Err;
  Function *F = M.getFunction("motiv2");
  ASSERT_NE(F, nullptr);
  const std::string Scalar = toString(*F);

  FaultInjector::instance().arm(E.Site);
  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SNSLP;
  VectorizeStats Stats = runSLPVectorizer(*F, Cfg);
  EXPECT_EQ(FaultInjector::instance().fireCount(E.Site), 1u) << E.Site;

  // Exactly one bailout of the expected kind, nothing vectorized, and the
  // function reprints exactly as before the pass.
  EXPECT_EQ(Stats.*(E.Counter), 1u) << E.Site;
  EXPECT_EQ(Stats.totalBailouts(), 1u) << E.Site;
  EXPECT_EQ(Stats.GraphsVectorized, 0u) << E.Site;
  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_EQ(toString(*F), Scalar) << E.Site;

  // The decision trail ends in the matching bailout remark.
  ASSERT_FALSE(Stats.Remarks.empty());
  const Remark &Last = Stats.Remarks.back();
  EXPECT_EQ(Last.Name, "VectorizeAborted");
  EXPECT_EQ(Last.Decision, E.Decision);
  EXPECT_EQ(Last.Kind, RemarkKind::Missed);
  EXPECT_NE(Last.Message.find("rolled back to scalar form"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    StoreSites, VectorizerFaultSiteTest,
    ::testing::Values(
        // An injected fault after codegen: bailout:fault.
        SiteExpectation{"slp.vectorize.abort", "bailout:fault",
                        &VectorizeStats::FaultBailouts},
        // A corrupted region (dropped terminator): the post-attempt
        // verifier catches it — bailout:verify.
        SiteExpectation{"slp.codegen.corrupt-ir", "bailout:verify",
                        &VectorizeStats::VerifyBailouts},
        // A force-exhausted budget tracker: bailout:budget.
        SiteExpectation{"slp.graph.budget", "bailout:budget",
                        &VectorizeStats::BudgetBailouts}),
    [](const ::testing::TestParamInfo<SiteExpectation> &Info) {
      std::string Name = Info.param.Site;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

/// The reduction-phase fault site (unreachable from the store-seed path,
/// and statistically unreached by the fuzz sweep's program shapes): a
/// 4-term dot product reaches reduction codegen, the planted fault fires,
/// and the whole function rolls back bit-identically.
TEST_F(FaultInjectionTest, ReductionAbortRollsBackBitIdentically) {
  const char *Dot4 = R"(
func @dot4(ptr %out, ptr %x, ptr %m) {
entry:
  %px0 = gep f64, ptr %x, i64 0
  %x0 = load f64, ptr %px0
  %pm0 = gep f64, ptr %m, i64 0
  %m0 = load f64, ptr %pm0
  %p0 = fmul f64 %x0, %m0
  %px1 = gep f64, ptr %x, i64 1
  %x1 = load f64, ptr %px1
  %pm1 = gep f64, ptr %m, i64 1
  %m1 = load f64, ptr %pm1
  %p1 = fmul f64 %x1, %m1
  %px2 = gep f64, ptr %x, i64 2
  %x2 = load f64, ptr %px2
  %pm2 = gep f64, ptr %m, i64 2
  %m2 = load f64, ptr %pm2
  %p2 = fmul f64 %x2, %m2
  %px3 = gep f64, ptr %x, i64 3
  %x3 = load f64, ptr %px3
  %pm3 = gep f64, ptr %m, i64 3
  %m3 = load f64, ptr %pm3
  %p3 = fmul f64 %x3, %m3
  %s01 = fadd f64 %p0, %p1
  %s012 = fadd f64 %s01, %p2
  %dot = fadd f64 %s012, %p3
  store f64 %dot, ptr %out
  ret void
}
)";
  Context Ctx;
  Module M(Ctx, "fault.red");
  std::string Err;
  ASSERT_TRUE(parseIR(Dot4, M, &Err)) << Err;
  Function *F = M.getFunction("dot4");
  ASSERT_NE(F, nullptr);
  const std::string Scalar = toString(*F);

  FaultInjector::instance().arm("slp.reduction.abort");
  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SNSLP;
  VectorizeStats Stats = runSLPVectorizer(*F, Cfg);
  EXPECT_EQ(FaultInjector::instance().fireCount("slp.reduction.abort"), 1u);

  EXPECT_EQ(Stats.FaultBailouts, 1u);
  EXPECT_EQ(Stats.GraphsVectorized, 0u);
  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_EQ(toString(*F), Scalar);
  ASSERT_FALSE(Stats.Remarks.empty());
  EXPECT_EQ(Stats.Remarks.back().Name, "VectorizeAborted");
  EXPECT_EQ(Stats.Remarks.back().Decision, "bailout:fault");
}

// ---------------------------------------------------------------------------
// The GoSLP sites have a stronger contract than rollback: a dead
// enumerator or solver degrades the block to *greedy* pack selection —
// the kernel still vectorizes, never scalar-only (docs/goslp.md).
// ---------------------------------------------------------------------------

class GoSLPFaultSiteTest
    : public FaultInjectionTest,
      public ::testing::WithParamInterface<const char *> {};

TEST_P(GoSLPFaultSiteTest, DegradesToGreedyAndStillVectorizes) {
  const char *Site = GetParam();
  const Kernel *K = findKernel("motiv2");
  ASSERT_NE(K, nullptr);
  Context Ctx;
  Module M(Ctx, "fault.goslp");
  std::string Err;
  ASSERT_TRUE(parseIR(K->IRText, M, &Err)) << Err;
  Function *F = M.getFunction("motiv2");
  ASSERT_NE(F, nullptr);

  // The sites are probed once per basic block, in block order; firing on
  // the second hit plants the defect in 'loop' — the block with the
  // vectorizable stores — so the greedy fallback has real work to do.
  FaultInjector::instance().arm(Site, /*FireOnNthHit=*/2);
  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::GoSLP;
  VectorizeStats Stats = runSLPVectorizer(*F, Cfg);
  EXPECT_EQ(FaultInjector::instance().fireCount(Site), 1u) << Site;

  EXPECT_EQ(Stats.FaultBailouts, 1u) << Site;
  EXPECT_EQ(Stats.GoSLPGreedyFallbacks, 1u) << Site;
  // Never scalar-only: greedy selection commits the same profitable graph.
  EXPECT_EQ(Stats.GraphsVectorized, 1u) << Site;
  EXPECT_EQ(Stats.CommittedCost, -6) << Site;
  EXPECT_TRUE(verifyFunction(*F));

  // The trail names the fallback and still ends in a commit.
  bool SawFallback = false;
  for (const Remark &R : Stats.Remarks)
    if (R.Name == "VectorizeAborted" && R.Decision == "bailout:fault") {
      SawFallback = true;
      EXPECT_NE(R.Message.find("falling back to greedy pack selection"),
                std::string::npos)
          << R.Message;
      EXPECT_NE(R.Message.find(Site), std::string::npos) << R.Message;
    }
  EXPECT_TRUE(SawFallback) << Site;
  ASSERT_FALSE(Stats.Remarks.empty());
  EXPECT_EQ(Stats.Remarks.back().Name, "GraphVectorized");
}

INSTANTIATE_TEST_SUITE_P(
    GoSLPSites, GoSLPFaultSiteTest,
    ::testing::Values("slp.goslp.enumerate.abort", "slp.goslp.solve.abort"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

/// Sanity contrast: with nothing armed, the same kernel vectorizes with
/// zero bailouts — the probes themselves are inert.
TEST_F(FaultInjectionTest, UnarmedRunHasNoBailouts) {
  const Kernel *K = findKernel("motiv2");
  ASSERT_NE(K, nullptr);
  Context Ctx;
  Module M(Ctx, "clean");
  std::string Err;
  ASSERT_TRUE(parseIR(K->IRText, M, &Err)) << Err;
  Function *F = M.getFunction("motiv2");
  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SNSLP;
  VectorizeStats Stats = runSLPVectorizer(*F, Cfg);
  EXPECT_EQ(Stats.totalBailouts(), 0u);
  EXPECT_EQ(Stats.GraphsVectorized, 1u);
  EXPECT_TRUE(verifyFunction(*F));
}

// ---------------------------------------------------------------------------
// The driver-level site surfaces as a recoverable Error, not an abort.
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, DriverCompileFaultReturnsRecoverableError) {
  const Kernel *K = findKernel("motiv1");
  ASSERT_NE(K, nullptr);
  FaultInjector::instance().arm("driver.compile.parse");

  KernelRunner Runner;
  Expected<CompiledKernel> CK =
      Runner.tryCompile(*K, VectorizerMode::SNSLP);
  ASSERT_FALSE(static_cast<bool>(CK));
  EXPECT_EQ(CK.errorCode(), ErrorCode::FaultInjected);
  EXPECT_NE(CK.errorMessage().find("driver.compile.parse"),
            std::string::npos);
  CK.takeError().consume();

  // The failure is transient (one-shot fault): the very next compile on
  // the same runner succeeds — graceful degradation, not a wedged driver.
  Expected<CompiledKernel> Retry =
      Runner.tryCompile(*K, VectorizerMode::SNSLP);
  ASSERT_TRUE(static_cast<bool>(Retry));
  EXPECT_TRUE(verifyFunction(*Retry.get().F));
}

} // namespace
