//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include "ir/Context.h"
#include "ir/Instruction.h"

#include <algorithm>

using namespace snslp;

Value::~Value() {
  assert(UseList.empty() && "destroying a value that still has uses");
}

void Value::removeUse(Instruction *User, unsigned OperandIndex) {
  auto It = std::find(UseList.begin(), UseList.end(), Use{User, OperandIndex});
  assert(It != UseList.end() && "use not found in use list");
  UseList.erase(It);
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with itself");
  // setOperand mutates our use list; iterate over a snapshot.
  std::vector<Use> Snapshot = UseList;
  for (const Use &U : Snapshot)
    U.User->setOperand(U.OperandIndex, New);
  assert(UseList.empty() && "uses remained after RAUW");
}

ConstantInt *ConstantInt::get(Type *Ty, int64_t V) {
  return Ty->getContext().getConstantInt(Ty, V);
}

ConstantFP *ConstantFP::get(Type *Ty, double V) {
  return Ty->getContext().getConstantFP(Ty, V);
}

ConstantVector *ConstantVector::get(const std::vector<Constant *> &Elems) {
  assert(!Elems.empty() && "empty vector constant");
  return Elems.front()->getType()->getContext().getConstantVector(Elems);
}
