//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-scan register allocation for the native JIT backend.
///
/// The allocator is a prepass over each basic block: for every SSA value
/// whose lowering can both produce its result in a register and feed it to
/// its users from that register, it records the def position, the last
/// in-block register-readable use, and whether the frame slot still has to
/// be written (the write-through bit). Emission then keeps such values
/// register-resident from def to last use, drawing from a small pool of
/// registers the lowering never uses as scratch, and falls back per-value
/// to the frame-slot path when the pool is exhausted — so allocation can
/// only remove memory traffic, never coverage.
///
/// The plan deliberately under-approximates: a use the emitter might not
/// serve from the register cache (multi-chunk ladders, the scalar-call
/// fallback, phi edge copies, anything in another block) forces the
/// write-through bit, keeping the frame slot authoritative wherever any
/// consumer still reads it. The classification helpers that decide which
/// lowering strategy an instruction takes are shared with NativeFunction's
/// emission pass so the two can't drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_JIT_REGALLOC_H
#define SNSLP_JIT_REGALLOC_H

#include "ir/Function.h"
#include "ir/Instruction.h"
#include "jit/CPUFeatures.h"

#include <cstdint>
#include <unordered_map>
#include <utility>

namespace snslp {

/// Which register file a value is planned into. YMM is tracked separately
/// from XMM because a 256-bit resident value is only readable at VEX.256
/// sites — a legacy-SSE consumer cannot see the upper half, so the prepass
/// must treat such uses as frame reads.
enum class RegClass : uint8_t { None, GPR, XMM, YMM };

/// Per-value allocation plan produced by RegAllocPlan::analyze.
struct ValueAllocInfo {
  RegClass Class = RegClass::None;
  uint32_t DefPos = 0;     ///< Instruction index of the def within its block.
  uint32_t LastRegUse = 0; ///< Last in-block register-readable use position.
  /// Whether the def must still store to the frame slot: set when any use
  /// is in another block, feeds a phi, is not register-readable, or sits
  /// after a scalar-call fallback that clobbers the register pool.
  bool NeedsWriteThrough = true;
};

/// The shared element-kind/lanes decomposition used by the JIT's frame
/// layout (vectors split into element kind and lane count, scalars are one
/// lane of themselves).
inline std::pair<TypeKind, unsigned> jitElementOf(const Type *Ty) {
  if (const auto *VT = dyn_cast<VectorType>(Ty))
    return {VT->getElementType()->getKind(), VT->getNumLanes()};
  return {Ty->getKind(), 1};
}

/// Packed in-frame bytes per lane. f32/i32 lanes are native 4-byte lanes
/// (that is what makes addps/paddd applicable); everything else, including
/// i1 (kept canonical 0/1), is an 8-byte cell.
inline unsigned jitLaneBytes(TypeKind Kind) {
  return (Kind == TypeKind::Int32 || Kind == TypeKind::Float) ? 4 : 8;
}

/// Frame-slot bytes for \p Ty after padding to whole 16-byte chunks.
inline uint32_t jitPaddedBytes(const Type *Ty) {
  auto [Kind, Lanes] = jitElementOf(Ty);
  return (Lanes * jitLaneBytes(Kind) + 15u) & ~15u;
}

/// How lowerBinOp materializes one BinaryOperator. Shared between the
/// allocator prepass and emission so eligibility decisions match the code
/// actually emitted.
enum class BinOpShape : uint8_t {
  Fallback,     ///< i1 arithmetic: scalar-call thunk.
  Scalar,       ///< One lane through a GPR or scalar SSE op.
  PerLaneMul,   ///< Integer multiply without a packed form: GP lane loop.
  PackedSingle, ///< Exactly one 16-byte SSE chunk.
  PackedWide,   ///< Exactly one 32-byte VEX.256 chunk.
  PackedChunks, ///< Multi-chunk ladder (frame-resident).
};

BinOpShape classifyBinOpShape(const BinaryOperator &BO, const CPUFeatures &CF);

/// True when lowering routes \p I through the scalar-call fallback thunk
/// (which clobbers every pool register, so live ranges crossing it must
/// write through). Mirrors the emitFallback decisions in lowerBinOp and
/// lowerAlternateOp exactly.
bool jitUsesFallback(const Instruction &I);

/// The per-function allocation plan: one ValueAllocInfo per SSA value whose
/// def is register-eligible. Values absent from the plan take the
/// frame-slot path unconditionally.
class RegAllocPlan {
public:
  RegAllocPlan() = default;

  /// Builds the plan for \p F lowered against \p CF. Safe to call on an
  /// empty plan only once per instance.
  void analyze(const Function &F, const CPUFeatures &CF);

  /// Returns the plan entry for \p V, or nullptr when \p V is not
  /// register-eligible.
  const ValueAllocInfo *lookup(const Value *V) const {
    auto It = Info.find(V);
    return It == Info.end() ? nullptr : &It->second;
  }

  /// Number of defs the plan made register-eligible.
  unsigned eligibleValues() const { return Eligible; }

private:
  std::unordered_map<const Value *, ValueAllocInfo> Info;
  unsigned Eligible = 0;
};

} // namespace snslp

#endif // SNSLP_JIT_REGALLOC_H
