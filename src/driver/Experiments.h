//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared measurement harness for the paper's experiments (one benchmark
/// binary per table/figure builds on these helpers). Follows the paper's
/// methodology: 10 measured runs after one warm-up, mean ± standard
/// deviation; the deterministic simulated-cycle count is the primary
/// metric for speedup *shape* (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_DRIVER_EXPERIMENTS_H
#define SNSLP_DRIVER_EXPERIMENTS_H

#include "driver/KernelRunner.h"
#include "driver/PassManager.h"
#include "kernels/Programs.h"
#include "support/Error.h"
#include "support/Timer.h"

#include <vector>

namespace snslp {

/// Measurements of one kernel under one vectorizer configuration.
struct KernelMeasurement {
  VectorizerMode Mode = VectorizerMode::O3;
  double SimCycles = 0.0;       ///< Simulated cycles of one execution.
  uint64_t DynamicInsts = 0;    ///< Executed IR instructions.
  SampleStats WallSeconds;      ///< 10 runs + warm-up wall time (bytecode).
  SampleStats NativeWallSeconds; ///< Same methodology, native JIT engine.
  bool NativeUsed = false; ///< Native actually ran (not degraded to bytecode).
  SampleStats CompileSeconds;   ///< Pipeline wall time (Fig. 11).
  VectorizeStats Stats;         ///< Vectorizer statistics.
};

/// Compiles and measures \p K under \p Mode. \p Runs is the number of
/// measured executions (after one warm-up). Recoverable form: compile,
/// parse and execution failures come back as positioned Errors
/// (parse-error / verify-error / exec-error) instead of aborting.
Expected<KernelMeasurement> tryMeasureKernel(KernelRunner &Runner,
                                             const Kernel &K,
                                             VectorizerMode Mode,
                                             unsigned Runs = 10);

/// Fatal-on-error wrapper around tryMeasureKernel (the benchmark binaries
/// measure library-internal kernels; a failure there is a build defect).
KernelMeasurement measureKernel(KernelRunner &Runner, const Kernel &K,
                                VectorizerMode Mode, unsigned Runs = 10);

/// Measures the compile-time pipeline (parse + scalar cleanup + vectorize
/// + cleanup + the downstream-pass proxy) for \p K under \p Mode, \p Runs
/// runs + warm-up.
/// Matches Fig. 11's setup: when vectorization removes code, downstream
/// passes process less of it. \p EnableLookAheadMemo toggles the
/// look-ahead score cache (fig11_compile_time's memo A/B series).
SampleStats measureCompileTime(const Kernel &K, VectorizerMode Mode,
                               unsigned Runs = 10,
                               bool EnableLookAheadMemo = true);

/// Runs the instrumented pass pipeline over \p K under \p Mode, \p Runs
/// times after one warm-up, returning one PassRunReport (per-pass wall
/// time, cycles and change counts) per measured run. Aggregate with
/// renderTimeReport for a Fig. 11 per-pass breakdown — which pipeline
/// stage the compile time actually goes to. See docs/observability.md.
std::vector<PassRunReport> measurePerPassTimes(const Kernel &K,
                                               VectorizerMode Mode,
                                               unsigned Runs = 10);

/// Aggregate results of one whole-benchmark program (Figs. 8-10).
struct ProgramMeasurement {
  VectorizerMode Mode = VectorizerMode::O3;
  double SimCycles = 0.0; ///< Weighted sum over component kernels.
  VectorizeStats Stats;   ///< Merged vectorizer stats (node sizes).
};

/// Measures \p P (every component kernel compiled under \p Mode; cycles
/// weighted by the component's dynamic weight). Recoverable form: an
/// unknown component kernel or a failing compile/run is returned as a
/// positioned Error.
Expected<ProgramMeasurement> tryMeasureProgram(KernelRunner &Runner,
                                               const BenchmarkProgram &P,
                                               VectorizerMode Mode);

/// Fatal-on-error wrapper around tryMeasureProgram.
ProgramMeasurement measureProgram(KernelRunner &Runner,
                                  const BenchmarkProgram &P,
                                  VectorizerMode Mode);

/// Speedup helper: baseline / value (both must be positive).
double speedup(double BaselineCycles, double Cycles);

} // namespace snslp

#endif // SNSLP_DRIVER_EXPERIMENTS_H
