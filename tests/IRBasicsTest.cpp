//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the IR substrate: types, constants, values, use lists,
/// instruction manipulation, and function cloning.
///
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/DCE.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace snslp;

namespace {

class IRBasicsTest : public ::testing::Test {
protected:
  Context Ctx;
  Module M{Ctx, "test"};
};

TEST_F(IRBasicsTest, TypeInterning) {
  EXPECT_EQ(Ctx.getInt64Ty(), Ctx.getInt64Ty());
  EXPECT_NE(Ctx.getInt64Ty(), Ctx.getInt32Ty());
  VectorType *V2 = Ctx.getVectorType(Ctx.getDoubleTy(), 2);
  EXPECT_EQ(V2, Ctx.getVectorType(Ctx.getDoubleTy(), 2));
  EXPECT_NE(V2, Ctx.getVectorType(Ctx.getDoubleTy(), 4));
  EXPECT_NE(V2, Ctx.getVectorType(Ctx.getFloatTy(), 2));
  EXPECT_EQ(V2->getElementType(), Ctx.getDoubleTy());
  EXPECT_EQ(V2->getNumLanes(), 2u);
}

TEST_F(IRBasicsTest, TypeSizes) {
  EXPECT_EQ(Ctx.getInt64Ty()->getSizeInBytes(), 8u);
  EXPECT_EQ(Ctx.getInt32Ty()->getSizeInBytes(), 4u);
  EXPECT_EQ(Ctx.getFloatTy()->getSizeInBytes(), 4u);
  EXPECT_EQ(Ctx.getDoubleTy()->getSizeInBytes(), 8u);
  EXPECT_EQ(Ctx.getPtrTy()->getSizeInBytes(), 8u);
  EXPECT_EQ(Ctx.getVectorType(Ctx.getDoubleTy(), 4)->getSizeInBytes(), 32u);
}

TEST_F(IRBasicsTest, TypeNames) {
  EXPECT_EQ(Ctx.getInt64Ty()->getName(), "i64");
  EXPECT_EQ(Ctx.getDoubleTy()->getName(), "f64");
  EXPECT_EQ(Ctx.getPtrTy()->getName(), "ptr");
  EXPECT_EQ(Ctx.getVectorType(Ctx.getFloatTy(), 4)->getName(), "<4 x f32>");
}

TEST_F(IRBasicsTest, ConstantInterning) {
  EXPECT_EQ(ConstantInt::get(Ctx.getInt64Ty(), 42),
            ConstantInt::get(Ctx.getInt64Ty(), 42));
  EXPECT_NE(ConstantInt::get(Ctx.getInt64Ty(), 42),
            ConstantInt::get(Ctx.getInt64Ty(), 43));
  EXPECT_NE(ConstantInt::get(Ctx.getInt64Ty(), 42),
            ConstantInt::get(Ctx.getInt32Ty(), 42));
  EXPECT_EQ(ConstantFP::get(Ctx.getDoubleTy(), 2.5),
            ConstantFP::get(Ctx.getDoubleTy(), 2.5));
  // f32 constants are rounded to float precision before interning.
  EXPECT_EQ(ConstantFP::get(Ctx.getFloatTy(), 0.1),
            ConstantFP::get(Ctx.getFloatTy(), static_cast<float>(0.1)));
}

TEST_F(IRBasicsTest, ConstantVectorInterning) {
  std::vector<Constant *> Elems = {ConstantFP::get(Ctx.getDoubleTy(), 1.0),
                                   ConstantFP::get(Ctx.getDoubleTy(), 2.0)};
  ConstantVector *CV = ConstantVector::get(Elems);
  EXPECT_EQ(CV, ConstantVector::get(Elems));
  EXPECT_EQ(CV->getNumLanes(), 2u);
  EXPECT_EQ(CV->getType(), Ctx.getVectorType(Ctx.getDoubleTy(), 2));
}

/// Builds: fn(a, b) { entry: t = a + b; store t -> P; ret }
Function *buildSimpleFunction(Module &M, Context &Ctx) {
  Function *F = M.createFunction(
      "simple", Ctx.getVoidTy(),
      {{Ctx.getInt64Ty(), "a"}, {Ctx.getInt64Ty(), "b"},
       {Ctx.getPtrTy(), "p"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  Value *Sum = B.createAdd(F->getArg(0), F->getArg(1), "sum");
  B.createStore(Sum, F->getArg(2));
  B.createRet();
  return F;
}

TEST_F(IRBasicsTest, UseListsTrackOperands) {
  Function *F = buildSimpleFunction(M, Ctx);
  Argument *A = F->getArg(0);
  Argument *B = F->getArg(1);
  EXPECT_EQ(A->getNumUses(), 1u);
  EXPECT_EQ(B->getNumUses(), 1u);

  auto &Entry = F->getEntryBlock();
  auto It = Entry.begin();
  auto *Add = cast<BinaryOperator>(It->get());
  EXPECT_TRUE(Add->hasOneUse());
  EXPECT_EQ(Add->getLHS(), A);
  EXPECT_EQ(Add->getRHS(), B);

  // Swapping operands keeps use lists consistent.
  Add->swapOperands();
  EXPECT_EQ(Add->getLHS(), B);
  EXPECT_EQ(Add->getRHS(), A);
  EXPECT_EQ(A->getNumUses(), 1u);
  EXPECT_TRUE(verifyFunction(*F));
}

TEST_F(IRBasicsTest, ReplaceAllUsesWith) {
  Function *F = buildSimpleFunction(M, Ctx);
  auto &Entry = F->getEntryBlock();
  auto *Add = cast<BinaryOperator>(Entry.begin()->get());
  Value *C = ConstantInt::get(Ctx.getInt64Ty(), 7);
  Add->replaceAllUsesWith(C);
  EXPECT_FALSE(Add->hasUses());
  auto It = Entry.begin();
  ++It;
  auto *Store = cast<StoreInst>(It->get());
  EXPECT_EQ(Store->getValueOperand(), C);
}

TEST_F(IRBasicsTest, EraseFromParent) {
  Function *F = buildSimpleFunction(M, Ctx);
  auto &Entry = F->getEntryBlock();
  auto *Add = cast<BinaryOperator>(Entry.begin()->get());
  Add->replaceAllUsesWith(ConstantInt::get(Ctx.getInt64Ty(), 0));
  EXPECT_EQ(Entry.size(), 3u);
  Add->eraseFromParent();
  EXPECT_EQ(Entry.size(), 2u);
  EXPECT_TRUE(verifyFunction(*F));
}

TEST_F(IRBasicsTest, ComesBefore) {
  Function *F = buildSimpleFunction(M, Ctx);
  auto &Entry = F->getEntryBlock();
  auto It = Entry.begin();
  Instruction *Add = It->get();
  ++It;
  Instruction *Store = It->get();
  EXPECT_TRUE(Add->comesBefore(Store));
  EXPECT_FALSE(Store->comesBefore(Add));
  EXPECT_FALSE(Add->comesBefore(Add));
}

TEST_F(IRBasicsTest, MoveBefore) {
  Function *F = buildSimpleFunction(M, Ctx);
  auto &Entry = F->getEntryBlock();
  auto It = Entry.begin();
  Instruction *Add = It->get();
  ++It;
  Instruction *Store = It->get();
  ++It;
  Instruction *Ret = It->get();
  // Moving the store before the ret is a no-op order-wise; move add
  // directly before the store (also a no-op) and confirm order is stable.
  Add->moveBefore(Store);
  EXPECT_TRUE(Add->comesBefore(Store));
  EXPECT_TRUE(Store->comesBefore(Ret));
  EXPECT_TRUE(verifyFunction(*F));
}

TEST_F(IRBasicsTest, DCERemovesDeadChain) {
  Function *F = M.createFunction("dead", Ctx.getVoidTy(),
                                 {{Ctx.getInt64Ty(), "a"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  Value *X = B.createAdd(F->getArg(0), B.getInt64(1), "x");
  Value *Y = B.createMul(X, B.getInt64(2), "y");
  (void)Y;
  B.createRet();
  EXPECT_EQ(F->instructionCount(), 3u);
  size_t Removed = runDeadCodeElimination(*F);
  EXPECT_EQ(Removed, 2u);
  EXPECT_EQ(F->instructionCount(), 1u);
  EXPECT_TRUE(verifyFunction(*F));
}

TEST_F(IRBasicsTest, DCEKeepsStoresAndUsedValues) {
  Function *F = buildSimpleFunction(M, Ctx);
  EXPECT_EQ(runDeadCodeElimination(*F), 0u);
  EXPECT_EQ(F->instructionCount(), 3u);
}

TEST_F(IRBasicsTest, CloneProducesIsomorphicFunction) {
  Function *F = buildSimpleFunction(M, Ctx);
  Function *Clone = F->cloneInto(M, "simple.clone");
  ASSERT_NE(Clone, nullptr);
  EXPECT_TRUE(verifyFunction(*Clone));
  EXPECT_EQ(Clone->instructionCount(), F->instructionCount());
  // The clone must not share instructions with the original.
  EXPECT_NE(Clone->getEntryBlock().begin()->get(),
            F->getEntryBlock().begin()->get());
  // Arguments map positionally.
  auto *CloneAdd = cast<BinaryOperator>(Clone->getEntryBlock().begin()->get());
  EXPECT_EQ(CloneAdd->getLHS(), Clone->getArg(0));
}

TEST_F(IRBasicsTest, CloneLoopWithPhi) {
  // for (i = 0; i < n; ++i) {}
  Function *F = M.createFunction("loop", Ctx.getVoidTy(),
                                 {{Ctx.getInt64Ty(), "n"}});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(Entry);
  B.createBr(Loop);
  B.setInsertPointAtEnd(Loop);
  PhiNode *I = B.createPhi(Ctx.getInt64Ty(), "i");
  Value *Next = B.createAdd(I, B.getInt64(1), "i.next");
  Value *Cmp = B.createICmp(ICmpPredicate::ULT, Next, F->getArg(0), "cmp");
  B.createCondBr(Cmp, Loop, Exit);
  I->addIncoming(B.getInt64(0), Entry);
  I->addIncoming(Next, Loop);
  B.setInsertPointAtEnd(Exit);
  B.createRet();
  ASSERT_TRUE(verifyFunction(*F));

  Function *Clone = F->cloneInto(M, "loop.clone");
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyFunction(*Clone, &Errors))
      << (Errors.empty() ? "" : Errors.front());
  // The cloned phi must reference the cloned blocks and values.
  auto *ClonePhi = cast<PhiNode>(
      Clone->getBlockByName("loop")->begin()->get());
  EXPECT_EQ(ClonePhi->getNumIncoming(), 2u);
  EXPECT_EQ(ClonePhi->getIncomingBlock(0), Clone->getBlockByName("entry"));
  EXPECT_EQ(ClonePhi->getIncomingBlock(1), Clone->getBlockByName("loop"));
}

TEST_F(IRBasicsTest, VerifierCatchesMissingTerminator) {
  Function *F = M.createFunction("bad", Ctx.getVoidTy(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  B.createAdd(B.getInt64(1), B.getInt64(2), "x");
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  EXPECT_FALSE(Errors.empty());
}

TEST_F(IRBasicsTest, VerifierCatchesUseBeforeDef) {
  Function *F = M.createFunction("ubd", Ctx.getVoidTy(),
                                 {{Ctx.getPtrTy(), "p"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  Value *L = B.createLoad(Ctx.getInt64Ty(), F->getArg(0), "l");
  Value *X = B.createAdd(L, B.getInt64(1), "x");
  B.createStore(X, F->getArg(0));
  B.createRet();
  ASSERT_TRUE(verifyFunction(*F));
  // Move the add before the load: now it uses %l before its definition.
  cast<Instruction>(X)->moveBefore(cast<Instruction>(L));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
}

TEST_F(IRBasicsTest, OpcodeFamilyHelpers) {
  EXPECT_EQ(getOpFamily(BinOpcode::Add), OpFamily::IntAddSub);
  EXPECT_EQ(getOpFamily(BinOpcode::Sub), OpFamily::IntAddSub);
  EXPECT_EQ(getOpFamily(BinOpcode::FAdd), OpFamily::FPAddSub);
  EXPECT_EQ(getOpFamily(BinOpcode::FSub), OpFamily::FPAddSub);
  EXPECT_EQ(getOpFamily(BinOpcode::FMul), OpFamily::FPMulDiv);
  EXPECT_EQ(getOpFamily(BinOpcode::FDiv), OpFamily::FPMulDiv);
  EXPECT_EQ(getOpFamily(BinOpcode::Mul), OpFamily::None);

  EXPECT_EQ(getDirectOpcode(OpFamily::FPAddSub), BinOpcode::FAdd);
  EXPECT_EQ(getInverseOpcode(OpFamily::FPAddSub), BinOpcode::FSub);
  EXPECT_TRUE(isCommutative(BinOpcode::FMul));
  EXPECT_FALSE(isCommutative(BinOpcode::FDiv));
  EXPECT_TRUE(isInverseOpcode(BinOpcode::Sub));
  EXPECT_FALSE(isInverseOpcode(BinOpcode::Add));
}

TEST_F(IRBasicsTest, PredecessorsAndSuccessors) {
  Function *F = M.createFunction("cfg", Ctx.getVoidTy(),
                                 {{Ctx.getInt1Ty(), "c"}});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(Entry);
  B.createCondBr(F->getArg(0), Then, Exit);
  B.setInsertPointAtEnd(Then);
  B.createBr(Exit);
  B.setInsertPointAtEnd(Exit);
  B.createRet();

  EXPECT_EQ(Entry->successors().size(), 2u);
  EXPECT_EQ(Exit->successors().size(), 0u);
  EXPECT_EQ(Exit->predecessors().size(), 2u);
  EXPECT_TRUE(Entry->predecessors().empty());
  EXPECT_TRUE(verifyFunction(*F));
}

} // namespace
