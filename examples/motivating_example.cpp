//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the paper's Fig. 3 example programmatically with IRBuilder (no
/// textual IR), then walks the three vectorizer configurations, printing
/// each one's SLP graph and cost — a worked tour of the graph-construction
/// API.
///
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "slp/GraphBuilder.h"
#include "slp/SLPVectorizer.h"

#include <iostream>

using namespace snslp;

/// Builds (in a single straight-line block, like the paper's figures):
///   A[0] = B[0] - C[0] + D[0];
///   A[1] = B[1] + D[1] - C[1];
static Function *buildFig3(Module &M) {
  Context &Ctx = M.getContext();
  Function *F = M.createFunction(
      "fig3", Ctx.getVoidTy(),
      {{Ctx.getPtrTy(), "A"}, {Ctx.getPtrTy(), "B"}, {Ctx.getPtrTy(), "C"},
       {Ctx.getPtrTy(), "D"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  Type *I64 = Ctx.getInt64Ty();

  auto LoadAt = [&B, I64](Value *Base, int64_t Index,
                          const std::string &Name) {
    Value *Ptr = B.createGEP(I64, Base, B.getInt64(Index), "p" + Name);
    return B.createLoad(I64, Ptr, Name);
  };

  // Lane 0: A[0] = (B[0] - C[0]) + D[0]
  Value *B0 = LoadAt(F->getArg(1), 0, "b0");
  Value *C0 = LoadAt(F->getArg(2), 0, "c0");
  Value *D0 = LoadAt(F->getArg(3), 0, "d0");
  Value *T0 = B.createAdd(B.createSub(B0, C0, "s0"), D0, "t0");
  B.createStore(T0, B.createGEP(I64, F->getArg(0), B.getInt64(0), "pa0"));

  // Lane 1: A[1] = (B[1] + D[1]) - C[1]
  Value *B1 = LoadAt(F->getArg(1), 1, "b1");
  Value *D1 = LoadAt(F->getArg(3), 1, "d1");
  Value *C1 = LoadAt(F->getArg(2), 1, "c1");
  Value *T1 = B.createSub(B.createAdd(B1, D1, "s1"), C1, "t1");
  B.createStore(T1, B.createGEP(I64, F->getArg(0), B.getInt64(1), "pa1"));

  B.createRet();
  return F;
}

int main() {
  Context Ctx;
  Module M(Ctx, "motivating");

  std::cout << "=== Paper Fig. 3, built with IRBuilder ===\n\n";

  for (VectorizerMode Mode : {VectorizerMode::SLP, VectorizerMode::LSLP,
                              VectorizerMode::SNSLP}) {
    // Fresh copy per configuration: graph construction in LSLP/SN-SLP
    // modes massages the scalar code.
    Function *F = buildFig3(M);
    if (!verifyFunction(*F)) {
      std::cerr << "built function failed verification\n";
      return 1;
    }

    VectorizerConfig Cfg;
    Cfg.Mode = Mode;
    TargetCostModel TCM(Cfg.Target);

    std::vector<SeedGroup> Seeds = collectStoreSeeds(
        F->getEntryBlock(), Cfg.MinVF, Cfg.MaxVF,
        Cfg.Target.MaxVectorWidthBytes);
    if (Seeds.size() != 1) {
      std::cerr << "expected one seed group\n";
      return 1;
    }

    GraphBuilder GB(Cfg, TCM);
    std::unique_ptr<SLPGraph> Graph = GB.build(Seeds.front());

    std::cout << "--- " << getModeName(Mode) << " ---\n";
    Graph->print(std::cout);
    std::cout << "total cost " << Graph->getTotalCost()
              << (Graph->getTotalCost() < 0 ? "  -> vectorize\n\n"
                                            : "  -> keep scalar\n\n");
    M.eraseFunction(F->getName());
  }

  std::cout << "Expected costs (paper): SLP/LSLP +4, SN-SLP -6.\n";
  return 0;
}
