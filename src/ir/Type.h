//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR type system: scalar types (integers, floats, pointer) and vector
/// types. Types are interned: there is exactly one object per distinct type
/// within a Context, so pointer equality is type equality.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_IR_TYPE_H
#define SNSLP_IR_TYPE_H

#include "support/Casting.h"

#include <cstdint>
#include <string>

namespace snslp {

class Context;

/// Discriminator for the Type hierarchy.
enum class TypeKind : uint8_t {
  Void,
  Int1,
  Int32,
  Int64,
  Float,
  Double,
  Pointer, // Opaque pointer; loads/GEPs carry the pointee element type.
  Vector,
};

/// Base class for all IR types. Scalar types are singletons owned by the
/// Context; VectorType instances are interned per (element, lanes).
class Type {
public:
  TypeKind getKind() const { return Kind; }
  Context &getContext() const { return *Ctx; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInteger() const {
    return Kind == TypeKind::Int1 || Kind == TypeKind::Int32 ||
           Kind == TypeKind::Int64;
  }
  bool isFloatingPoint() const {
    return Kind == TypeKind::Float || Kind == TypeKind::Double;
  }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isVector() const { return Kind == TypeKind::Vector; }

  /// Returns the element type for vectors, or this type for scalars.
  Type *getScalarType();
  const Type *getScalarType() const {
    return const_cast<Type *>(this)->getScalarType();
  }

  /// Returns the in-memory size of this type in bytes. Vectors are
  /// lanes * element size; i1 occupies one byte.
  unsigned getSizeInBytes() const;

  /// Returns the textual spelling used by the printer/parser, e.g. "i64",
  /// "f32", "ptr", "<4 x f64>".
  std::string getName() const;

  virtual ~Type() = default;

protected:
  Type(TypeKind Kind, Context *Ctx) : Kind(Kind), Ctx(Ctx) {}

private:
  TypeKind Kind;
  Context *Ctx;
};

/// A fixed-width SIMD vector of a scalar element type.
class VectorType : public Type {
public:
  Type *getElementType() const { return ElemTy; }
  unsigned getNumLanes() const { return NumLanes; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Vector;
  }

private:
  friend class Context;
  VectorType(Type *ElemTy, unsigned NumLanes, Context *Ctx)
      : Type(TypeKind::Vector, Ctx), ElemTy(ElemTy), NumLanes(NumLanes) {}

  Type *ElemTy;
  unsigned NumLanes;
};

} // namespace snslp

#endif // SNSLP_IR_TYPE_H
