//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small instrumented function-pass manager, in the spirit of LLVM's
/// `-ftime-report` / `-verify-each` / `-print-after-all` machinery. Passes
/// are name + callable pairs; every run records per-pass wall time, CPU
/// cycles and the pass-reported change count. Optional instrumentation:
///
///  - VerifyEach: run the IR verifier after every pass; the first pass
///    whose output fails verification is pinpointed by name and the run
///    stops there (the remaining passes never see the corrupt IR).
///  - PrintAfterAll: snapshot the textual IR after every pass.
///  - Remarks: a RemarkCollector sink receiving one PassExecuted remark
///    per pass (and a VerifyFailed remark when VerifyEach trips).
///
/// runPassPipeline (PassPipeline.h) builds the standard cleanup ->
/// vectorizer -> cleanup pipeline on top of this; irtool exposes the
/// instrumentation as --time-passes / --verify-each / --print-after-all.
/// See docs/observability.md.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_DRIVER_PASSMANAGER_H
#define SNSLP_DRIVER_PASSMANAGER_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace snslp {

class Function;
class RemarkCollector;

/// Instrumentation switches for one PassManager.
struct PassManagerOptions {
  /// Run verifyFunction after every pass; stop at the first failure.
  bool VerifyEach = false;
  /// With VerifyEach: instead of stopping at the first pass that corrupts
  /// the IR, roll the function back to the last verified-good snapshot
  /// (IRTransaction) and keep running the remaining passes over the
  /// restored IR. The offending execution is flagged RolledBack and
  /// counted in PassRunReport::RecoveredPasses; the run as a whole is not
  /// marked VerifyFailed. See docs/robustness.md.
  bool RecoverOnVerifyFail = false;
  /// Capture the textual IR after every pass (PassExecution::IRAfter).
  bool PrintAfterAll = false;
  /// Optional sink for PassExecuted / VerifyFailed remarks.
  RemarkCollector *Remarks = nullptr;
};

/// The record of one pass execution over one function.
struct PassExecution {
  std::string PassName;
  uint64_t WallNanos = 0; ///< Wall time spent inside the pass.
  uint64_t Cycles = 0;    ///< readCycleCounter delta across the pass.
  size_t Changes = 0;     ///< The pass's own change count (0 = no-op).
  bool VerifiedOK = true; ///< Post-pass verifier verdict (VerifyEach).
  /// The pass corrupted the IR and the function was restored to the last
  /// verified-good snapshot (RecoverOnVerifyFail).
  bool RolledBack = false;
  std::string IRAfter;    ///< Post-pass IR snapshot (PrintAfterAll).
};

/// The result of one PassManager::run over one function.
struct PassRunReport {
  std::string FunctionName;
  std::vector<PassExecution> Passes;
  /// \name VerifyEach outcome.
  /// @{
  /// A pass corrupted the IR and the run stopped there (not set when
  /// RecoverOnVerifyFail restored the IR and continued).
  bool VerifyFailed = false;
  /// Name of the first pass whose output failed verification (set in both
  /// the stop and the recover case).
  std::string FirstInvalidPass;
  std::vector<std::string> VerifyErrors;
  /// Passes whose corrupt output was rolled back (RecoverOnVerifyFail).
  unsigned RecoveredPasses = 0;
  /// @}

  uint64_t totalWallNanos() const {
    uint64_t Total = 0;
    for (const PassExecution &P : Passes)
      Total += P.WallNanos;
    return Total;
  }
};

/// Renders an LLVM `-ftime-report`-style table aggregating \p Reports by
/// pass name (first-seen order): wall seconds, share of total, cycles and
/// change counts, plus a Total row.
std::string renderTimeReport(const std::vector<PassRunReport> &Reports);

/// An ordered list of named function passes with per-pass instrumentation.
class PassManager {
public:
  /// A pass: transforms \p F in place and returns its change count.
  using PassFn = std::function<size_t(Function &F)>;

  explicit PassManager(PassManagerOptions Opts = PassManagerOptions())
      : Opts(Opts) {}

  /// Appends a pass. Names need not be unique (the standard pipeline runs
  /// cleanup passes twice); reports keep one entry per execution.
  void addPass(std::string Name, PassFn Fn) {
    Passes.push_back({std::move(Name), std::move(Fn)});
  }

  size_t getNumPasses() const { return Passes.size(); }

  /// Runs every pass over \p F in order, recording instrumentation.
  /// With VerifyEach, stops after the first pass that corrupts the IR
  /// (its PassExecution has VerifiedOK == false and the report carries
  /// FirstInvalidPass + the verifier messages).
  PassRunReport run(Function &F) const;

private:
  struct NamedPass {
    std::string Name;
    PassFn Fn;
  };

  PassManagerOptions Opts;
  std::vector<NamedPass> Passes;
};

} // namespace snslp

#endif // SNSLP_DRIVER_PASSMANAGER_H
