file(REMOVE_RECURSE
  "CMakeFiles/scaling_problem_size.dir/scaling_problem_size.cpp.o"
  "CMakeFiles/scaling_problem_size.dir/scaling_problem_size.cpp.o.d"
  "scaling_problem_size"
  "scaling_problem_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_problem_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
