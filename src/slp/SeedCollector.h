//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed collection (step 1 of the SLP algorithm, Fig. 1 of the paper):
/// finds groups of stores to adjacent memory locations inside one basic
/// block. Adjacent stores are the most promising seeds and the ones the
/// paper's evaluation exercises.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SLP_SEEDCOLLECTOR_H
#define SNSLP_SLP_SEEDCOLLECTOR_H

#include "ir/Instruction.h"

#include <vector>

namespace snslp {

class BasicBlock;
class RemarkCollector;
class StoreInst;

/// One seed: stores to consecutive addresses, lowest address first. The
/// group size is a power of two in [MinVF, MaxVF].
struct SeedGroup {
  std::vector<StoreInst *> Stores;
  unsigned getVF() const { return static_cast<unsigned>(Stores.size()); }
};

/// A maximal run of same-type stores to consecutive addresses (stride ==
/// element size), lowest address first. Both seed-collection strategies
/// consume these: collectStoreSeeds slices them greedily into the largest
/// power-of-two groups, GoSLP's PackEnumerator windows over them
/// exhaustively (docs/goslp.md).
struct StoreRun {
  std::vector<StoreInst *> Stores;
};

/// Scans \p BB for maximal runs of adjacent same-type stores (the raw
/// material of both the greedy and the GoSLP seed strategies). Deterministic
/// order: runs are grouped by (element type, base pointer) bucket and sorted
/// by address within each bucket. When \p RC is non-null the per-store
/// disqualifications are reported (SeedRejected with
/// "reject:type-mismatch" | "reject:unanalyzable-address").
std::vector<StoreRun> collectAdjacentStoreRuns(BasicBlock &BB,
                                               RemarkCollector *RC = nullptr);

/// Scans \p BB for seed groups of adjacent stores of the same element type.
///
/// Longer runs of consecutive stores are sliced into the largest power-of-
/// two groups that fit, bounded by \p MaxVF and by how many elements fit in
/// a \p MaxVecWidthBytes register; each store belongs to at most one
/// returned group.
///
/// When \p RC is non-null, one structured remark is emitted per decision:
/// SeedAccepted (analysis) for each formed group, SeedRejected (missed)
/// with decision "reject:type-mismatch" | "reject:unanalyzable-address" |
/// "reject:alias" | "reject:non-adjacent" otherwise.
std::vector<SeedGroup> collectStoreSeeds(BasicBlock &BB, unsigned MinVF,
                                         unsigned MaxVF,
                                         unsigned MaxVecWidthBytes = 32,
                                         RemarkCollector *RC = nullptr);

/// A horizontal-reduction seed (the paper enables these with
/// -slp-vectorize-hor): \p Root is the top of a tree of \p Opcode
/// operations whose \p Leaves can potentially be vectorized; the tree is
/// then replaced by a vector computation plus a log-step horizontal
/// reduction.
struct ReductionSeed {
  BinaryOperator *Root = nullptr;
  BinOpcode Opcode = BinOpcode::Add;
  std::vector<Value *> Leaves; ///< Power-of-two count in [MinVF, MaxVF].
  /// Interior tree instructions (including Root), for deletion.
  std::vector<Instruction *> TreeInsts;
};

/// Scans \p BB for reduction trees over a single commutative opcode.
/// Trees are maximal single-use chains; a tree qualifies when its leaf
/// count is a power of two within the VF bounds (after the same width cap
/// as store seeds).
///
/// When \p RC is non-null, emits ReductionSeedFound (analysis) per
/// qualifying tree and SeedRejected (missed, "reject:leaf-count") for trees
/// whose leaf count is not a power of two within the VF bounds.
std::vector<ReductionSeed> collectReductionSeeds(
    BasicBlock &BB, unsigned MinVF, unsigned MaxVF,
    unsigned MaxVecWidthBytes = 32, RemarkCollector *RC = nullptr);

} // namespace snslp

#endif // SNSLP_SLP_SEEDCOLLECTOR_H
