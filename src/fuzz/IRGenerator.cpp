//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "fuzz/IRGenerator.h"

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <algorithm>
#include <cstring>

using namespace snslp;
using namespace snslp::fuzz;

const char *fuzz::getShapeName(ProgramShape Shape) {
  switch (Shape) {
  case ProgramShape::Expression:
    return "expr";
  case ProgramShape::Alias:
    return "alias";
  case ProgramShape::Loop:
    return "loop";
  }
  return "unknown";
}

bool fuzz::parseShapeName(const std::string &Name, ProgramShape &Shape) {
  if (Name == "expr")
    Shape = ProgramShape::Expression;
  else if (Name == "alias")
    Shape = ProgramShape::Alias;
  else if (Name == "loop")
    Shape = ProgramShape::Loop;
  else
    return false;
  return true;
}

IRGenerator::IRGenerator(Module &M, GenOptions Opts) : M(M), Opts(Opts) {}

namespace {

/// Returns the family-default element type: i64 for integer families,
/// f64 for floating-point families.
Type *familyDefaultType(Context &Ctx, OpFamily Family) {
  return Family == OpFamily::IntAddSub || Family == OpFamily::None
             ? Ctx.getInt64Ty()
             : Ctx.getDoubleTy();
}

Constant *randomLeafConstant(Context &Ctx, Type *ElemTy, RNG &R) {
  if (ElemTy->isFloatingPoint())
    // Bounded away from zero so the fdiv family never divides by ~0.
    return Ctx.getConstantFP(ElemTy, R.nextDoubleInRange(0.5, 2.0));
  return Ctx.getConstantInt(ElemTy, R.nextInRange(1, 9));
}

/// Recursive expression builder over loads of the input arrays and
/// constants. Uses the family's direct and inverse opcodes; integer trees
/// may additionally mix in mul sub-chains (OpFamily::None) so that
/// Super-Node boundaries between families get exercised.
struct ExprBuilder {
  IRBuilder &B;
  Function *F;
  RNG &R;
  const GenOptions &Opts;
  Type *ElemTy;
  OpFamily Family;
  unsigned NumArrays;

  Value *loadLeaf(unsigned Lane) {
    unsigned Arr = static_cast<unsigned>(R.nextBelow(NumArrays));
    // Index near the lane so adjacent lanes sometimes see adjacent loads.
    int64_t Index = static_cast<int64_t>(Lane) + R.nextInRange(0, 3);
    Value *Ptr = B.createGEP(ElemTy, F->getArg(1 + Arr), B.getInt64(Index));
    return B.createLoad(ElemTy, Ptr);
  }

  Value *build(unsigned Lane, unsigned Depth) {
    bool MakeLeaf = Depth == 0 || R.nextBool(0.35);
    if (MakeLeaf) {
      if (R.nextBool(Opts.LeafConstProb))
        return randomLeafConstant(B.getContext(), ElemTy, R);
      return loadLeaf(Lane);
    }

    // Occasionally wrap an FP subtree in a unary op. sqrt is guarded by
    // fabs so NaNs cannot enter the tree (see docs/fuzzing.md).
    if (ElemTy->isFloatingPoint() && R.nextBool(Opts.UnaryProb)) {
      Value *Sub = build(Lane, Depth - 1);
      switch (R.nextBelow(3)) {
      case 0:
        return B.createFNeg(Sub);
      case 1:
        return B.createFabs(Sub);
      default:
        return B.createSqrt(B.createFabs(Sub));
      }
    }

    // Occasionally wrap an integer subtree in icmp+select.
    if (ElemTy->isInteger() && R.nextBool(Opts.SelectProb)) {
      Value *A = build(Lane, Depth - 1);
      Value *Bv = build(Lane, Depth - 1);
      Value *C = B.createICmp(ICmpPredicate::SLT, A, Bv);
      return B.createSelect(C, A, Bv);
    }

    OpFamily NodeFamily = Family;
    if (ElemTy->isInteger() && Opts.AllowMixedFamilies && R.nextBool(0.15)) {
      // Integer mul participates in no inverse family; mixing it in
      // probes family boundaries during Super-Node growth.
      Value *L = build(Lane, Depth - 1);
      Value *Rhs = build(Lane, Depth - 1);
      return B.createBinOp(BinOpcode::Mul, L, Rhs);
    }
    BinOpcode Op = R.nextBool(Opts.InverseOpProb)
                       ? getInverseOpcode(NodeFamily)
                       : getDirectOpcode(NodeFamily);
    Value *L = build(Lane, Depth - 1);
    Value *Rhs = build(Lane, Depth - 1);
    return B.createBinOp(Op, L, Rhs);
  }
};

} // namespace

GeneratedProgram IRGenerator::generateExpressionTree(const std::string &Name,
                                                     OpFamily Family,
                                                     unsigned Lanes, RNG &R,
                                                     Type *ElemTy) {
  Context &Ctx = M.getContext();
  if (!ElemTy)
    ElemTy = familyDefaultType(Ctx, Family);
  assert((ElemTy->isInteger()
              ? Family == OpFamily::IntAddSub
              : Family == OpFamily::FPAddSub || Family == OpFamily::FPMulDiv) &&
         "element type must match the operator family");

  bool ReturnsValue = R.nextBool(Opts.ReturnValueProb);
  std::vector<std::pair<Type *, std::string>> Params = {
      {Ctx.getPtrTy(), "out"}};
  for (unsigned A = 0; A < Opts.NumArrays; ++A)
    Params.emplace_back(Ctx.getPtrTy(), "in" + std::to_string(A));
  Function *F = M.createFunction(
      Name, ReturnsValue ? ElemTy : Ctx.getVoidTy(), Params);
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);

  ExprBuilder EB{B, F, R, Opts, ElemTy, Family, Opts.NumArrays};
  Value *Reduction = nullptr;
  for (unsigned Lane = 0; Lane < Lanes; ++Lane) {
    unsigned Depth =
        1 + static_cast<unsigned>(R.nextBelow(Opts.MaxExprDepth));
    Value *E = EB.build(Lane, Depth);
    Value *Ptr = B.createGEP(ElemTy, F->getArg(0), B.getInt64(Lane));
    B.createStore(E, Ptr);
    if (ReturnsValue)
      Reduction = Reduction
                      ? B.createBinOp(getDirectOpcode(Family), Reduction, E)
                      : E;
  }
  B.createRet(ReturnsValue ? Reduction : nullptr);

  GeneratedProgram P;
  P.F = F;
  P.Shape = ProgramShape::Expression;
  P.ElemTy = ElemTy;
  P.NumPointerArgs = 1 + Opts.NumArrays;
  P.ArrayLen = std::max<size_t>(Opts.ArrayLen, Lanes + 4);
  P.ReturnsValue = ReturnsValue;
  return P;
}

GeneratedProgram IRGenerator::generateAliasProgram(const std::string &Name,
                                                   RNG &R) {
  Context &Ctx = M.getContext();
  Type *I64 = Ctx.getInt64Ty();
  const size_t Len = std::max<size_t>(Opts.ArrayLen, 24);

  Function *F =
      M.createFunction(Name, Ctx.getVoidTy(), {{Ctx.getPtrTy(), "m"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  Value *Base = F->getArg(0);

  auto LoadAt = [&B, I64, Base](int64_t Index) {
    Value *Ptr = B.createGEP(I64, Base, B.getInt64(Index));
    return B.createLoad(I64, Ptr);
  };

  unsigned Statements = 4 + static_cast<unsigned>(R.nextBelow(6));
  // Bias store targets towards small consecutive clusters so seeds form.
  int64_t Cluster = R.nextInRange(0, 8);
  for (unsigned S = 0; S < Statements; ++S) {
    Value *Acc = LoadAt(R.nextInRange(0, static_cast<int64_t>(Len) - 1));
    unsigned Ops = 1 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned O = 0; O < Ops; ++O) {
      Value *Rhs =
          R.nextBool(0.25)
              ? static_cast<Value *>(B.getInt64(R.nextInRange(-9, 9)))
              : LoadAt(R.nextInRange(0, static_cast<int64_t>(Len) - 1));
      BinOpcode Op = R.nextBool(0.4) ? BinOpcode::Sub : BinOpcode::Add;
      Acc = B.createBinOp(Op, Acc, Rhs);
    }
    int64_t Target = R.nextBool(0.7)
                         ? Cluster + static_cast<int64_t>(S % 4)
                         : R.nextInRange(0, static_cast<int64_t>(Len) - 1);
    Value *Ptr = B.createGEP(I64, Base, B.getInt64(Target));
    B.createStore(Acc, Ptr);
  }
  B.createRet();

  GeneratedProgram P;
  P.F = F;
  P.Shape = ProgramShape::Alias;
  P.ElemTy = I64;
  P.NumPointerArgs = 1;
  P.ArrayLen = Len;
  P.InPlace = true;
  return P;
}

GeneratedProgram IRGenerator::generateLoop(const std::string &Name,
                                           unsigned Unroll, RNG &R) {
  Context &Ctx = M.getContext();
  Type *I64 = Ctx.getInt64Ty();
  const unsigned NumInputs = std::max(1u, Opts.NumArrays > 3 ? 3u
                                                             : Opts.NumArrays);
  // Trip count must be a multiple of the unroll factor.
  const uint64_t Trip = 32;
  const size_t Len = Trip + 8;

  bool InPlace = R.nextBool(0.4);
  std::vector<std::pair<Type *, std::string>> Params = {
      {Ctx.getPtrTy(), "out"}};
  for (unsigned A = 0; A < NumInputs; ++A)
    Params.emplace_back(Ctx.getPtrTy(), "in" + std::to_string(A));
  Params.emplace_back(I64, "n");
  Function *F = M.createFunction(Name, Ctx.getVoidTy(), Params);

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(Entry);
  B.createBr(Loop);

  B.setInsertPointAtEnd(Loop);
  PhiNode *I = B.createPhi(I64, "i");

  auto LoadAt = [&](unsigned Array, unsigned Lane) {
    // Array 0 == out when updating in place.
    Value *Base = InPlace && Array == 0 ? F->getArg(0)
                                        : F->getArg(1 + Array % NumInputs);
    Value *Idx = Lane == 0 ? static_cast<Value *>(I)
                           : B.createAdd(I, B.getInt64(Lane));
    Value *Ptr = B.createGEP(I64, Base, Idx);
    return B.createLoad(I64, Ptr);
  };

  for (unsigned Lane = 0; Lane < Unroll; ++Lane) {
    unsigned Terms = 2 + static_cast<unsigned>(R.nextBelow(3));
    // Random permutation of term order per lane.
    std::vector<unsigned> Order(Terms);
    for (unsigned T = 0; T < Terms; ++T)
      Order[T] = T;
    for (unsigned T = Terms; T > 1; --T)
      std::swap(Order[T - 1], Order[R.nextBelow(T)]);

    Value *Acc = LoadAt(Order[0], Lane);
    for (unsigned T = 1; T < Terms; ++T) {
      Value *Rhs = LoadAt(Order[T], Lane);
      Acc = B.createBinOp(
          R.nextBool(0.5) ? BinOpcode::Add : BinOpcode::Sub, Acc, Rhs);
    }
    Value *Idx = Lane == 0 ? static_cast<Value *>(I)
                           : B.createAdd(I, B.getInt64(Lane));
    B.createStore(Acc, B.createGEP(I64, F->getArg(0), Idx));
  }

  Value *Next = B.createAdd(I, B.getInt64(Unroll), "i.next");
  Value *Cond = B.createICmp(ICmpPredicate::ULT, Next,
                             F->getArg(1 + NumInputs), "cond");
  B.createCondBr(Cond, Loop, Exit);
  I->addIncoming(B.getInt64(0), Entry);
  I->addIncoming(Next, Loop);

  B.setInsertPointAtEnd(Exit);
  B.createRet();

  GeneratedProgram P;
  P.F = F;
  P.Shape = ProgramShape::Loop;
  P.ElemTy = I64;
  P.NumPointerArgs = 1 + NumInputs;
  P.ArrayLen = Len;
  P.HasTripCountArg = true;
  P.TripCount = Trip;
  P.InPlace = InPlace;
  return P;
}

GeneratedProgram IRGenerator::generate(const std::string &Name,
                                       uint64_t Seed) {
  RNG R(Seed);
  Context &Ctx = M.getContext();

  // Pick a shape (biased toward expression trees, the SN-SLP sweet spot).
  double ShapeDie = R.nextDouble();
  GeneratedProgram P;
  if (Opts.AllowAlias && ShapeDie < 0.2) {
    P = generateAliasProgram(Name, R);
  } else if (Opts.AllowLoops && ShapeDie < 0.4) {
    unsigned Unroll = R.nextBool(0.5) ? 2 : 4;
    P = generateLoop(Name, Unroll, R);
  } else {
    // Family and element type: all four scalar types get coverage.
    OpFamily Family;
    Type *ElemTy;
    switch (R.nextBelow(3)) {
    case 0:
      Family = OpFamily::IntAddSub;
      ElemTy = R.nextBool(0.3) ? Ctx.getInt32Ty() : Ctx.getInt64Ty();
      break;
    case 1:
      Family = OpFamily::FPAddSub;
      ElemTy = R.nextBool(0.3) ? Ctx.getFloatTy() : Ctx.getDoubleTy();
      break;
    default:
      Family = OpFamily::FPMulDiv;
      ElemTy = R.nextBool(0.3) ? Ctx.getFloatTy() : Ctx.getDoubleTy();
      break;
    }
    unsigned Lanes = R.nextBool(0.5) ? 2 : 4;
    P = generateExpressionTree(Name, Family, Lanes, R, ElemTy);
  }
  P.Seed = Seed;
  return P;
}
