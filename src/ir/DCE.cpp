//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/DCE.h"

#include "ir/Function.h"

#include <unordered_set>
#include <vector>

using namespace snslp;

/// Returns true if \p Inst can be deleted once it has no uses.
static bool isTriviallyDead(const Instruction &Inst) {
  return !Inst.hasUses() && !Inst.hasSideEffects();
}

size_t snslp::runDeadCodeElimination(Function &F) {
  // Worklist of dead candidates; deleting an instruction may make its
  // operands dead in turn. The Pending set keeps each instruction in the
  // worklist at most once so an erased instruction can never be revisited.
  std::vector<Instruction *> Worklist;
  std::unordered_set<Instruction *> Pending;
  auto Push = [&Worklist, &Pending](Instruction *Inst) {
    if (Pending.insert(Inst).second)
      Worklist.push_back(Inst);
  };
  for (const auto &BB : F.blocks())
    for (const auto &Inst : *BB)
      if (isTriviallyDead(*Inst))
        Push(Inst.get());

  size_t Removed = 0;
  while (!Worklist.empty()) {
    Instruction *Inst = Worklist.back();
    Worklist.pop_back();
    Pending.erase(Inst);
    if (!isTriviallyDead(*Inst))
      continue;
    // Operands may become dead once this instruction is gone.
    std::vector<Instruction *> Candidates;
    for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I)
      if (auto *OpInst = dyn_cast<Instruction>(Inst->getOperand(I)))
        Candidates.push_back(OpInst);
    Inst->eraseFromParent();
    ++Removed;
    for (Instruction *C : Candidates)
      if (isTriviallyDead(*C))
        Push(C);
  }
  return Removed;
}
