//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: cost-model sensitivity. Two sweeps on the Fig. 3 motivating
/// example (motiv2):
///  1. AlternatePenalty — how expensive an alternating add/sub vector op
///     is relative to a uniform one. The paper charges +1 at VF=2; as the
///     penalty drops, plain SLP's alternating-node graph crosses into
///     profitability and the SLP-vs-SN gap narrows.
///  2. InsertCost (gather cost) — as gathering scalars gets cheaper,
///     non-isomorphic graphs stop being a problem and all configurations
///     converge.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "slp/GraphBuilder.h"
#include "support/TextTable.h"

#include <iostream>

using namespace snslp;

/// Returns the SLP-mode graph cost of \p K's seed group under \p Cfg.
static int slpGraphCost(KernelRunner &Runner, const Kernel &K,
                        VectorizerConfig Cfg) {
  Cfg.Mode = VectorizerMode::SLP;
  CompiledKernel Pristine = Runner.compile(K, VectorizerMode::O3);
  TargetCostModel TCM(Cfg.Target);
  BasicBlock *Loop = Pristine.F->getBlockByName("loop");
  std::vector<SeedGroup> Seeds = collectStoreSeeds(
      *Loop, Cfg.MinVF, Cfg.MaxVF, Cfg.Target.MaxVectorWidthBytes);
  if (Seeds.empty())
    return 0;
  GraphBuilder GB(Cfg, TCM);
  return GB.build(Seeds.front())->getTotalCost();
}

static void sweepPenalty(KernelRunner &Runner, const Kernel &K) {
  std::cout << "--- AlternatePenalty sweep (kernel '" << K.Name
            << "') ---\n";
  TextTable Table;
  Table.setHeader({"penalty", "SLP graph cost", "SLP vectorizes?",
                   "SLP speedup", "SN-SLP speedup"});

  CompiledKernel O3 = Runner.compile(K, VectorizerMode::O3);
  KernelData BaseData(K.Buffers, K.N, 5);
  double BaseCycles = Runner.execute(O3, BaseData).Cycles;

  for (int Penalty : {0, 1, 2, 3, 4}) {
    VectorizerConfig Cfg;
    Cfg.Target.AlternatePenalty = Penalty;
    // Accept break-even graphs so the cost crossing becomes visible in
    // behaviour, not just in the printed cost.
    Cfg.CostThreshold = 1;
    CompiledKernel SLP = Runner.compile(K, VectorizerMode::SLP, Cfg);
    CompiledKernel SN = Runner.compile(K, VectorizerMode::SNSLP, Cfg);
    KernelData D1(K.Buffers, K.N, 5), D2(K.Buffers, K.N, 5);
    double SLPCycles = Runner.execute(SLP, D1).Cycles;
    double SNCycles = Runner.execute(SN, D2).Cycles;
    Table.addRow({std::to_string(Penalty),
                  std::to_string(slpGraphCost(Runner, K, Cfg)),
                  SLP.Stats.GraphsVectorized ? "yes" : "no",
                  TextTable::formatDouble(BaseCycles / SLPCycles),
                  TextTable::formatDouble(BaseCycles / SNCycles)});
  }
  Table.print(std::cout);
  std::cout << '\n';
}

static void sweepInsertCost(KernelRunner &Runner, const Kernel &K) {
  std::cout << "--- InsertCost (gather) sweep (kernel '" << K.Name
            << "') ---\n";
  TextTable Table;
  Table.setHeader({"insert cost", "SLP graph cost", "SLP vectorizes?",
                   "SLP speedup", "SN-SLP speedup"});

  CompiledKernel O3 = Runner.compile(K, VectorizerMode::O3);
  KernelData BaseData(K.Buffers, K.N, 5);
  double BaseCycles = Runner.execute(O3, BaseData).Cycles;

  for (int Insert : {0, 1, 2, 3}) {
    VectorizerConfig Cfg;
    Cfg.Target.InsertCost = Insert;
    Cfg.CostThreshold = 1;
    CompiledKernel SLP = Runner.compile(K, VectorizerMode::SLP, Cfg);
    CompiledKernel SN = Runner.compile(K, VectorizerMode::SNSLP, Cfg);
    KernelData D1(K.Buffers, K.N, 5), D2(K.Buffers, K.N, 5);
    double SLPCycles = Runner.execute(SLP, D1).Cycles;
    double SNCycles = Runner.execute(SN, D2).Cycles;
    Table.addRow({std::to_string(Insert),
                  std::to_string(slpGraphCost(Runner, K, Cfg)),
                  SLP.Stats.GraphsVectorized ? "yes" : "no",
                  TextTable::formatDouble(BaseCycles / SLPCycles),
                  TextTable::formatDouble(BaseCycles / SNCycles)});
  }
  Table.print(std::cout);
  std::cout << '\n';
}

int main() {
  std::cout << "=== Ablation: cost-model sensitivity ===\n\n";
  KernelRunner Runner;
  const Kernel *Motiv2 = findKernel("motiv2");
  sweepPenalty(Runner, *Motiv2);
  sweepInsertCost(Runner, *Motiv2);

  std::cout << "Note: the simulated execution cost of an alternating op is\n"
               "fixed; the sweep changes only the *static* profitability\n"
               "model, i.e. which graphs get committed.\n";
  return 0;
}
