# Empty dependencies file for example_c_kernel.
# This may be replaced when dependencies are built.
