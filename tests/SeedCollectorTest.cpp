//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for store-seed collection: adjacency grouping, run slicing,
/// width capping, and safety rejection.
///
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "slp/SeedCollector.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace snslp;

namespace {

class SeedCollectorTest : public ::testing::Test {
protected:
  Context Ctx;
  Module M{Ctx, "seeds"};

  Function *parse(const std::string &Source) {
    std::string Err;
    EXPECT_TRUE(parseIR(Source, M, &Err)) << Err;
    return M.functions().back().get();
  }

  /// Builds a function storing constants to out[Indices...] (f64).
  Function *buildStores(const std::vector<int> &Indices) {
    std::ostringstream SS;
    SS << "func @stores(ptr %out, f64 %v) {\nentry:\n";
    for (size_t I = 0; I < Indices.size(); ++I) {
      SS << "  %p" << I << " = gep f64, ptr %out, i64 " << Indices[I] << "\n"
         << "  store f64 %v, ptr %p" << I << "\n";
    }
    SS << "  ret void\n}\n";
    M.eraseFunction("stores");
    return parse(SS.str());
  }
};

TEST_F(SeedCollectorTest, TwoAdjacentStoresFormAGroup) {
  Function *F = buildStores({0, 1});
  auto Seeds = collectStoreSeeds(F->getEntryBlock(), 2, 4);
  ASSERT_EQ(Seeds.size(), 1u);
  EXPECT_EQ(Seeds.front().getVF(), 2u);
}

TEST_F(SeedCollectorTest, FourAdjacentStoresPreferVF4) {
  Function *F = buildStores({0, 1, 2, 3});
  auto Seeds = collectStoreSeeds(F->getEntryBlock(), 2, 4);
  ASSERT_EQ(Seeds.size(), 1u);
  EXPECT_EQ(Seeds.front().getVF(), 4u);
}

TEST_F(SeedCollectorTest, RunOfSixSlicesIntoFourPlusTwo) {
  Function *F = buildStores({0, 1, 2, 3, 4, 5});
  auto Seeds = collectStoreSeeds(F->getEntryBlock(), 2, 4);
  ASSERT_EQ(Seeds.size(), 2u);
  EXPECT_EQ(Seeds[0].getVF(), 4u);
  EXPECT_EQ(Seeds[1].getVF(), 2u);
}

TEST_F(SeedCollectorTest, GapBreaksTheRun) {
  Function *F = buildStores({0, 1, 3, 4});
  auto Seeds = collectStoreSeeds(F->getEntryBlock(), 2, 4);
  ASSERT_EQ(Seeds.size(), 2u);
  EXPECT_EQ(Seeds[0].getVF(), 2u);
  EXPECT_EQ(Seeds[1].getVF(), 2u);
}

TEST_F(SeedCollectorTest, StridedStoresDoNotSeed) {
  Function *F = buildStores({0, 2, 4, 6});
  EXPECT_TRUE(collectStoreSeeds(F->getEntryBlock(), 2, 4).empty());
}

TEST_F(SeedCollectorTest, OutOfOrderStoresAreSortedByAddress) {
  Function *F = buildStores({3, 1, 0, 2});
  auto Seeds = collectStoreSeeds(F->getEntryBlock(), 2, 4);
  ASSERT_EQ(Seeds.size(), 1u);
  ASSERT_EQ(Seeds.front().getVF(), 4u);
  // Lane 0 must be the lowest address regardless of program order.
  const Value *Ptr = Seeds.front().Stores.front()->getPointerOperand();
  const auto *GEP = cast<GEPInst>(Ptr);
  EXPECT_EQ(cast<ConstantInt>(GEP->getIndexOperand())->getValue(), 0);
}

TEST_F(SeedCollectorTest, WidthCapLimitsVF) {
  Function *F = buildStores({0, 1, 2, 3});
  // 16-byte registers hold two f64 lanes.
  auto Seeds = collectStoreSeeds(F->getEntryBlock(), 2, 4,
                                 /*MaxVecWidthBytes=*/16);
  ASSERT_EQ(Seeds.size(), 2u);
  EXPECT_EQ(Seeds[0].getVF(), 2u);
  EXPECT_EQ(Seeds[1].getVF(), 2u);
}

TEST_F(SeedCollectorTest, DifferentBasesDoNotMix) {
  Function *F = parse("func @f(ptr %a, ptr %b, f64 %v) {\n"
                      "entry:\n"
                      "  %pa = gep f64, ptr %a, i64 0\n"
                      "  store f64 %v, ptr %pa\n"
                      "  %pb = gep f64, ptr %b, i64 1\n"
                      "  store f64 %v, ptr %pb\n"
                      "  ret void\n"
                      "}\n");
  EXPECT_TRUE(collectStoreSeeds(F->getEntryBlock(), 2, 4).empty());
}

TEST_F(SeedCollectorTest, DifferentTypesDoNotMix) {
  Function *F = parse("func @f(ptr %a, f64 %v, i64 %w) {\n"
                      "entry:\n"
                      "  %p0 = gep f64, ptr %a, i64 0\n"
                      "  store f64 %v, ptr %p0\n"
                      "  %p1 = gep i64, ptr %a, i64 1\n"
                      "  store i64 %w, ptr %p1\n"
                      "  ret void\n"
                      "}\n");
  EXPECT_TRUE(collectStoreSeeds(F->getEntryBlock(), 2, 4).empty());
}

TEST_F(SeedCollectorTest, DependentStoresAreRejected) {
  // The second store's value depends on a load of the first store's
  // location, so the two cannot be bundled.
  Function *F = parse("func @f(ptr %a, f64 %v) {\n"
                      "entry:\n"
                      "  %p0 = gep f64, ptr %a, i64 0\n"
                      "  store f64 %v, ptr %p0\n"
                      "  %r = load f64, ptr %p0\n"
                      "  %s = fadd f64 %r, 1.0\n"
                      "  %p1 = gep f64, ptr %a, i64 1\n"
                      "  store f64 %s, ptr %p1\n"
                      "  ret void\n"
                      "}\n");
  // store0 would have to move down past the load of the same address.
  EXPECT_TRUE(collectStoreSeeds(F->getEntryBlock(), 2, 4).empty());
}

TEST_F(SeedCollectorTest, VariableIndexRunsGroupTogether) {
  Function *F = parse("func @f(ptr %a, i64 %i, f64 %v) {\n"
                      "entry:\n"
                      "  %i1 = add i64 %i, 1\n"
                      "  %p0 = gep f64, ptr %a, i64 %i\n"
                      "  store f64 %v, ptr %p0\n"
                      "  %p1 = gep f64, ptr %a, i64 %i1\n"
                      "  store f64 %v, ptr %p1\n"
                      "  ret void\n"
                      "}\n");
  auto Seeds = collectStoreSeeds(F->getEntryBlock(), 2, 4);
  ASSERT_EQ(Seeds.size(), 1u);
  EXPECT_EQ(Seeds.front().getVF(), 2u);
}

TEST_F(SeedCollectorTest, VectorStoresDoNotSeed) {
  Function *F = parse("func @f(ptr %a) {\n"
                      "entry:\n"
                      "  %v = load <2 x f64>, ptr %a\n"
                      "  store <2 x f64> %v, ptr %a\n"
                      "  %p1 = gep f64, ptr %a, i64 2\n"
                      "  %w = load f64, ptr %p1\n"
                      "  store f64 %w, ptr %p1\n"
                      "  ret void\n"
                      "}\n");
  EXPECT_TRUE(collectStoreSeeds(F->getEntryBlock(), 2, 4).empty());
}

} // namespace
