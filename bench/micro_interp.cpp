//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmark of the execution engine over the whole kernel suite:
/// for every kernel and a scalar (O3) + vectorized (SN-SLP) build, times
/// the predecoded bytecode engine against the reference tree-walking
/// interpreter on identical inputs. The per-kernel speedup column is the
/// number quoted in perf PRs; everything lands in BENCH_interp.json
/// (name, iters, ns/op + speedup extras).
///
/// Usage: micro_interp [--smoke]
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "driver/KernelRunner.h"

#include <cmath>
#include <cstdio>

using namespace snslp;
using namespace snslp::benchjson;

int main(int argc, char **argv) {
  const bool Smoke = isSmokeRun(argc, argv);
  Report Rep("BENCH_interp.json");
  TargetCostModel TCM;
  auto CycleFn = [&TCM](const Instruction &I) {
    return TCM.executionCycles(I);
  };

  const VectorizerMode Modes[] = {VectorizerMode::O3, VectorizerMode::SNSLP};
  double LogSpeedupSum = 0.0;
  unsigned SpeedupCount = 0;

  std::printf("%-28s %14s %14s %9s\n", "kernel/mode", "bytecode ns/op",
              "reference ns/op", "speedup");
  for (const Kernel &K : kernelRegistry()) {
    for (VectorizerMode Mode : Modes) {
      KernelRunner Runner;
      CompiledKernel CK = Runner.compile(K, Mode);
      KernelData Data(K.Buffers, K.N, /*Seed=*/5);

      ExecutionEngine Engine(*CK.F, CycleFn);
      std::vector<RTValue> Args;
      for (size_t I = 0; I < Data.getNumBuffers(); ++I) {
        Args.push_back(argPointer(Data.getPointer(I)));
        Engine.addMemoryRange(Data.getPointer(I), Data.getByteSize(I));
      }
      Args.push_back(argInt64(static_cast<int64_t>(Data.getN())));

      auto RunByte = [&] {
        ExecutionResult R = Engine.run(Args);
        if (!R.Ok) {
          std::fprintf(stderr, "bytecode run failed (%s/%s): %s\n",
                       K.Name.c_str(), getModeName(Mode), R.Error.c_str());
          std::exit(1);
        }
      };
      auto RunRef = [&] {
        ExecutionResult R = Engine.runReference(Args);
        if (!R.Ok) {
          std::fprintf(stderr, "reference run failed (%s/%s): %s\n",
                       K.Name.c_str(), getModeName(Mode), R.Error.c_str());
          std::exit(1);
        }
      };

      auto [ByteIters, ByteNs] = measure(RunByte, Smoke);
      auto [RefIters, RefNs] = measure(RunRef, Smoke);
      double Speedup = ByteNs > 0.0 ? RefNs / ByteNs : 0.0;

      std::string Base = K.Name + "/" + getModeName(Mode);
      Entry &BE = Rep.add(Base + "/bytecode", ByteIters, ByteNs);
      BE.Extra.emplace_back("speedup_vs_reference", Speedup);
      BE.Extra.emplace_back("items_per_op", static_cast<double>(K.N));
      Entry &RE = Rep.add(Base + "/reference", RefIters, RefNs);
      RE.Extra.emplace_back("items_per_op", static_cast<double>(K.N));

      std::printf("%-28s %14.0f %14.0f %8.2fx\n", Base.c_str(), ByteNs,
                  RefNs, Speedup);
      if (Speedup > 0.0) {
        LogSpeedupSum += std::log(Speedup);
        ++SpeedupCount;
      }
    }
  }

  if (SpeedupCount) {
    double Geomean = std::exp(LogSpeedupSum / SpeedupCount);
    std::printf("geomean bytecode-vs-reference speedup: %.2fx\n", Geomean);
  }
  return Rep.write() ? 0 : 1;
}
