//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Buffer management for kernel execution: allocates the arrays a kernel
/// operates on, fills inputs deterministically, and compares outputs
/// between a reference implementation and interpreted IR.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_KERNELS_KERNELDATA_H
#define SNSLP_KERNELS_KERNELDATA_H

#include "interp/RTValue.h"
#include "ir/Type.h"

#include <cstdint>
#include <string>
#include <vector>

namespace snslp {

/// Declares one array a kernel reads and/or writes.
struct BufferSpec {
  enum class Role { Input, Output, InOut };

  std::string Name;
  TypeKind Elem = TypeKind::Double; // Int32/Int64/Float/Double.
  Role BufferRole = Role::Input;
  /// Element count as a multiple of the kernel's N (usually 1).
  double CountScale = 1.0;
};

/// Concrete storage for a kernel invocation's buffers.
class KernelData {
public:
  /// Allocates buffers per \p Specs for problem size \p N and fills inputs
  /// deterministically from \p Seed (outputs are zeroed).
  KernelData(const std::vector<BufferSpec> &Specs, size_t N, uint64_t Seed);

  size_t getNumBuffers() const { return Storage.size(); }
  size_t getN() const { return N; }

  /// Raw pointer to buffer \p Index (for interpreter arguments).
  void *getPointer(size_t Index) {
    return Storage[Index].data();
  }

  /// \name Typed accessors (assert on kind mismatch).
  /// @{
  double *f64(size_t Index);
  float *f32(size_t Index);
  int64_t *i64(size_t Index);
  int32_t *i32(size_t Index);
  /// @}

  /// Element count of buffer \p Index.
  size_t getCount(size_t Index) const { return Counts[Index]; }

  /// Allocated byte size of buffer \p Index (including padding); used to
  /// register sanitizer ranges with the interpreter.
  size_t getByteSize(size_t Index) const { return Storage[Index].size(); }

  /// Compares the Output/InOut buffers of two data sets.
  /// Integer buffers compare exactly; floating-point buffers compare with
  /// relative tolerance \p RelTol (reassociated FP differs in rounding).
  /// On mismatch fills \p Message (when non-null) and returns false.
  static bool outputsMatch(const KernelData &A, const KernelData &B,
                           double RelTol, std::string *Message = nullptr);

private:
  std::vector<BufferSpec> Specs;
  std::vector<std::vector<uint8_t>> Storage;
  std::vector<size_t> Counts;
  size_t N;
};

} // namespace snslp

#endif // SNSLP_KERNELS_KERNELDATA_H
