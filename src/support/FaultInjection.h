//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded fault injection for robustness testing.
///
/// The compiler sprinkles named *fault points* through its decision
/// machinery (`faultPoint("slp.vectorize.abort")`). In production nothing
/// is armed and every probe is a single relaxed-load no-op. Tests and the
/// `fuzzslp --fault-inject` sweep arm a site to fire on its Nth hit; the
/// code at the site then simulates the corresponding internal defect
/// (a corrupted region, an exhausted budget, a thrown-away graph) and the
/// fail-safe layer must degrade gracefully — roll the region back to
/// scalar, emit a `bailout:*` remark, and keep compiling.
///
/// Sites are armed programmatically (arm()/disarmAll()) or via the
/// environment: SNSLP_FAULT_INJECT="site[:N],site2[:M]" arms each listed
/// site to fire on its Nth hit (default 1st).
///
/// The canonical site registry lives in knownFaultSites(); docs/robustness.md
/// documents what each site simulates.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SUPPORT_FAULTINJECTION_H
#define SNSLP_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace snslp {

/// Process-wide fault-injection registry. Thread-safe: the service thread
/// pool compiles many modules concurrently and every one of them probes the
/// same process-global instance, so the site table is mutex-guarded and the
/// anyArmed() fast path is a single relaxed atomic load — unarmed probes
/// (the production configuration) stay free of locks entirely.
class FaultInjector {
public:
  static FaultInjector &instance();

  /// Arms \p Site to fire once, on its \p FireOnNthHit'th hit (1-based).
  void arm(const std::string &Site, uint64_t FireOnNthHit = 1);

  /// Disarms every site and resets hit counters.
  void disarmAll();

  /// Probe: counts a hit on \p Site and returns true exactly once, when
  /// the armed hit count is reached. Unarmed sites return false without
  /// taking the slow path.
  bool shouldFire(const char *Site);

  /// True when any site is armed (lock-free fast-path guard).
  bool anyArmed() const { return Armed.load(std::memory_order_relaxed) != 0; }

  /// Number of times \p Site fired since the last disarmAll().
  uint64_t fireCount(const std::string &Site) const;

  /// Parses SNSLP_FAULT_INJECT ("site[:N],site2[:M]") and arms the listed
  /// sites. Called once at static-init time; safe to call again in tests.
  /// Returns false on malformed input (nothing armed in that case).
  bool armFromSpec(const std::string &Spec);

private:
  FaultInjector();

  struct Site {
    std::string Name;
    uint64_t FireOnNthHit = 1;
    uint64_t Hits = 0;
    uint64_t Fired = 0;
  };
  mutable std::mutex Mu; ///< Guards Sites (arm/fire/query slow paths).
  std::vector<Site> Sites;
  /// Count of sites with Fired == 0 still pending. Atomic so the unarmed
  /// fast path (anyArmed) needs no lock.
  std::atomic<unsigned> Armed{0};
};

/// The canonical registry of fault sites compiled into the binary.
/// `fuzzslp --fault-inject` sweeps every site whose name starts "slp.".
const std::vector<std::string> &knownFaultSites();

/// Convenience probe. Returns true when the named site is armed and this
/// hit is the firing one.
inline bool faultPoint(const char *Site) {
  FaultInjector &FI = FaultInjector::instance();
  if (!FI.anyArmed())
    return false;
  return FI.shouldFire(Site);
}

} // namespace snslp

#endif // SNSLP_SUPPORT_FAULTINJECTION_H
