//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <cstdlib>

using namespace snslp;

CommandLine::CommandLine(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    Arg = Arg.substr(2);
    // Only the unambiguous `--name=value` form carries a value; a bare
    // `--name` is a boolean flag. This keeps `--flag positional` parses
    // predictable.
    size_t Eq = Arg.find('=');
    if (Eq != std::string::npos) {
      Options[Arg.substr(0, Eq)] = Arg.substr(Eq + 1);
      continue;
    }
    Options[Arg] = "";
  }
}

std::string CommandLine::getString(const std::string &Name,
                                   const std::string &Default) const {
  auto It = Options.find(Name);
  return It == Options.end() ? Default : It->second;
}

int64_t CommandLine::getInt(const std::string &Name, int64_t Default) const {
  auto It = Options.find(Name);
  if (It == Options.end() || It->second.empty())
    return Default;
  return std::strtoll(It->second.c_str(), nullptr, 10);
}

bool CommandLine::getBool(const std::string &Name, bool Default) const {
  auto It = Options.find(Name);
  if (It == Options.end())
    return Default;
  return It->second != "false" && It->second != "0";
}

