//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// fuzzslp: the generative differential-testing driver. Generates random
/// SN-SLP-shaped programs (fuzz/IRGenerator), pushes each through the full
/// vectorizer-mode x engine oracle matrix plus metamorphic rewrites
/// (fuzz/DiffOracle), shrinks any failure with the delta-debugging reducer
/// (fuzz/Reducer), and writes minimal `.ir` repros (fuzz/Artifact) into
/// the artifact directory. Also replays a regression corpus of previously
/// reduced artifacts. See docs/fuzzing.md.
///
/// Usage:
///   fuzzslp [--seed=N] [--runs=N] [--jobs=N] [--time-budget=SECONDS]
///           [--corpus-dir=DIR] [--artifact-dir=DIR] [--reduce]
///           [--shuffles] [--max-steps=N] [--engines=LIST] [--modes=LIST]
///           [--fault-inject] [--verbose]
///
/// --jobs=N fans the random runs out over the service thread pool
/// (src/service/ThreadPool.h). The seed range is pre-split
/// deterministically (seed index i goes to job i mod N), every job owns a
/// private Context/Module/DiffOracle (the Context-per-job rule,
/// docs/service.md), per-seed output is buffered and printed in seed order
/// from the main thread, and artifacts are reduced/written on the main
/// thread after the pool joins — so findings and output are identical for
/// --jobs=1 and --jobs=8 (the fuzz_jobs_determinism ctest locks this in).
///
/// --engines selects the execution-engine columns of the matrix:
/// `all` (the default: bytecode, reference, and the native JIT) or a
/// comma-separated subset such as `bytecode,native`. Bytecode is the
/// comparison driver and always runs. --modes selects the vectorizer-mode
/// rows the same way: `all` (the default: o3, slp, lslp, snslp, goslp) or
/// a comma-separated subset such as `snslp,goslp`.
///
/// --fault-inject sweeps every compiled-in `slp.*`, `jit.*`, and
/// `service.*` fault site over each generated program (fail-safe mode: an
/// armed vectorizer defect must degrade to a correct scalar region, an
/// armed JIT defect must degrade to the bytecode engine, and an armed
/// service defect must degrade to a structured retryable rejection or a
/// quarantine-and-recompile that still serves the exact golden artifact;
/// never abort, never miscompile) — see docs/robustness.md.
///
/// Exit code: 0 when every run and every corpus replay is clean, 1 on any
/// oracle failure, 2 on usage / I/O errors.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Artifact.h"
#include "fuzz/DiffOracle.h"
#include "fuzz/IRGenerator.h"
#include "fuzz/Reducer.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "service/CompileService.h"
#include "service/EventLoop.h"
#include "service/Protocol.h"
#include "service/ShardedService.h"
#include "service/ThreadPool.h"
#include "slp/SLPVectorizer.h"
#include "support/CommandLine.h"
#include "support/FaultInjection.h"
#include "support/Remark.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace snslp;
using namespace snslp::fuzz;

namespace {

void printUsage() {
  std::printf(
      "usage: fuzzslp [options]\n"
      "  --seed=N         base seed; run i uses seed N+i (default 1)\n"
      "  --runs=N         number of random programs (default 100)\n"
      "  --jobs=N         worker threads for the random runs (default 1);\n"
      "                   findings are identical for any N — seeds are\n"
      "                   pre-split deterministically and output is\n"
      "                   printed in seed order (forced to 1 with\n"
      "                   --fault-inject: fault sites are process-global)\n"
      "  --time-budget=S  stop after S seconds even if runs remain\n"
      "  --corpus-dir=DIR replay every .ir artifact in DIR first\n"
      "  --artifact-dir=DIR  where reduced repros are written\n"
      "                      (default fuzz-artifacts)\n"
      "  --reduce         shrink failing programs before writing repros\n"
      "  --shuffles       also test the +EnableLoadShuffles configurations\n"
      "  --max-steps=N    interpreter fuel per execution (default 2^24);\n"
      "                   a program whose *baseline* exhausts it is\n"
      "                   counted as skipped, not failing\n"
      "  --engines=LIST   engine columns of the matrix: 'all' (default)\n"
      "                   or a comma-separated subset of\n"
      "                   bytecode,reference,native (bytecode always runs)\n"
      "  --modes=LIST     vectorizer-mode rows of the matrix: 'all'\n"
      "                   (default) or a comma-separated subset of\n"
      "                   o3,slp,lslp,snslp,goslp\n"
      "  --fault-inject   arm each slp.*, jit.*, and service.* fault site\n"
      "                   in turn per program and assert graceful fallback\n"
      "                   (scalar region for slp.*, bytecode engine for\n"
      "                   jit.*, retryable rejection or recompile-from-\n"
      "                   source for service.*)\n"
      "  --verbose        log every run, not just failures\n");
}

/// The reactor half of the service sweep. `service.net.accept-fail` lives
/// in EventLoop::acceptReady, so it can only fire under a real listener:
/// spin up an in-process reactor on an ephemeral loopback TCP port backed
/// synchronously by \p Service (the caller already armed the one-shot
/// site), then connect. The first accepted connection is dropped by the
/// injected fault — visible to the client as EOF before any response,
/// exactly what a client retry policy covers — and the *reconnect* must be
/// served the golden artifact by the still-running loop. Returns false
/// with \p Why on any violation.
bool probeAcceptFailSite(ShardedService &Service,
                         const std::string &ModuleText,
                         const std::string &EntryName,
                         const std::string &Golden, std::string &Why) {
  using namespace snslp::service;
  std::signal(SIGPIPE, SIG_IGN); // The injected drop must not kill us.

  EventLoop Loop;
  EventLoop::Options LO;
  LO.EnableTcp = true;
  LO.TcpPort = 0;
  auto Handler = [&](const EventLoop::RequestToken &Tok,
                     std::string Payload) {
    ServiceRequest Req;
    std::string DecodeErr;
    ServiceResponse Resp;
    if (!decodeRequest(Payload, Req, &DecodeErr)) {
      Resp.Ok = false;
      Resp.ErrorCodeName = getErrorCodeName(ErrorCode::ParseError);
      Resp.Body = DecodeErr;
    } else {
      Expected<CompiledUnit> U = Service.compileSync(toCompileRequest(Req));
      Resp = buildResponse(U, Req);
    }
    Loop.postResponse(Tok, encodeResponse(Resp));
  };
  std::string Err;
  if (!Loop.open(LO, Handler, &Err)) {
    Why = "reactor setup failed: " + Err;
    return false;
  }
  std::thread Runner([&Loop] { Loop.run(); });

  ServiceRequest Req;
  Req.ModuleText = ModuleText;
  Req.Entry = EntryName;
  const std::string Payload = encodeRequest(Req);

  auto ConnectOnce = [&]() -> int {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Loop.tcpPort());
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      ::close(Fd);
      return -1;
    }
    return Fd;
  };

  bool Ok = false;
  bool SawDrop = false;
  for (int Attempt = 0; Attempt < 5 && !Ok; ++Attempt) {
    int Fd = ConnectOnce();
    if (Fd < 0) {
      SawDrop = true;
      continue;
    }
    std::string FrameErr, RespPayload;
    if (!writeFrame(Fd, Payload, &FrameErr) ||
        !readFrame(Fd, RespPayload, &FrameErr)) {
      SawDrop = true; // The injected accept failure closed our socket.
      ::close(Fd);
      continue;
    }
    ::close(Fd);
    ServiceResponse Resp;
    std::string DecodeErr;
    if (!decodeResponse(RespPayload, Resp, &DecodeErr)) {
      Why = "undecodable response after reconnect: " + DecodeErr;
      break;
    }
    if (!Resp.Ok) {
      Why = "reconnect was answered with error '" + Resp.ErrorCodeName + "'";
      break;
    }
    if (Resp.Body != Golden) {
      Why = "reconnect served an artifact diverging from the clean compile";
      break;
    }
    Ok = true;
  }
  Loop.requestStop();
  Runner.join();
  if (Ok && !SawDrop) {
    Why = "armed accept fault never dropped the first connection";
    return false;
  }
  if (!Ok && Why.empty())
    Why = "no successful response within the retry budget";
  return Ok;
}

/// The service-layer half of the --fault-inject sweep. For one generated
/// program: compile a golden artifact through a clean 2-shard
/// ShardedService backed by a throwaway persistent store (which also
/// seeds the store), then arm each compiled-in `service.*` site in turn
/// against a fresh service on the same store and require graceful
/// degradation — either the request still succeeds with the exact golden
/// vectorized text (store corruption/IO faults quarantine and recompile
/// from source), or it is rejected with a *retryable* code (admission
/// control, per-shard admission, deadlines) and, the sites being
/// one-shot, an immediate retry serves the golden text. The reactor-only
/// `service.net.accept-fail` site runs through probeAcceptFailSite
/// instead. Never a wrong artifact, never a non-retryable error, never a
/// crash. Returns false on any violation (printing a FAIL line).
bool sweepServiceFaultSites(const std::string &ModuleText,
                            const std::string &EntryName, uint64_t Seed,
                            uint64_t &FaultChecks, uint64_t &FaultFires,
                            bool Verbose) {
  namespace fs = std::filesystem;
  std::error_code EC;
  fs::path StoreDir = fs::temp_directory_path(EC);
  if (EC)
    StoreDir = ".";
  StoreDir /= "fuzzslp-store-" +
              std::to_string(static_cast<unsigned long long>(::getpid())) +
              "-" + std::to_string(Seed);
  fs::remove_all(StoreDir, EC);

  auto MakeRequest = [&] {
    CompileRequest Req;
    Req.ModuleText = ModuleText;
    Req.EntryFunction = EntryName;
    return Req;
  };
  auto MakeConfig = [&] {
    // Two shards so the per-shard sites (service.shard.queue.overload)
    // have real routing to trip; one worker total, as before.
    ShardedServiceConfig Cfg;
    Cfg.Shards = 2;
    Cfg.TotalWorkers = 1;
    Cfg.StoreDir = StoreDir.string();
    return Cfg;
  };

  // The golden artifact: a clean compile, which also publishes the key
  // into the store so the store-fault sites have an entry to corrupt.
  std::string Golden;
  {
    FaultInjector::instance().disarmAll();
    ShardedService Service(MakeConfig());
    Expected<CompiledUnit> U = Service.compileSync(MakeRequest());
    if (!U) {
      // The generated program does not compile cleanly even without
      // faults; nothing for the service sweep to assert.
      fs::remove_all(StoreDir, EC);
      return true;
    }
    Golden = U->Program->vectorizedText();
  }

  bool AllOk = true;
  for (const std::string &Site : knownFaultSites()) {
    if (Site.rfind("service.", 0) != 0)
      continue;
    FaultInjector::instance().disarmAll();
    FaultInjector::instance().arm(Site, /*FireOnNthHit=*/1);
    ShardedService Service(MakeConfig());
    bool SiteOk = true;
    std::string Why;
    if (Site == "service.net.accept-fail") {
      // Reactor-only site: exercised end-to-end through an in-process
      // epoll loop on a real loopback socket.
      SiteOk = probeAcceptFailSite(Service, ModuleText, EntryName, Golden,
                                   Why);
      ++FaultChecks;
      const bool NetFired =
          FaultInjector::instance().fireCount(Site) > 0;
      FaultFires += NetFired ? 1 : 0;
      if (!SiteOk) {
        AllOk = false;
        std::printf("seed %llu FAIL under fault '%s'%s\n  %s\n",
                    static_cast<unsigned long long>(Seed), Site.c_str(),
                    NetFired ? " (fired)" : " (never reached)",
                    Why.c_str());
      } else if (Verbose) {
        std::printf("seed %llu ok under fault '%s'%s\n",
                    static_cast<unsigned long long>(Seed), Site.c_str(),
                    NetFired ? " (fired)" : " (never reached)");
      }
      continue;
    }
    Expected<CompiledUnit> U = Service.compileSync(MakeRequest());
    if (U) {
      // Store faults must be absorbed: quarantine + recompile, same text.
      if (U->Program->vectorizedText() != Golden) {
        SiteOk = false;
        Why = "served artifact diverged from the clean compile";
      }
    } else if (!isRetryableErrorCode(U.errorCode())) {
      SiteOk = false;
      Why = std::string("non-retryable rejection: ") +
            getErrorCodeName(U.errorCode()) + ": " + U.errorMessage();
    } else {
      // Load shedding fired; the one-shot site is now spent, so the
      // retry the error contract promises must succeed — and serve the
      // same bytes as the clean compile.
      Expected<CompiledUnit> R = Service.compileSync(MakeRequest());
      if (!R) {
        SiteOk = false;
        Why = "retry after retryable rejection failed: " + R.errorMessage();
      } else if (R->Program->vectorizedText() != Golden) {
        SiteOk = false;
        Why = "retried artifact diverged from the clean compile";
      }
    }
    ++FaultChecks;
    const bool Fired = FaultInjector::instance().fireCount(Site) > 0;
    FaultFires += Fired ? 1 : 0;
    if (!SiteOk) {
      AllOk = false;
      std::printf("seed %llu FAIL under fault '%s'%s\n  %s\n",
                  static_cast<unsigned long long>(Seed), Site.c_str(),
                  Fired ? " (fired)" : " (never reached)", Why.c_str());
    } else if (Verbose) {
      std::printf("seed %llu ok under fault '%s'%s\n",
                  static_cast<unsigned long long>(Seed), Site.c_str(),
                  Fired ? " (fired)" : " (never reached)");
    }
  }
  FaultInjector::instance().disarmAll();
  fs::remove_all(StoreDir, EC);
  return AllOk;
}

/// Reduction predicate: the candidate still fails with the signature
/// (variant, engine, kind) of \p Target. Matching the full signature keeps
/// the shrink honest — a candidate that merely fails differently (say, an
/// infinite loop hitting the step budget) is not accepted.
bool stillFails(DiffOracle &Oracle, const GeneratedProgram &P,
                uint64_t DataSeed, const OracleFailure &Target,
                Function &Candidate) {
  GeneratedProgram Q = P;
  Q.F = &Candidate;
  OracleReport R = Oracle.check(Q, DataSeed);
  return std::any_of(R.Failures.begin(), R.Failures.end(),
                     [&Target](const OracleFailure &F) {
                       return F.Variant == Target.Variant &&
                              F.Engine == Target.Engine &&
                              F.Kind == Target.Kind;
                     });
}

/// Resolves the vectorizer configuration named by an oracle variant label
/// ("SNSLP", "SNSLP+passes", "meta:<rule>/SLP+passes", ...). Returns false
/// for labels that carry no vectorizer config of their own ("original",
/// bare metamorphic rewrites, round-trip checks).
bool findFailingConfig(const OracleOptions &Opts, const std::string &Variant,
                       OracleConfig &Out) {
  std::string Name = Variant;
  if (Name.rfind("meta:", 0) == 0) {
    size_t Slash = Name.find('/');
    if (Slash == std::string::npos)
      return false; // The rewritten-but-unvectorized variant itself.
    Name = Name.substr(Slash + 1);
  }
  const std::string Suffix = "+passes";
  if (Name.size() > Suffix.size() &&
      Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) == 0)
    Name.resize(Name.size() - Suffix.size());
  const std::vector<OracleConfig> Configs =
      Opts.Configs.empty() ? OracleOptions::defaultConfigs() : Opts.Configs;
  for (const OracleConfig &C : Configs)
    if (C.Name == Name) {
      Out = C;
      return true;
    }
  return false;
}

/// Re-runs the failing configuration's vectorizer over a scratch clone of
/// \p F and renders its structured decision remarks, one line per remark,
/// for the artifact header — the repro then records *what the vectorizer
/// decided* (seeds, super-nodes, costs), not just that it miscompiled.
/// See docs/observability.md.
std::vector<std::string> collectFailureRemarks(const OracleOptions &Opts,
                                               const std::string &Variant,
                                               const Function &F) {
  OracleConfig Cfg;
  if (!findFailingConfig(Opts, Variant, Cfg))
    return {};
  Function *Scratch = F.cloneInto(*F.getParent(), F.getName() + ".remarks");
  VectorizeStats Stats = runSLPVectorizer(*Scratch, Cfg.Vec);
  std::vector<std::string> Lines;
  Lines.reserve(Stats.Remarks.size() + 1);
  Lines.push_back("config " + Cfg.Name + " (" + Variant + "), " +
                  std::to_string(Stats.Remarks.size()) + " decision(s)");
  for (const Remark &R : Stats.Remarks)
    Lines.push_back(renderRemarkText(R));
  return Lines;
}

/// Handles one failing program: optionally reduces it, then writes the
/// artifact. Returns the artifact path (empty when writing failed).
std::string emitArtifact(const GeneratedProgram &P, uint64_t DataSeed,
                         const OracleReport &Report,
                         const std::string &ArtifactDir, bool Reduce,
                         const OracleOptions &Opts) {
  const OracleFailure &Target = Report.Failures.front();
  GeneratedProgram Out = P;

  if (Reduce) {
    // Candidates only need the part of the matrix that reproduces the
    // target signature: round-trip checks never, metamorphic rewrites only
    // when the failing variant is itself a metamorphic one.
    OracleOptions ReduceOpts;
    ReduceOpts.CheckRoundTrip = false;
    ReduceOpts.CheckMetamorphic = Target.Variant.rfind("meta:", 0) == 0;
    DiffOracle Shrinker(ReduceOpts);
    Reducer R;
    ReduceResult RR = R.reduce(
        *P.F, [&](Function &Cand) {
          return stillFails(Shrinker, P, DataSeed, Target, Cand);
        });
    std::printf("  reduce: %zu -> %zu instructions (%u/%u candidates)\n",
                RR.InstructionsBefore, RR.InstructionsAfter,
                RR.CandidatesAccepted, RR.CandidatesTried);
    Out.F = RR.Reduced;
  }

  // Attach the failing config's remark stream to the artifact header so
  // triage starts from the vectorizer's own account of its decisions.
  std::vector<std::string> RemarkLines =
      collectFailureRemarks(Opts, Target.Variant, *Out.F);

  std::error_code EC;
  std::filesystem::create_directories(ArtifactDir, EC);
  std::string Path = ArtifactDir + "/repro-seed" + std::to_string(P.Seed) +
                     ".ir";
  std::string Err;
  if (!writeArtifact(Path, Out, DataSeed, Target.render(), &Err,
                     RemarkLines)) {
    std::fprintf(stderr, "fuzzslp: %s\n", Err.c_str());
    return "";
  }
  return Path;
}

/// Replays every `.ir` file in \p Dir through the oracle. Returns the
/// number of failing artifacts; -1 on I/O error.
int replayCorpus(const std::string &Dir, const OracleOptions &Opts,
                 bool Verbose) {
  std::error_code EC;
  std::vector<std::string> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(Dir, EC)) {
    if (Entry.path().extension() == ".ir")
      Files.push_back(Entry.path().string());
  }
  if (EC) {
    std::fprintf(stderr, "fuzzslp: cannot read corpus dir '%s': %s\n",
                 Dir.c_str(), EC.message().c_str());
    return -1;
  }
  std::sort(Files.begin(), Files.end());

  int Failing = 0;
  DiffOracle Oracle(Opts);
  for (const std::string &Path : Files) {
    Context Ctx;
    Module M(Ctx, "corpus");
    ArtifactInfo Info;
    std::string Err;
    if (!loadArtifactFile(Path, M, Info, &Err)) {
      std::fprintf(stderr, "fuzzslp: corpus %s: %s\n", Path.c_str(),
                   Err.c_str());
      ++Failing;
      continue;
    }
    OracleReport Report = Oracle.check(Info.Meta, Info.DataSeed);
    if (!Report.ok()) {
      ++Failing;
      std::printf("corpus FAIL %s\n%s", Path.c_str(),
                  Report.summary().c_str());
    } else if (Report.BaselineFuelExhausted) {
      // Kept in the corpus deliberately (e.g. unbounded-loop.ir): the
      // oracle must classify a clean fuel trap as a skip, not a failure.
      std::printf("corpus skip %s (baseline fuel exhausted)\n",
                  Path.c_str());
    } else if (Verbose) {
      std::printf("corpus ok   %s (%u variants)\n", Path.c_str(),
                  Report.VariantsChecked);
    }
  }
  std::printf("corpus: %zu artifacts, %d failing\n", Files.size(), Failing);
  return Failing;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  if (CL.has("help") || CL.has("h")) {
    printUsage();
    return 0;
  }

  const uint64_t BaseSeed = static_cast<uint64_t>(CL.getInt("seed", 1));
  const uint64_t Runs = static_cast<uint64_t>(CL.getInt("runs", 100));
  const int64_t TimeBudget = CL.getInt("time-budget", 0);
  const std::string CorpusDir = CL.getString("corpus-dir");
  const std::string ArtifactDir =
      CL.getString("artifact-dir", "fuzz-artifacts");
  const bool Reduce = CL.getBool("reduce");
  const bool Verbose = CL.getBool("verbose");
  const bool FaultInject = CL.getBool("fault-inject");

  unsigned Jobs = static_cast<unsigned>(CL.getInt("jobs", 1));
  if (Jobs == 0)
    Jobs = 1;
  if (FaultInject && Jobs > 1) {
    // The FaultInjector is a process-global singleton: arming a site from
    // two jobs at once would make fire attribution meaningless.
    std::fprintf(stderr,
                 "fuzzslp: --fault-inject uses process-global fault sites; "
                 "forcing --jobs=1\n");
    Jobs = 1;
  }

  OracleOptions Opts;
  const bool Shuffles = CL.getBool("shuffles");
  if (Shuffles)
    Opts.Configs = OracleOptions::defaultConfigs(/*WithLoadShuffles=*/true);
  if (CL.has("modes")) {
    const std::string Modes = CL.getString("modes", "all");
    if (Modes != "all") {
      // Subset the mode rows the way --engines subsets the engine columns.
      std::vector<VectorizerMode> Wanted;
      std::stringstream SS(Modes);
      std::string Name;
      while (std::getline(SS, Name, ',')) {
        if (Name == "o3")
          Wanted.push_back(VectorizerMode::O3);
        else if (Name == "slp")
          Wanted.push_back(VectorizerMode::SLP);
        else if (Name == "lslp")
          Wanted.push_back(VectorizerMode::LSLP);
        else if (Name == "snslp")
          Wanted.push_back(VectorizerMode::SNSLP);
        else if (Name == "goslp")
          Wanted.push_back(VectorizerMode::GoSLP);
        else {
          std::fprintf(stderr,
                       "fuzzslp: unknown mode '%s' (expected 'all' or a "
                       "subset of o3,slp,lslp,snslp,goslp)\n",
                       Name.c_str());
          return 2;
        }
      }
      if (Wanted.empty()) {
        std::fprintf(stderr, "fuzzslp: --modes selected nothing\n");
        return 2;
      }
      std::vector<OracleConfig> All =
          OracleOptions::defaultConfigs(/*WithLoadShuffles=*/Shuffles);
      Opts.Configs.clear();
      for (const OracleConfig &C : All)
        if (std::find(Wanted.begin(), Wanted.end(), C.Vec.Mode) !=
            Wanted.end())
          Opts.Configs.push_back(C);
    }
  }
  if (CL.has("engines")) {
    const std::string Engines = CL.getString("engines", "all");
    if (Engines != "all") {
      Opts.CheckReferenceEngine = false;
      Opts.CheckNativeEngine = false;
      std::stringstream SS(Engines);
      std::string Name;
      while (std::getline(SS, Name, ',')) {
        if (Name == "reference")
          Opts.CheckReferenceEngine = true;
        else if (Name == "native")
          Opts.CheckNativeEngine = true;
        else if (Name != "bytecode") {
          std::fprintf(stderr,
                       "fuzzslp: unknown engine '%s' (expected 'all' or a "
                       "subset of bytecode,reference,native)\n",
                       Name.c_str());
          return 2;
        }
      }
    }
  }
  if (CL.has("max-steps")) {
    int64_t MaxSteps = CL.getInt("max-steps", 0);
    if (MaxSteps <= 0) {
      std::fprintf(stderr, "fuzzslp: --max-steps needs a positive value\n");
      return 2;
    }
    Opts.MaxSteps = static_cast<uint64_t>(MaxSteps);
  }
  if (FaultInject) {
    // Fail-safe sweep: the question is "does the compiler degrade
    // gracefully when site X fires", so the expensive parts of the matrix
    // that never see the fault (metamorphic rewrites, reference engine
    // re-runs, post-vectorization cleanup) are dropped. The native engine
    // column stays on: it is what the jit.* sites exercise (an armed JIT
    // defect must degrade to the bytecode engine, with identical results).
    // Each armed site fires at most once, inside the first run that
    // reaches it.
    Opts.CheckReferenceEngine = false;
    Opts.CheckCleanupPasses = false;
    Opts.CheckMetamorphic = false;
    Opts.CheckRoundTrip = false;
  }

  int ExitCode = 0;

  if (!CorpusDir.empty()) {
    int Failing = replayCorpus(CorpusDir, Opts, Verbose);
    if (Failing < 0)
      return 2;
    if (Failing > 0)
      ExitCode = 1;
  }

  const auto Start = std::chrono::steady_clock::now();
  auto OverBudget = [&] {
    if (TimeBudget <= 0)
      return false;
    auto Elapsed = std::chrono::steady_clock::now() - Start;
    return std::chrono::duration_cast<std::chrono::seconds>(Elapsed)
               .count() >= TimeBudget;
  };

  uint64_t Completed = 0, Failed = 0, Skipped = 0, VariantsChecked = 0;
  uint64_t FaultChecks = 0, FaultFires = 0;

  if (FaultInject) {
    DiffOracle Oracle(Opts);
    for (uint64_t I = 0; I < Runs && !OverBudget(); ++I) {
      const uint64_t Seed = BaseSeed + I;
      Context Ctx;
      Module M(Ctx, "fuzz");
      IRGenerator Gen(M);
      GeneratedProgram P =
          Gen.generate("fuzz_" + std::to_string(Seed), Seed);
      // Arm every compiled-in slp.* and jit.* site in turn. A firing site
      // simulates an internal defect inside the vectorizer (slp.*: the
      // fail-safe layer must fall back to a correct scalar region) or the
      // native JIT (jit.*: the engine must fall back to bytecode); either
      // way the oracle matrix must stay clean — no abort, no miscompile.
      // A crash here kills the process — which is exactly the regression
      // this sweep exists to catch.
      bool AnyFail = false;
      bool ProgramSkipped = false;
      for (const std::string &Site : knownFaultSites()) {
        if (Site.rfind("slp.", 0) != 0 && Site.rfind("jit.", 0) != 0)
          continue;
        FaultInjector::instance().disarmAll();
        FaultInjector::instance().arm(Site, /*FireOnNthHit=*/1);
        OracleReport Report = Oracle.check(P, /*DataSeed=*/Seed);
        ++FaultChecks;
        VariantsChecked += Report.VariantsChecked;
        const bool Fired = FaultInjector::instance().fireCount(Site) > 0;
        FaultFires += Fired ? 1 : 0;
        if (Report.BaselineFuelExhausted) {
          ++Skipped;
          ProgramSkipped = true;
          break; // Same program for every site: skip them all.
        }
        if (!Report.ok()) {
          AnyFail = true;
          std::printf("seed %llu FAIL under fault '%s'%s\n%s",
                      static_cast<unsigned long long>(Seed), Site.c_str(),
                      Fired ? " (fired)" : " (never reached)",
                      Report.summary().c_str());
        } else if (Verbose) {
          std::printf("seed %llu ok under fault '%s'%s\n",
                      static_cast<unsigned long long>(Seed), Site.c_str(),
                      Fired ? " (fired)" : " (never reached)");
        }
      }
      // The service-layer sites: admission control, deadlines, and the
      // persistent store must degrade to retryable rejections or a
      // recompile from source — proven against this same program.
      if (!ProgramSkipped &&
          !sweepServiceFaultSites(toString(M), P.F->getName(), Seed,
                                  FaultChecks, FaultFires, Verbose))
        AnyFail = true;
      FaultInjector::instance().disarmAll();
      ++Completed;
      if (AnyFail)
        ++Failed;
    }
  } else {
    // The random sweep, fanned out over the service thread pool. Seeds
    // are pre-split deterministically (index i -> job i mod Jobs), every
    // job owns a private Context/Module/DiffOracle (Context-per-job
    // rule), and each seed's output is buffered into its outcome slot so
    // the main thread can print everything in seed order afterwards —
    // the transcript is bit-identical for any --jobs value.
    struct SeedOutcome {
      bool Attempted = false;
      bool Skipped = false;
      bool Failed = false;
      unsigned Variants = 0;
      std::string Log;
    };
    std::vector<SeedOutcome> Outcomes(Runs);

    auto RunSeed = [&](uint64_t I, DiffOracle &Oracle, SeedOutcome &Out) {
      const uint64_t Seed = BaseSeed + I;
      Context Ctx;
      Module M(Ctx, "fuzz");
      IRGenerator Gen(M);
      GeneratedProgram P =
          Gen.generate("fuzz_" + std::to_string(Seed), Seed);
      OracleReport Report = Oracle.check(P, /*DataSeed=*/Seed);
      Out.Attempted = true;
      Out.Variants = Report.VariantsChecked;
      std::ostringstream OS;
      if (Report.BaselineFuelExhausted) {
        Out.Skipped = true;
        if (Verbose)
          OS << "seed " << Seed << " skipped (baseline fuel exhausted after "
             << Opts.MaxSteps << " steps)\n";
      } else if (Report.ok()) {
        if (Verbose)
          OS << "seed " << Seed << " ok (" << getShapeName(P.Shape) << "/"
             << P.ElemTy->getName() << ", " << Report.VariantsChecked
             << " variants)\n";
      } else {
        Out.Failed = true;
        OS << "seed " << Seed << " FAIL (" << getShapeName(P.Shape) << "/"
           << P.ElemTy->getName() << ")\n"
           << Report.summary();
      }
      Out.Log = OS.str();
    };

    if (Jobs == 1) {
      DiffOracle Oracle(Opts);
      for (uint64_t I = 0; I < Runs && !OverBudget(); ++I)
        RunSeed(I, Oracle, Outcomes[I]);
    } else {
      ThreadPool Pool(Jobs);
      for (unsigned J = 0; J < Jobs; ++J)
        Pool.submit([&, J] {
          DiffOracle Oracle(Opts);
          for (uint64_t I = J; I < Runs; I += Jobs) {
            if (OverBudget())
              break;
            RunSeed(I, Oracle, Outcomes[I]);
          }
        });
      Pool.wait();
      Pool.shutdown();
    }

    // Seed-order reporting and artifact emission, on the main thread. A
    // failing program is regenerated from its seed (generation is
    // deterministic) so reduction and artifact writing never race.
    for (uint64_t I = 0; I < Runs; ++I) {
      const SeedOutcome &Out = Outcomes[I];
      if (!Out.Attempted)
        continue; // Cut off by the time budget.
      ++Completed;
      VariantsChecked += Out.Variants;
      if (Out.Skipped)
        ++Skipped;
      if (!Out.Log.empty())
        std::fputs(Out.Log.c_str(), stdout);
      if (!Out.Failed)
        continue;
      ++Failed;
      const uint64_t Seed = BaseSeed + I;
      Context Ctx;
      Module M(Ctx, "fuzz");
      IRGenerator Gen(M);
      GeneratedProgram P =
          Gen.generate("fuzz_" + std::to_string(Seed), Seed);
      DiffOracle Oracle(Opts);
      OracleReport Report = Oracle.check(P, /*DataSeed=*/Seed);
      if (!Report.ok()) {
        std::string Path =
            emitArtifact(P, Seed, Report, ArtifactDir, Reduce, Opts);
        if (!Path.empty())
          std::printf("  artifact: %s\n", Path.c_str());
      }
    }
  }

  std::printf("fuzzslp: %llu runs, %llu failing, %llu skipped, %llu "
              "variant checks\n",
              static_cast<unsigned long long>(Completed),
              static_cast<unsigned long long>(Failed),
              static_cast<unsigned long long>(Skipped),
              static_cast<unsigned long long>(VariantsChecked));
  if (FaultInject)
    std::printf("fuzzslp: fault sweep: %llu site checks, %llu fired\n",
                static_cast<unsigned long long>(FaultChecks),
                static_cast<unsigned long long>(FaultFires));
  if (Failed > 0)
    ExitCode = 1;
  return ExitCode;
}
