//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "support/ErrorHandling.h"

using namespace snslp;

//===----------------------------------------------------------------------===//
// Instruction base
//===----------------------------------------------------------------------===//

Instruction::Instruction(ValueKind Kind, Type *Ty, std::vector<Value *> Ops)
    : Value(Kind, Ty), Operands(std::move(Ops)) {
  for (unsigned I = 0, E = getNumOperands(); I != E; ++I) {
    assert(Operands[I] && "null operand");
    Operands[I]->addUse(this, I);
  }
}

Instruction::~Instruction() { dropAllReferences(); }

void Instruction::dropAllReferences() {
  for (unsigned I = 0, E = getNumOperands(); I != E; ++I) {
    if (Operands[I]) {
      Operands[I]->removeUse(this, I);
      Operands[I] = nullptr;
    }
  }
}

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "cannot set a null operand");
  if (Operands[I])
    Operands[I]->removeUse(this, I);
  Operands[I] = V;
  V->addUse(this, I);
}

void Instruction::appendOperand(Value *V) {
  assert(V && "null operand");
  Operands.push_back(V);
  V->addUse(this, getNumOperands() - 1);
}

void Instruction::removeOperand(unsigned I) {
  assert(I < Operands.size() && "operand index out of range");
  // Detach every operand from slot I onwards: their use-list entries are
  // keyed by (user, index) and the indices are about to shift.
  for (unsigned J = I, E = getNumOperands(); J != E; ++J)
    if (Operands[J])
      Operands[J]->removeUse(this, J);
  Operands.erase(Operands.begin() + I);
  for (unsigned J = I, E = getNumOperands(); J != E; ++J)
    if (Operands[J])
      Operands[J]->addUse(this, J);
}

int Instruction::getOperandIndex(const Value *V) const {
  for (unsigned I = 0, E = getNumOperands(); I != E; ++I)
    if (Operands[I] == V)
      return static_cast<int>(I);
  return -1;
}

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction is not in a block");
  assert(!hasUses() && "erasing an instruction that still has uses");
  BasicBlock *BB = Parent;
  // remove() returns the owning unique_ptr; letting it go out of scope
  // destroys this instruction.
  std::unique_ptr<Instruction> Owner = BB->remove(this);
}

void Instruction::moveBefore(Instruction *Pos) {
  assert(Parent && Pos->Parent && "both instructions must be in blocks");
  std::unique_ptr<Instruction> Owner = Parent->remove(this);
  BasicBlock *Dest = Pos->Parent;
  Dest->insert(Dest->getIterator(Pos), std::move(Owner));
}

bool Instruction::comesBefore(const Instruction *Other) const {
  assert(Parent && Parent == Other->Parent &&
         "position query requires instructions in the same block");
  Parent->renumberInstructions();
  return OrderNum < Other->OrderNum;
}

//===----------------------------------------------------------------------===//
// Opcode helpers
//===----------------------------------------------------------------------===//

OpFamily snslp::getOpFamily(BinOpcode Op) {
  switch (Op) {
  case BinOpcode::Add:
  case BinOpcode::Sub:
    return OpFamily::IntAddSub;
  case BinOpcode::FAdd:
  case BinOpcode::FSub:
    return OpFamily::FPAddSub;
  case BinOpcode::FMul:
  case BinOpcode::FDiv:
    return OpFamily::FPMulDiv;
  case BinOpcode::Mul:
    return OpFamily::None;
  }
  snslp_unreachable("covered switch");
}

BinOpcode snslp::getDirectOpcode(OpFamily Family) {
  switch (Family) {
  case OpFamily::IntAddSub:
    return BinOpcode::Add;
  case OpFamily::FPAddSub:
    return BinOpcode::FAdd;
  case OpFamily::FPMulDiv:
    return BinOpcode::FMul;
  case OpFamily::None:
    break;
  }
  snslp_unreachable("family has no direct opcode");
}

BinOpcode snslp::getInverseOpcode(OpFamily Family) {
  switch (Family) {
  case OpFamily::IntAddSub:
    return BinOpcode::Sub;
  case OpFamily::FPAddSub:
    return BinOpcode::FSub;
  case OpFamily::FPMulDiv:
    return BinOpcode::FDiv;
  case OpFamily::None:
    break;
  }
  snslp_unreachable("family has no inverse opcode");
}

bool snslp::isCommutative(BinOpcode Op) {
  return Op == BinOpcode::Add || Op == BinOpcode::Mul ||
         Op == BinOpcode::FAdd || Op == BinOpcode::FMul;
}

bool snslp::isInverseOpcode(BinOpcode Op) {
  return Op == BinOpcode::Sub || Op == BinOpcode::FSub ||
         Op == BinOpcode::FDiv;
}

const char *snslp::getOpcodeName(BinOpcode Op) {
  switch (Op) {
  case BinOpcode::Add:
    return "add";
  case BinOpcode::Sub:
    return "sub";
  case BinOpcode::Mul:
    return "mul";
  case BinOpcode::FAdd:
    return "fadd";
  case BinOpcode::FSub:
    return "fsub";
  case BinOpcode::FMul:
    return "fmul";
  case BinOpcode::FDiv:
    return "fdiv";
  }
  snslp_unreachable("covered switch");
}

const char *snslp::getOpFamilyName(OpFamily Family) {
  switch (Family) {
  case OpFamily::IntAddSub:
    return "add/sub";
  case OpFamily::FPAddSub:
    return "fadd/fsub";
  case OpFamily::FPMulDiv:
    return "fmul/fdiv";
  case OpFamily::None:
    return "none";
  }
  snslp_unreachable("covered switch");
}

const char *snslp::getUnaryOpcodeName(UnaryOpcode Op) {
  switch (Op) {
  case UnaryOpcode::FNeg:
    return "fneg";
  case UnaryOpcode::Sqrt:
    return "sqrt";
  case UnaryOpcode::Fabs:
    return "fabs";
  }
  snslp_unreachable("covered switch");
}

const char *snslp::getPredicateName(ICmpPredicate Pred) {
  switch (Pred) {
  case ICmpPredicate::EQ:
    return "eq";
  case ICmpPredicate::NE:
    return "ne";
  case ICmpPredicate::SLT:
    return "slt";
  case ICmpPredicate::SLE:
    return "sle";
  case ICmpPredicate::SGT:
    return "sgt";
  case ICmpPredicate::SGE:
    return "sge";
  case ICmpPredicate::ULT:
    return "ult";
  case ICmpPredicate::ULE:
    return "ule";
  }
  snslp_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Concrete instructions
//===----------------------------------------------------------------------===//

void BinaryOperator::swapOperands() {
  assert(isCommutative(Op) && "swapping operands of a non-commutative op");
  Value *L = getOperand(0);
  Value *R = getOperand(1);
  // Set in two steps; setOperand requires non-null distinct updates.
  setOperand(0, R);
  setOperand(1, L);
}

AlternateOp::AlternateOp(std::vector<BinOpcode> Ops, Value *LHS, Value *RHS)
    : Instruction(ValueKind::AlternateOp, LHS->getType(), {LHS, RHS}),
      LaneOps(std::move(Ops)) {
  assert(LHS->getType() == RHS->getType() && "operand types must match");
  [[maybe_unused]] auto *VT = cast<VectorType>(LHS->getType());
  assert(LaneOps.size() == VT->getNumLanes() &&
         "one opcode required per vector lane");
  [[maybe_unused]] OpFamily Family = getOpFamily(LaneOps.front());
  assert(Family != OpFamily::None && "alternate op requires an op family");
  for ([[maybe_unused]] BinOpcode Op : LaneOps)
    assert(getOpFamily(Op) == Family && "mixed families in alternate op");
}

StoreInst::StoreInst(Value *Val, Value *Ptr)
    : Instruction(ValueKind::Store, Ptr->getType()->getContext().getVoidTy(),
                  {Val, Ptr}) {
  assert(Ptr->getType()->isPointer() && "store pointer operand must be ptr");
  assert(!Val->getType()->isVoid() && "cannot store void");
}

GEPInst::GEPInst(Type *ElemTy, Value *Ptr, Value *Index)
    : Instruction(ValueKind::GEP, Ptr->getType(), {Ptr, Index}),
      ElemTy(ElemTy) {
  assert(Ptr->getType()->isPointer() && "gep base must be a pointer");
  assert(Index->getType()->getKind() == TypeKind::Int64 &&
         "gep index must be i64");
  assert(ElemTy && !ElemTy->isVoid() && "invalid gep element type");
}

ICmpInst::ICmpInst(ICmpPredicate Pred, Value *LHS, Value *RHS)
    : Instruction(ValueKind::ICmp, LHS->getType()->getContext().getInt1Ty(),
                  {LHS, RHS}),
      Pred(Pred) {
  assert(LHS->getType() == RHS->getType() && "icmp operand types must match");
  assert(LHS->getType()->isInteger() && "icmp requires integer operands");
}

SelectInst::SelectInst(Value *Cond, Value *TrueVal, Value *FalseVal)
    : Instruction(ValueKind::Select, TrueVal->getType(),
                  {Cond, TrueVal, FalseVal}) {
  assert(Cond->getType()->getKind() == TypeKind::Int1 &&
         "select condition must be i1");
  assert(TrueVal->getType() == FalseVal->getType() &&
         "select arms must have matching types");
}

void PhiNode::addIncoming(Value *V, BasicBlock *BB) {
  assert(V->getType() == getType() && "phi incoming type mismatch");
  IncomingBlocks.push_back(BB);
  appendOperand(V);
}

void PhiNode::removeIncoming(unsigned I) {
  assert(I < IncomingBlocks.size() && "incoming index out of range");
  IncomingBlocks.erase(IncomingBlocks.begin() + I);
  removeOperand(I);
}

unsigned PhiNode::removeIncomingForBlock(const BasicBlock *BB) {
  unsigned Removed = 0;
  for (unsigned I = getNumIncoming(); I > 0; --I)
    if (getIncomingBlock(I - 1) == BB) {
      removeIncoming(I - 1);
      ++Removed;
    }
  return Removed;
}

Value *PhiNode::getIncomingValueForBlock(const BasicBlock *BB) const {
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
    if (getIncomingBlock(I) == BB)
      return getIncomingValue(I);
  snslp_unreachable("no incoming value for predecessor");
}

BranchInst::BranchInst(BasicBlock *Target)
    : Instruction(ValueKind::Branch, Target->getContext().getVoidTy(), {}),
      Successors({Target}) {}

BranchInst::BranchInst(Value *Cond, BasicBlock *TrueTarget,
                       BasicBlock *FalseTarget)
    : Instruction(ValueKind::Branch, Cond->getType()->getContext().getVoidTy(),
                  {Cond}),
      Successors({TrueTarget, FalseTarget}) {
  assert(Cond->getType()->getKind() == TypeKind::Int1 &&
         "branch condition must be i1");
}

RetInst::RetInst(Context &Ctx, Value *RetVal)
    : Instruction(ValueKind::Ret, Ctx.getVoidTy(),
                  RetVal ? std::vector<Value *>{RetVal}
                         : std::vector<Value *>{}) {}

InsertElementInst::InsertElementInst(Value *Vec, Value *Scalar, unsigned Lane)
    : Instruction(ValueKind::InsertElement, Vec->getType(), {Vec, Scalar}),
      Lane(Lane) {
  [[maybe_unused]] auto *VT = cast<VectorType>(Vec->getType());
  assert(Lane < VT->getNumLanes() && "insert lane out of range");
  assert(Scalar->getType() == VT->getElementType() &&
         "inserted scalar type mismatch");
}

ExtractElementInst::ExtractElementInst(Value *Vec, unsigned Lane)
    : Instruction(ValueKind::ExtractElement,
                  cast<VectorType>(Vec->getType())->getElementType(), {Vec}),
      Lane(Lane) {
  assert(Lane < cast<VectorType>(Vec->getType())->getNumLanes() &&
         "extract lane out of range");
}

ShuffleVectorInst::ShuffleVectorInst(Value *V1, Value *V2,
                                     std::vector<int> MaskIn)
    : Instruction(ValueKind::ShuffleVector,
                  V1->getType()->getContext().getVectorType(
                      cast<VectorType>(V1->getType())->getElementType(),
                      static_cast<unsigned>(MaskIn.size())),
                  {V1, V2}),
      Mask(std::move(MaskIn)) {
  assert(V1->getType() == V2->getType() &&
         "shuffle inputs must have the same type");
  [[maybe_unused]] unsigned InLanes =
      cast<VectorType>(V1->getType())->getNumLanes();
  for ([[maybe_unused]] int M : Mask)
    assert(M >= 0 && M < static_cast<int>(2 * InLanes) &&
           "shuffle mask element out of range");
}
