//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "slp/SuperNode.h"

#include "ir/BasicBlock.h"
#include "ir/IRBuilder.h"
#include "slp/LookAhead.h"
#include "slp/VectorizerConfig.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <limits>

using namespace snslp;

//===----------------------------------------------------------------------===//
// Lane construction
//===----------------------------------------------------------------------===//

void SuperNode::Lane::undoLastExpansion() {
  assert(!History.empty() && "no expansion to undo");
  const Expansion &E = History.back();
  // The expansion replaced Leaves[Pos] with the trunk instruction's two
  // operand leaves at [Pos, Pos+1]; fold them back into the original leaf.
  assert(E.Pos + 1 < Leaves.size() && "corrupt expansion record");
  Leaves[E.Pos] = E.Replaced;
  Leaves.erase(Leaves.begin() + static_cast<long>(E.Pos) + 1);
  auto It = std::find(Trunk.begin(), Trunk.end(), E.TrunkInst);
  assert(It != Trunk.end() && "trunk instruction missing on undo");
  Trunk.erase(It);
  History.pop_back();
}

unsigned SuperNode::Lane::unusedNonInvertedCount() const {
  unsigned Count = 0;
  for (size_t I = 0; I < Leaves.size(); ++I)
    if (!Used[I] && !Leaves[I].Inverted)
      ++Count;
  return Count;
}

/// Returns true when leaf \p L can be expanded into its operands: a
/// single-use binary operator of family \p Family in block \p BB whose
/// opcode is permitted by \p AllowInverse and which is not frozen.
static bool isExpandable(const SNLeaf &L, OpFamily Family, bool AllowInverse,
                         const BasicBlock *BB,
                         const std::unordered_set<Value *> &Frozen) {
  const auto *B = dyn_cast<BinaryOperator>(L.V);
  if (!B || B->getFamily() != Family)
    return false;
  if (!AllowInverse && isInverseOpcode(B->getOpcode()))
    return false;
  if (!B->hasOneUse())
    return false;
  if (B->getParent() != BB)
    return false;
  return Frozen.count(const_cast<BinaryOperator *>(B)) == 0;
}

std::unique_ptr<SuperNode>
SuperNode::tryBuild(const std::vector<Value *> &Bundle, bool AllowInverse,
                    const std::unordered_set<Value *> &Frozen,
                    std::string *WhyNot) {
  auto Fail = [WhyNot](const char *Reason) -> std::unique_ptr<SuperNode> {
    if (WhyNot)
      *WhyNot = Reason;
    return nullptr;
  };
  if (Bundle.size() < 2)
    return Fail("bundle-too-small");
  // Lanes must be distinct binary operators of one family, in one block.
  for (size_t I = 0; I < Bundle.size(); ++I)
    for (size_t J = I + 1; J < Bundle.size(); ++J)
      if (Bundle[I] == Bundle[J])
        return Fail("duplicate-lanes");

  auto SN = std::make_unique<SuperNode>();
  const BasicBlock *BB = nullptr;
  for (Value *V : Bundle) {
    auto *Root = dyn_cast<BinaryOperator>(V);
    if (!Root || Frozen.count(V))
      return Fail("non-binop-or-frozen");
    OpFamily F = Root->getFamily();
    if (F == OpFamily::None)
      return Fail("no-family");
    if (!AllowInverse && isInverseOpcode(Root->getOpcode()))
      return Fail("inverse-not-allowed");
    if (SN->Family == OpFamily::None) {
      SN->Family = F;
      BB = Root->getParent();
    }
    if (F != SN->Family || Root->getParent() != BB || !BB)
      return Fail("family-or-block-mismatch");

    Lane L;
    L.Root = Root;
    L.Trunk.push_back(Root);
    L.Leaves.push_back(SNLeaf{Root->getLHS(), false});
    L.Leaves.push_back(
        SNLeaf{Root->getRHS(), isInverseOpcode(Root->getOpcode())});
    SN->Lanes.push_back(std::move(L));
  }

  // Grow each lane's tree to its maximum, recording expansions for undo.
  for (Lane &L : SN->Lanes) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t Pos = 0; Pos < L.Leaves.size(); ++Pos) {
        const SNLeaf Leaf = L.Leaves[Pos];
        if (!isExpandable(Leaf, SN->Family, AllowInverse, BB, Frozen))
          continue;
        auto *B = cast<BinaryOperator>(Leaf.V);
        // A leaf under a '-' APO flips the APO of the inverse operator's
        // right-hand side (Sec. IV-C1: count right-hand edges of inverse
        // operators along the path).
        SNLeaf Left{B->getLHS(), Leaf.Inverted};
        SNLeaf Right{B->getRHS(),
                     Leaf.Inverted != isInverseOpcode(B->getOpcode())};
        L.History.push_back(Lane::Expansion{Pos, Leaf, B});
        L.Leaves[Pos] = Left;
        L.Leaves.insert(L.Leaves.begin() + static_cast<long>(Pos) + 1, Right);
        L.Trunk.push_back(B);
        Changed = true;
        break;
      }
    }
  }

  // Equalize leaf counts across lanes by undoing the deepest expansions of
  // the larger lanes (the Multi-Node requirement that every lane supplies
  // the same number of operands).
  size_t MinLeaves = std::numeric_limits<size_t>::max();
  for (const Lane &L : SN->Lanes)
    MinLeaves = std::min(MinLeaves, L.Leaves.size());
  for (Lane &L : SN->Lanes)
    while (L.Leaves.size() > MinLeaves)
      L.undoLastExpansion();

  // The paper's minimum legal Multi/Super-Node size is a trunk of 2.
  if (MinLeaves < 3)
    return Fail("trunk-too-small");

  for (Lane &L : SN->Lanes)
    L.Used.assign(L.Leaves.size(), false);
  return SN;
}

//===----------------------------------------------------------------------===//
// Reordering (Listings 2 and 3)
//===----------------------------------------------------------------------===//

bool SuperNode::canPlace(const Lane &L, size_t LeafIdx, unsigned Slot) const {
  if (L.Used[LeafIdx])
    return false;
  const SNLeaf &Leaf = L.Leaves[LeafIdx];
  // Slot 0 heads the re-emitted chain: it must carry a '+' APO because no
  // unary negation/reciprocal is introduced (paper Sec. IV-C2).
  if (Slot == 0)
    return !Leaf.Inverted;
  // Any other slot accepts either APO via trunk re-derivation (Sec. IV-C3),
  // but the last '+' leaf must stay reserved for slot 0.
  if (!Leaf.Inverted && L.unusedNonInvertedCount() == 1)
    return false;
  return true;
}

std::vector<size_t> SuperNode::buildGroup(size_t Lane0Leaf, unsigned Slot,
                                          const LookAhead &LA) const {
  // Cooperative budget check: each coordinated-group probe is one
  // "Super-Node permutation". Once the budget is blown, abandon the probe
  // immediately — reorderLeavesAndTrunks degrades to the per-lane
  // fallback, which is linear and always legal.
  if (Budget && !Budget->chargeSuperNodePermutation())
    return {};
  std::vector<size_t> Group{Lane0Leaf};
  const Value *Prev = Lanes[0].Leaves[Lane0Leaf].V;
  for (unsigned LaneIdx = 1; LaneIdx < getNumLanes(); ++LaneIdx) {
    const Lane &L = Lanes[LaneIdx];
    int BestScore = std::numeric_limits<int>::min();
    size_t BestIdx = SIZE_MAX;
    for (size_t I = 0; I < L.Leaves.size(); ++I) {
      // Legality is a two-step check: the leaf-only move, then the
      // trunk-assisted move (canPlace folds both; see header).
      if (!canPlace(L, I, Slot))
        continue;
      int Score = LA.score(Prev, L.Leaves[I].V);
      if (Score > BestScore) {
        BestScore = Score;
        BestIdx = I;
      }
    }
    if (BestIdx == SIZE_MAX) {
      // APO legality refused every remaining leaf of this lane for this
      // slot; the whole candidate group is abandoned (telemetry for the
      // SuperNodeBuilt remark).
      ++AbandonedGroups;
      return {};
    }
    Group.push_back(BestIdx);
    Prev = L.Leaves[BestIdx].V;
  }
  return Group;
}

void SuperNode::reorderLeavesAndTrunks(const LookAhead &LA) {
  unsigned Slots = getNumSlots();
  for (Lane &L : Lanes) {
    L.Assigned.assign(Slots, SNLeaf{});
    L.Used.assign(L.Leaves.size(), false);
  }

  // Visit operand indexes sorted closest-to-root first: in a left-to-right
  // chain the slot nearest the root is the highest index (Listing 2's
  // sorted visit order), and slot 0 — with its '+' restriction — comes
  // last, when the reserved '+' leaves remain.
  for (int Slot = static_cast<int>(Slots) - 1; Slot >= 0; --Slot) {
    unsigned USlot = static_cast<unsigned>(Slot);
    int BestScore = std::numeric_limits<int>::min();
    std::vector<size_t> BestGroup;

    // Try every legal lane-0 leaf as the group's starting point.
    for (size_t I = 0; I < Lanes[0].Leaves.size(); ++I) {
      if (!canPlace(Lanes[0], I, USlot))
        continue;
      std::vector<size_t> Group = buildGroup(I, USlot, LA);
      if (Group.empty())
        continue;
      std::vector<const Value *> GroupValues;
      GroupValues.reserve(Group.size());
      for (unsigned LaneIdx = 0; LaneIdx < Group.size(); ++LaneIdx)
        GroupValues.push_back(Lanes[LaneIdx].Leaves[Group[LaneIdx]].V);
      int Score = LA.groupScore(GroupValues);
      if (Score > BestScore) {
        BestScore = Score;
        BestGroup = std::move(Group);
      }
    }

    if (!BestGroup.empty()) {
      for (unsigned LaneIdx = 0; LaneIdx < getNumLanes(); ++LaneIdx) {
        Lane &L = Lanes[LaneIdx];
        L.Assigned[USlot] = L.Leaves[BestGroup[LaneIdx]];
        L.Used[BestGroup[LaneIdx]] = true;
      }
      continue;
    }

    // No coordinated group exists (can happen when a lane runs out of
    // legal leaves for this slot); fall back to any legal per-lane choice.
    ++FallbackSlots;
    for (Lane &L : Lanes) {
      size_t Pick = SIZE_MAX;
      for (size_t I = 0; I < L.Leaves.size(); ++I)
        if (canPlace(L, I, USlot)) {
          Pick = I;
          break;
        }
      assert(Pick != SIZE_MAX &&
             "the reserved '+' leaf guarantees a legal pick");
      L.Assigned[USlot] = L.Leaves[Pick];
      L.Used[Pick] = true;
    }
  }
}

std::string SuperNode::getAPOSlotString(unsigned LaneIdx) const {
  const Lane &L = Lanes[LaneIdx];
  assert(L.Assigned.size() == getNumSlots() && "reorder must run first");
  std::string Slots;
  Slots.reserve(L.Assigned.size());
  for (const SNLeaf &Leaf : L.Assigned)
    Slots.push_back(Leaf.Inverted ? '-' : '+');
  return Slots;
}

//===----------------------------------------------------------------------===//
// Code re-emission
//===----------------------------------------------------------------------===//

std::vector<Instruction *>
SuperNode::generateCode(std::unordered_set<Value *> &Produced) {
  std::vector<Instruction *> NewRoots;
  BinOpcode Direct = getDirectOpcode(Family);
  BinOpcode Inverse = getInverseOpcode(Family);

  for (Lane &L : Lanes) {
    assert(L.Assigned.size() == getNumSlots() && "reorder must run first");
    assert(!L.Assigned[0].Inverted && "slot 0 must carry a '+' APO");

    IRBuilder B(L.Root->getParent()->getContext());
    B.setInsertPointBefore(L.Root);

    // Re-emitted chain instructions derive their names from the dying
    // root: "<root>.sn" for the new root, "<root>.sn<slot>" for interior
    // links. Printed IR and optimization remarks stay readable (and the
    // ".sn" marker makes re-emission visible); the printer uniquifies
    // clashes.
    const std::string RootName = L.Root->getName();
    Value *Acc = L.Assigned[0].V;
    for (unsigned Slot = 1; Slot < getNumSlots(); ++Slot) {
      const SNLeaf &Leaf = L.Assigned[Slot];
      Acc = B.createBinOp(Leaf.Inverted ? Inverse : Direct, Acc, Leaf.V);
      if (!RootName.empty())
        Acc->setName(Slot + 1 == getNumSlots()
                         ? RootName + ".sn"
                         : RootName + ".sn" + std::to_string(Slot));
      Produced.insert(Acc);
    }

    L.Root->replaceAllUsesWith(Acc);
    NewRoots.push_back(cast<Instruction>(Acc));

    // The original trunk is now dead: the root lost all uses and interior
    // trunk nodes were single-use. Erase in use-order (root first).
    bool Erased = true;
    while (Erased) {
      Erased = false;
      for (auto It = L.Trunk.begin(); It != L.Trunk.end(); ++It) {
        if ((*It)->hasUses())
          continue;
        (*It)->eraseFromParent();
        L.Trunk.erase(It);
        Erased = true;
        break;
      }
    }
    assert(L.Trunk.empty() && "original trunk not fully erased");
  }
  return NewRoots;
}
