//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Context owns and interns all types and constants, mirroring the role
/// of LLVMContext. Every Module is created against a Context; values from
/// different Contexts must never be mixed.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_IR_CONTEXT_H
#define SNSLP_IR_CONTEXT_H

#include "ir/Type.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace snslp {

class Constant;
class ConstantInt;
class ConstantFP;
class ConstantVector;

/// Owns interned types and constants. Interning makes pointer equality
/// meaningful for both, which the vectorizer relies on when comparing lanes.
class Context {
public:
  Context();
  ~Context();

  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  /// \name Scalar type accessors (singletons).
  /// @{
  Type *getVoidTy() { return VoidTy.get(); }
  Type *getInt1Ty() { return Int1Ty.get(); }
  Type *getInt32Ty() { return Int32Ty.get(); }
  Type *getInt64Ty() { return Int64Ty.get(); }
  Type *getFloatTy() { return FloatTy.get(); }
  Type *getDoubleTy() { return DoubleTy.get(); }
  Type *getPtrTy() { return PtrTy.get(); }
  /// @}

  /// Returns the interned vector type <Lanes x Elem>. \p Elem must be a
  /// non-void, non-vector scalar type.
  VectorType *getVectorType(Type *Elem, unsigned Lanes);

  /// Returns the interned integer constant of type \p Ty (i1/i32/i64).
  ConstantInt *getConstantInt(Type *Ty, int64_t Value);

  /// Returns the interned floating-point constant of type \p Ty (f32/f64).
  ConstantFP *getConstantFP(Type *Ty, double Value);

  /// Returns the interned vector constant with the given scalar elements.
  /// All elements must have the same scalar type.
  ConstantVector *getConstantVector(const std::vector<Constant *> &Elems);

private:
  std::unique_ptr<Type> VoidTy, Int1Ty, Int32Ty, Int64Ty, FloatTy, DoubleTy,
      PtrTy;

  std::map<std::pair<TypeKind, unsigned>, std::unique_ptr<VectorType>>
      VectorTypes;
  std::map<std::pair<TypeKind, int64_t>, std::unique_ptr<ConstantInt>>
      IntConstants;
  std::map<std::pair<TypeKind, uint64_t>, std::unique_ptr<ConstantFP>>
      FPConstants;
  std::map<std::vector<Constant *>, std::unique_ptr<ConstantVector>>
      VectorConstants;
};

} // namespace snslp

#endif // SNSLP_IR_CONTEXT_H
