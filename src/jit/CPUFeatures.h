//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime host-CPU feature detection for the native JIT backend.
///
/// The JIT lowers IR to x86-64 machine code, so before emitting anything it
/// must know (a) that the host is x86-64 at all and (b) which SIMD tiers the
/// part supports. Detection runs CPUID once per process and caches the
/// result; on non-x86-64 builds every feature reads false and the engine
/// falls back to bytecode with a `jit:unsupported-isa` remark
/// (see docs/jit.md, "fallback ladder").
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_JIT_CPUFEATURES_H
#define SNSLP_JIT_CPUFEATURES_H

#include <string>

namespace snslp {

/// The SIMD capability tiers the emitter cares about. SSE2 is the x86-64
/// baseline (always present on 64-bit parts); SSE4.1 gates `pmulld`
/// (packed i32 multiply); AVX gates 256-bit FP chunks; AVX2 gates 256-bit
/// integer chunks.
struct CPUFeatures {
  bool X86_64 = false; ///< Host executes x86-64 code at all.
  bool SSE2 = false;
  bool SSE41 = false;
  bool AVX = false;  ///< OS-enabled (XGETBV-checked) AVX.
  bool AVX2 = false;

  /// True when the JIT can emit code for this host (x86-64 + SSE2).
  bool jitSupported() const { return X86_64 && SSE2; }

  /// Compact ISA description for bench metadata, e.g. "x86-64+sse4.1+avx2"
  /// or "non-x86-64".
  std::string isaString() const;
};

/// Caps \p F at the tier named by \p Cap ("sse2", "sse4.1", "avx", "avx2";
/// "host" or empty means no cap). The cap only ever clears feature bits —
/// it cannot grant a tier the host lacks, so forced-ISA code never executes
/// instructions the part cannot run. Unrecognized names leave \p F
/// untouched. Exposed separately from hostCPUFeatures() so tests can pin
/// the clamp logic without touching the process environment.
CPUFeatures applyISACap(CPUFeatures F, const std::string &Cap);

/// CPUID-detected features of the executing host, computed once. Honors the
/// SNSLP_FORCE_ISA environment variable (read once, applyISACap semantics)
/// so the SSE-only and no-AVX2 lowering tiers are testable on AVX2 hosts.
const CPUFeatures &hostCPUFeatures();

} // namespace snslp

#endif // SNSLP_JIT_CPUFEATURES_H
