//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden-encoding tests for the x86-64 emitter: each instruction form the
/// native backend relies on is pinned byte-for-byte against hand-assembled
/// expectations, so an encoding regression fails here rather than as a
/// SIGILL deep inside a jitted kernel. Also covers the W^X code buffer and
/// branch fixup/patching behavior.
///
//===----------------------------------------------------------------------===//

#include "jit/CodeBuffer.h"
#include "jit/X86Emitter.h"

#include <gtest/gtest.h>

#include <vector>

using namespace snslp;

namespace {

std::vector<uint8_t> bytes(std::initializer_list<int> L) {
  std::vector<uint8_t> V;
  for (int B : L)
    V.push_back(static_cast<uint8_t>(B));
  return V;
}

#define EXPECT_ENCODING(EmitExpr, ...)                                         \
  do {                                                                         \
    X86Emitter E;                                                              \
    E.EmitExpr;                                                                \
    EXPECT_EQ(E.code(), bytes({__VA_ARGS__})) << #EmitExpr;                    \
  } while (0)

TEST(JitEmitterTest, GPMoves) {
  // movabs rax, 0x123456789ABCDEF0 — fixed 10-byte form (the compiler
  // patches pool addresses into the trailing imm64; the length is part of
  // the contract).
  EXPECT_ENCODING(movRegImm64(GPR::RAX, 0x123456789ABCDEF0ull),
                  0x48, 0xB8, 0xF0, 0xDE, 0xBC, 0x9A, 0x78, 0x56, 0x34, 0x12);
  EXPECT_ENCODING(movRegImm32(GPR::RDX, 7), 0xBA, 0x07, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movRegReg(GPR::RBX, GPR::RDI), 0x48, 0x8B, 0xDF);
  // mov rax, [rbx + 0x40] — always the disp32 form.
  EXPECT_ENCODING(movRegMem(GPR::RAX, GPR::RBX, 0x40),
                  0x48, 0x8B, 0x83, 0x40, 0x00, 0x00, 0x00);
  // R12 base needs REX.B plus the SIB escape byte.
  EXPECT_ENCODING(movRegMem(GPR::RAX, GPR::R12, 8),
                  0x49, 0x8B, 0x84, 0x24, 0x08, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movMemReg(GPR::RBX, 0x10, GPR::RCX),
                  0x48, 0x89, 0x8B, 0x10, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movRegMem32(GPR::RAX, GPR::RBX, 4),
                  0x8B, 0x83, 0x04, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movsxdRegMem(GPR::RAX, GPR::RBX, 4),
                  0x48, 0x63, 0x83, 0x04, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movzx8RegMem(GPR::RAX, GPR::R12, 0),
                  0x41, 0x0F, 0xB6, 0x84, 0x24, 0x00, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movzx8RegReg(GPR::RAX, GPR::RAX), 0x0F, 0xB6, 0xC0);
  EXPECT_ENCODING(movMemReg8(GPR::R12, 0, GPR::RAX),
                  0x41, 0x88, 0x84, 0x24, 0x00, 0x00, 0x00, 0x00);
}

TEST(JitEmitterTest, GPArithmetic) {
  EXPECT_ENCODING(addRegMem(GPR::RAX, GPR::RBX, 8),
                  0x48, 0x03, 0x83, 0x08, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(subRegMem(GPR::RAX, GPR::RBX, 8),
                  0x48, 0x2B, 0x83, 0x08, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(imulRegMem(GPR::RAX, GPR::RBX, 8),
                  0x48, 0x0F, 0xAF, 0x83, 0x08, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(imulRegRegImm32(GPR::RAX, GPR::RAX, 8),
                  0x48, 0x69, 0xC0, 0x08, 0x00, 0x00, 0x00);
  // 32-bit forms drop REX.W (i32 lanes are 4-byte slots).
  EXPECT_ENCODING(addRegMem_32(GPR::RAX, GPR::RBX, 8),
                  0x03, 0x83, 0x08, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(imulRegMem_32(GPR::RAX, GPR::RBX, 8),
                  0x0F, 0xAF, 0x83, 0x08, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(subRegImm32(GPR::RSP, 8),
                  0x48, 0x81, 0xEC, 0x08, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(addRegImm32(GPR::RSP, 8),
                  0x48, 0x81, 0xC4, 0x08, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(andRegImm32(GPR::RAX, 1),
                  0x48, 0x81, 0xE0, 0x01, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(cmpRegReg(GPR::RAX, GPR::RCX), 0x48, 0x3B, 0xC1);
  EXPECT_ENCODING(cmpRegMem(GPR::RAX, GPR::RBX, 24),
                  0x48, 0x3B, 0x83, 0x18, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(testRegReg(GPR::RAX, GPR::RAX), 0x48, 0x85, 0xC0);
  // add qword [rbx + 0], imm32 — the step-accounting form.
  EXPECT_ENCODING(addMemImm32(GPR::RBX, 0, 5),
                  0x48, 0x81, 0x83, 0x00, 0x00, 0x00, 0x00,
                  0x05, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(cmpMemImm32(GPR::RBX, 48, 0),
                  0x48, 0x81, 0xBB, 0x30, 0x00, 0x00, 0x00,
                  0x00, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movMemImm32(GPR::RBX, 32, 3),
                  0x48, 0xC7, 0x83, 0x20, 0x00, 0x00, 0x00,
                  0x03, 0x00, 0x00, 0x00);
}

TEST(JitEmitterTest, SetccAndControlFlow) {
  EXPECT_ENCODING(setcc(Cond::NE, GPR::RAX), 0x0F, 0x95, 0xC0);
  EXPECT_ENCODING(setcc(Cond::L, GPR::RAX), 0x0F, 0x9C, 0xC0);
  EXPECT_ENCODING(callReg(GPR::RAX), 0xFF, 0xD0);
  EXPECT_ENCODING(push(GPR::RBX), 0x53);
  EXPECT_ENCODING(push(GPR::R12), 0x41, 0x54);
  EXPECT_ENCODING(pop(GPR::R12), 0x41, 0x5C);
  EXPECT_ENCODING(ret(), 0xC3);
}

TEST(JitEmitterTest, BranchFixups) {
  X86Emitter E;
  size_t Fix = E.jccFixup(Cond::E); // jz rel32, rel initially 0
  EXPECT_EQ(E.code(), bytes({0x0F, 0x84, 0x00, 0x00, 0x00, 0x00}));
  size_t Target = E.label();
  E.ret();
  E.patchRel32(Fix, Target);
  // Target immediately follows the jcc: rel32 stays 0.
  EXPECT_EQ(E.code()[2], 0x00);

  X86Emitter E2;
  size_t Loop = E2.label();
  E2.ret();        // 1 byte
  E2.jmpTo(Loop);  // jmp rel32 back over itself: -(5 + 1) = -6
  EXPECT_EQ(E2.code(), bytes({0xC3, 0xE9, 0xFA, 0xFF, 0xFF, 0xFF}));

  // Backward jcc (the bounds-check walk's loop edge): jnz rel32 back over
  // a 1-byte body, rel = 0 - (1 + 2 + 4) = -7.
  X86Emitter E3;
  size_t Top = E3.label();
  E3.ret();
  E3.jccTo(Cond::NE, Top);
  EXPECT_EQ(E3.code(), bytes({0xC3, 0x0F, 0x85, 0xF9, 0xFF, 0xFF, 0xFF}));
}

TEST(JitEmitterTest, ScalarSSE) {
  EXPECT_ENCODING(movssLoad(XMM::XMM0, GPR::RBX, 4),
                  0xF3, 0x0F, 0x10, 0x83, 0x04, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movsdStore(GPR::RBX, 8, XMM::XMM0),
                  0xF2, 0x0F, 0x11, 0x83, 0x08, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(addss(XMM::XMM0, GPR::RBX, 16),
                  0xF3, 0x0F, 0x58, 0x83, 0x10, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(divsd(XMM::XMM0, GPR::RBX, 16),
                  0xF2, 0x0F, 0x5E, 0x83, 0x10, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(sqrtss(XMM::XMM1, GPR::RBX, 0),
                  0xF3, 0x0F, 0x51, 0x8B, 0x00, 0x00, 0x00, 0x00);
}

TEST(JitEmitterTest, PackedSSE) {
  EXPECT_ENCODING(movupsLoad(XMM::XMM0, GPR::R12, 0),
                  0x41, 0x0F, 0x10, 0x84, 0x24, 0x00, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movapsStore(GPR::RBX, 16, XMM::XMM0),
                  0x0F, 0x29, 0x83, 0x10, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movapsReg(XMM::XMM2, XMM::XMM0), 0x0F, 0x28, 0xD0);
  EXPECT_ENCODING(addps(XMM::XMM0, GPR::RBX, 32),
                  0x0F, 0x58, 0x83, 0x20, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(mulps(XMM::XMM0, GPR::RBX, 32),
                  0x0F, 0x59, 0x83, 0x20, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(subps(XMM::XMM0, GPR::RBX, 32),
                  0x0F, 0x5C, 0x83, 0x20, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(addpd(XMM::XMM0, GPR::RBX, 32),
                  0x66, 0x0F, 0x58, 0x83, 0x20, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(sqrtps(XMM::XMM0, GPR::RBX, 0),
                  0x0F, 0x51, 0x83, 0x00, 0x00, 0x00, 0x00);
  // Integer forms.
  EXPECT_ENCODING(paddd(XMM::XMM0, GPR::RBX, 16),
                  0x66, 0x0F, 0xFE, 0x83, 0x10, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(psubq(XMM::XMM0, GPR::RBX, 16),
                  0x66, 0x0F, 0xFB, 0x83, 0x10, 0x00, 0x00, 0x00);
  // pmulld lives in the 0F 38 map (SSE4.1).
  EXPECT_ENCODING(pmulld(XMM::XMM1, GPR::RBX, 0),
                  0x66, 0x0F, 0x38, 0x40, 0x8B, 0x00, 0x00, 0x00, 0x00);
  // Blend trio for alternating ops.
  EXPECT_ENCODING(andps(XMM::XMM2, GPR::RAX, 0),
                  0x0F, 0x54, 0x90, 0x00, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(andnps(XMM::XMM3, XMM::XMM0), 0x0F, 0x55, 0xD8);
  EXPECT_ENCODING(orps(XMM::XMM2, XMM::XMM3), 0x0F, 0x56, 0xD3);
  EXPECT_ENCODING(xorps(XMM::XMM0, GPR::RAX, 0),
                  0x0F, 0x57, 0x80, 0x00, 0x00, 0x00, 0x00);
}

TEST(JitEmitterTest, ShuffleForms) {
  // pshufd xmm0, [rbx + 16], 0x4E — the whole-chunk shuffle permute; the
  // trailing imm8 follows the disp32.
  EXPECT_ENCODING(pshufdMem(XMM::XMM0, GPR::RBX, 16, 0x4E),
                  0x66, 0x0F, 0x70, 0x83, 0x10, 0x00, 0x00, 0x00, 0x4E);
  EXPECT_ENCODING(unpcklpd(XMM::XMM0, XMM::XMM2), 0x66, 0x0F, 0x14, 0xC2);
  EXPECT_ENCODING(unpcklps(XMM::XMM0, XMM::XMM2), 0x0F, 0x14, 0xC2);
  EXPECT_ENCODING(movlhps(XMM::XMM0, XMM::XMM2), 0x0F, 0x16, 0xC2);
}

TEST(JitEmitterTest, AccountingRegisterForms) {
  // The register-resident accounting state (r13-r15, xmm15) exercises the
  // REX.R/REX.B extended-register paths of every form the prologue,
  // edge accounting, and epilogue rely on.
  EXPECT_ENCODING(movRegMem(GPR::R13, GPR::RBX, 0),
                  0x4C, 0x8B, 0xAB, 0x00, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movMemReg(GPR::RBX, 0, GPR::R13),
                  0x4C, 0x89, 0xAB, 0x00, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(addRegImm32(GPR::R13, 5),
                  0x49, 0x81, 0xC5, 0x05, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(cmpRegReg(GPR::R13, GPR::R14), 0x4D, 0x3B, 0xEE);
  EXPECT_ENCODING(addsd(XMM::XMM15, GPR::RAX, 0),
                  0xF2, 0x44, 0x0F, 0x58, 0xB8, 0x00, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(movsdStore(GPR::RBX, 16, XMM::XMM15),
                  0xF2, 0x44, 0x0F, 0x11, 0xBB, 0x10, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(push(GPR::R13), 0x41, 0x55);
  EXPECT_ENCODING(pop(GPR::R15), 0x41, 0x5F);
}

TEST(JitEmitterTest, VEX256) {
  // vmovups ymm0, [rbx + 0]: 3-byte VEX, L=1, pp=0, map=0F, vvvv=1111.
  EXPECT_ENCODING(vmovupsLoad256(XMM::XMM0, GPR::RBX, 0),
                  0xC4, 0xE1, 0x7C, 0x10, 0x83, 0x00, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(vmovupsStore256(GPR::RBX, 32, XMM::XMM0),
                  0xC4, 0xE1, 0x7C, 0x11, 0x83, 0x20, 0x00, 0x00, 0x00);
  // vaddps ymm0, ymm0, [rbx + 0]: vvvv = ~0 = 1111.
  EXPECT_ENCODING(vaddps256(XMM::XMM0, XMM::XMM0, GPR::RBX, 0),
                  0xC4, 0xE1, 0x7C, 0x58, 0x83, 0x00, 0x00, 0x00, 0x00);
  // vaddpd: pp=1 (66 prefix class).
  EXPECT_ENCODING(vaddpd256(XMM::XMM0, XMM::XMM0, GPR::RBX, 0),
                  0xC4, 0xE1, 0x7D, 0x58, 0x83, 0x00, 0x00, 0x00, 0x00);
  // vpmulld: 0F 38 map (mmmmm = 2).
  EXPECT_ENCODING(vpmulld256(XMM::XMM0, XMM::XMM0, GPR::RBX, 0),
                  0xC4, 0xE2, 0x7D, 0x40, 0x83, 0x00, 0x00, 0x00, 0x00);
  EXPECT_ENCODING(vzeroupper(), 0xC5, 0xF8, 0x77);
}

TEST(JitEmitterTest, RegRegForms) {
  // The reg-reg forms the register allocator leans on: when both operands
  // are register-resident the lowering emits these instead of the RM
  // frame-operand forms. Pool registers (r8-r11, xmm4-xmm14) exercise the
  // REX.R/REX.B extension bits.
  EXPECT_ENCODING(addRegReg(GPR::RAX, GPR::RCX), 0x48, 0x03, 0xC1);
  EXPECT_ENCODING(subRegReg(GPR::RAX, GPR::R9), 0x49, 0x2B, 0xC1);
  EXPECT_ENCODING(imulRegReg(GPR::RAX, GPR::R8), 0x49, 0x0F, 0xAF, 0xC0);
  EXPECT_ENCODING(addRegReg_32(GPR::R8, GPR::RAX), 0x44, 0x03, 0xC0);
  EXPECT_ENCODING(subRegReg_32(GPR::RDX, GPR::R11), 0x41, 0x2B, 0xD3);
  EXPECT_ENCODING(imulRegReg_32(GPR::RAX, GPR::RCX), 0x0F, 0xAF, 0xC1);
  // movsxd widens a cached i32 (zero-extended convention) for 64-bit
  // compares.
  EXPECT_ENCODING(movsxdRegReg(GPR::RAX, GPR::R10), 0x49, 0x63, 0xC2);

  // Scalar SSE reg-reg arithmetic.
  EXPECT_ENCODING(addss(XMM::XMM0, XMM::XMM1), 0xF3, 0x0F, 0x58, 0xC1);
  EXPECT_ENCODING(mulsd(XMM::XMM0, XMM::XMM5), 0xF2, 0x0F, 0x59, 0xC5);
  // Packed SSE reg-reg, pool registers above xmm7 need REX.B.
  EXPECT_ENCODING(addps(XMM::XMM4, XMM::XMM12), 0x41, 0x0F, 0x58, 0xE4);
  EXPECT_ENCODING(paddd(XMM::XMM4, XMM::XMM12),
                  0x66, 0x41, 0x0F, 0xFE, 0xE4);
  EXPECT_ENCODING(pmulld(XMM::XMM4, XMM::XMM12),
                  0x66, 0x41, 0x0F, 0x38, 0x40, 0xE4);
  // movaps register copy: how a cached value reaches the op accumulator.
  EXPECT_ENCODING(movapsReg(XMM::XMM0, XMM::XMM14),
                  0x41, 0x0F, 0x28, 0xC6);
}

TEST(JitEmitterTest, VEX256RegReg) {
  // VEX.256 three-operand reg-reg forms (YMM-resident operands). vvvv
  // carries the inverted first source; modrm the destination and second
  // source.
  EXPECT_ENCODING(vaddps256(XMM::XMM0, XMM::XMM1, XMM::XMM2),
                  0xC4, 0xE1, 0x74, 0x58, 0xC2);
  EXPECT_ENCODING(vpaddd256(XMM::XMM4, XMM::XMM5, XMM::XMM6),
                  0xC4, 0xE1, 0x55, 0xFE, 0xE6);
  // 0F 38 map escape (mmmmm = 2).
  EXPECT_ENCODING(vpmulld256(XMM::XMM0, XMM::XMM1, XMM::XMM2),
                  0xC4, 0xE2, 0x75, 0x40, 0xC2);
  // ymm-to-ymm copy; source above ymm7 clears the ~B bit.
  EXPECT_ENCODING(vmovapsReg256(XMM::XMM4, XMM::XMM9),
                  0xC4, 0xC1, 0x7C, 0x28, 0xE1);
}

TEST(JitEmitterTest, ResidentVsFrameSequenceLength) {
  // The allocator's payoff, pinned at the byte level: the same packed add
  // through the frame (load / add-RM / store) versus register-resident
  // operands (single reg-reg add). Every byte is pinned so the sequences
  // double as goldens for the two lowering shapes.
  X86Emitter Frame;
  Frame.movapsLoad(XMM::XMM0, GPR::RBX, 0x40);
  Frame.addps(XMM::XMM0, GPR::RBX, 0x50);
  Frame.movapsStore(GPR::RBX, 0x60, XMM::XMM0);
  EXPECT_EQ(Frame.code(),
            bytes({0x0F, 0x28, 0x83, 0x40, 0x00, 0x00, 0x00,     // movaps
                   0x0F, 0x58, 0x83, 0x50, 0x00, 0x00, 0x00,     // addps RM
                   0x0F, 0x29, 0x83, 0x60, 0x00, 0x00, 0x00}));  // store

  X86Emitter Resident;
  Resident.movapsReg(XMM::XMM0, XMM::XMM4); // cached LHS -> accumulator
  Resident.addps(XMM::XMM0, XMM::XMM5);     // cached RHS, reg-reg
  EXPECT_EQ(Resident.code(),
            bytes({0x0F, 0x28, 0xC4, 0x0F, 0x58, 0xC5}));
  EXPECT_LT(Resident.size(), Frame.size());
}

TEST(JitEmitterTest, CodeBufferWXLifecycle) {
  CodeBuffer CB;
  EXPECT_FALSE(static_cast<bool>(CB));
  EXPECT_FALSE(CB.install({})); // empty stream refused

  // mov eax, 123; ret — then execute it through the RX mapping.
  X86Emitter E;
  E.movRegImm32(GPR::RAX, 123);
  E.ret();
  ASSERT_TRUE(CB.install(E.code()));
  EXPECT_TRUE(static_cast<bool>(CB));
  EXPECT_EQ(CB.codeSize(), E.size());
  EXPECT_GE(CB.mappedSize(), CB.codeSize());
  auto Fn = reinterpret_cast<int (*)()>(const_cast<void *>(CB.entry()));
  EXPECT_EQ(Fn(), 123);

  // Move steals the mapping.
  CodeBuffer CB2 = std::move(CB);
  EXPECT_TRUE(static_cast<bool>(CB2));
  EXPECT_FALSE(static_cast<bool>(CB));
  auto Fn2 = reinterpret_cast<int (*)()>(const_cast<void *>(CB2.entry()));
  EXPECT_EQ(Fn2(), 123);
}

} // namespace
