//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the SLP vectorizer. One code base implements all three
/// configurations evaluated in the paper:
///  - SLP:   LLVM-style bottom-up SLP with per-instruction commutative
///           operand reordering.
///  - LSLP:  SLP + Multi-Nodes over a single commutative opcode with
///           look-ahead operand reordering (Porpodas et al. [9]).
///  - SNSLP: LSLP generalized to Super-Nodes that also absorb the inverse
///           element of the operator family (this paper).
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SLP_VECTORIZERCONFIG_H
#define SNSLP_SLP_VECTORIZERCONFIG_H

#include "costmodel/TargetCostModel.h"

namespace snslp {

class StatsRegistry;

/// The vectorizer configurations compared in the paper's evaluation.
/// O3 means "all vectorizers disabled" (the paper's baseline).
enum class VectorizerMode { O3, SLP, LSLP, SNSLP };

/// Returns the display name used by benchmarks ("O3", "SLP", ...).
const char *getModeName(VectorizerMode Mode);

/// Tunables for one vectorizer run.
struct VectorizerConfig {
  VectorizerMode Mode = VectorizerMode::SNSLP;

  /// Vectorization factors to try, largest first; bounded by the target's
  /// register width for the element type.
  unsigned MaxVF = 4;
  unsigned MinVF = 2;

  /// Look-ahead recursion depth for operand-reordering scores (LSLP Sec. 4;
  /// used by LSLP and SNSLP modes).
  unsigned LookAheadDepth = 2;

  /// Memoize look-ahead scores on (L, R, depth) for the lifetime of one
  /// graph build (invalidated on IR mutation). Scores are identical either
  /// way; the toggle exists for the ablation benchmark and the equivalence
  /// tests.
  bool EnableLookAheadMemo = true;

  /// Maximum use-def recursion depth while growing the SLP graph.
  unsigned MaxGraphDepth = 16;

  /// Cost threshold: vectorize when the graph cost is strictly below this
  /// (the paper: "compared against a threshold (usually 0)").
  int CostThreshold = 0;

  /// Also seed from horizontal reduction roots. On by default: the paper
  /// enables -slp-vectorize-hor for both LLVM and SN-SLP (Section V).
  bool EnableReductionSeeds = true;

  /// Extension beyond the paper (off by default): vectorize load groups
  /// that are a permutation of consecutive addresses as one vector load
  /// plus a lane shuffle.
  bool EnableLoadShuffles = false;

  /// Target machine parameters.
  TargetParams Target;

  /// Optional counter sink. When set, the vectorizer records pass-level
  /// counters ("lookahead-cache-hits", "lookahead-cache-misses", ...) into
  /// it at the end of each run. Not owned.
  StatsRegistry *Stats = nullptr;

  /// \name Mode-derived feature queries.
  /// @{
  bool enableSuperNode() const {
    return Mode == VectorizerMode::LSLP || Mode == VectorizerMode::SNSLP;
  }
  bool allowInverseOps() const { return Mode == VectorizerMode::SNSLP; }
  bool enabled() const { return Mode != VectorizerMode::O3; }
  /// @}
};

} // namespace snslp

#endif // SNSLP_SLP_VECTORIZERCONFIG_H
