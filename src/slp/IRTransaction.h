//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRTransaction: a function-level checkpoint/rollback boundary.
///
/// The SLP vectorizer's Super-Node probe massages scalar IR *before* the
/// cost decision, and the code generator mutates the function when a graph
/// commits. A defect anywhere in that span — a verifier failure, a blown
/// resource budget, an injected fault — used to corrupt the function with
/// no way back. An IRTransaction snapshots the function on open (the
/// existing printer, whose output the parser accepts verbatim) and can
/// restore it bit-identically in printed form:
///
///   IRTransaction Txn(F);            // checkpoint
///   ... speculative vectorization ...
///   if (wentWrong) Txn.rollback();   // F is back to the checkpoint
///   else           Txn.refresh();    // new checkpoint for the next span
///
/// The common path (nothing went wrong) pays one print on open and a cheap
/// in-memory delta check (instruction count, then text compare) on
/// modified(); rollback is the rare path and pays a parse + body
/// transplant (Function::takeBody). Print -> parse -> print is a fixpoint
/// (checked by ParserPrinterTest and the fuzz oracle's round-trip mode),
/// so a rolled-back function reprints exactly as its snapshot.
///
/// See docs/robustness.md.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SLP_IRTRANSACTION_H
#define SNSLP_SLP_IRTRANSACTION_H

#include <cstddef>
#include <string>

namespace snslp {

class Function;

/// Checkpoint/rollback for one Function. Non-copyable; keep one per
/// speculative span and refresh() between spans.
class IRTransaction {
public:
  /// Opens a transaction: snapshots \p F's printed form.
  explicit IRTransaction(Function &F);

  IRTransaction(const IRTransaction &) = delete;
  IRTransaction &operator=(const IRTransaction &) = delete;

  /// True when \p F's current body differs from the snapshot. Fast path:
  /// an instruction-count compare short-circuits the text compare.
  bool modified() const;

  /// Restores \p F to the snapshot. Returns false (and fills \p Err when
  /// non-null) only if the snapshot fails to re-parse — which would mean
  /// the printer/parser invariant itself is broken; callers treat that as
  /// fatal. On success \p F reprints exactly as the snapshot text.
  ///
  /// All Instruction/BasicBlock pointers into \p F are invalidated.
  bool rollback(std::string *Err = nullptr);

  /// Re-snapshots the current state (commit point: the previous checkpoint
  /// is discarded and the next rollback returns here).
  void refresh();

  /// The printed form captured at the last open/refresh.
  const std::string &snapshotText() const { return Snapshot; }

private:
  Function &F;
  std::string Snapshot;
  size_t SnapshotInstCount = 0;
};

} // namespace snslp

#endif // SNSLP_SLP_IRTRANSACTION_H
