//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: the two extensions beyond the paper's core algorithm —
/// horizontal-reduction seeds (the paper's -slp-vectorize-hor setting,
/// on by default) and shuffled load groups / shuffle reuse (off by
/// default). Reported as SN-SLP simulated-cycle speedups over O3 across
/// the kernel suite.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/TextTable.h"

#include <iostream>

using namespace snslp;

int main() {
  std::cout << "=== Ablation: reduction seeds and load shuffles (SN-SLP) "
               "===\n\n";

  KernelRunner Runner;
  TextTable Table;
  Table.setHeader({"kernel", "core only", "+reductions (default)",
                   "+load shuffles", "+both"});

  for (const Kernel &K : kernelRegistry()) {
    if (!K.InTableI)
      continue;
    CompiledKernel O3 = Runner.compile(K, VectorizerMode::O3);
    KernelData BaseData(K.Buffers, K.N, 5);
    double BaseCycles = Runner.execute(O3, BaseData).Cycles;

    auto Measure = [&](bool Reductions, bool Shuffles) {
      VectorizerConfig Cfg;
      Cfg.EnableReductionSeeds = Reductions;
      Cfg.EnableLoadShuffles = Shuffles;
      // Accept break-even graphs so shuffle-enabled kernels that reach
      // cost 0 (e.g. milc_cmul) show their dynamic behaviour.
      Cfg.CostThreshold = Shuffles ? 1 : 0;
      CompiledKernel CK = Runner.compile(K, VectorizerMode::SNSLP, Cfg);
      KernelData Data(K.Buffers, K.N, 5);
      return BaseCycles / Runner.execute(CK, Data).Cycles;
    };

    Table.addRow({K.Name, TextTable::formatDouble(Measure(false, false)),
                  TextTable::formatDouble(Measure(true, false)),
                  TextTable::formatDouble(Measure(false, true)),
                  TextTable::formatDouble(Measure(true, true))});
  }
  Table.print(std::cout);

  std::cout << "\nReduction seeds matter for the dot-product kernel; load\n"
               "shuffles lift the permuted-load controls (the complex\n"
               "multiply reaches break-even and is committed only at the\n"
               "relaxed threshold shown in the last two columns).\n";
  return 0;
}
