# Empty compiler generated dependencies file for dynamic_coverage.
# This may be replaced when dependencies are built.
