//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual IR printing. The output is accepted verbatim by the Parser, so
/// print→parse round-trips are exact (a property the test suite checks).
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_IR_IRPRINTER_H
#define SNSLP_IR_IRPRINTER_H

#include <ostream>
#include <string>

namespace snslp {

class Function;
class Instruction;
class Module;
class Value;

/// Prints \p M as parseable text.
void printModule(const Module &M, std::ostream &OS);

/// Prints one function. Unnamed values are printed with synthesized "%tN"
/// slots (the function itself is not modified).
void printFunction(const Function &F, std::ostream &OS);

/// Returns the textual form of \p M.
std::string toString(const Module &M);

/// Returns the textual form of \p F.
std::string toString(const Function &F);

/// Returns a short one-line description of \p V for diagnostics, e.g.
/// "%x = fadd f64 %a, %b" or "42".
std::string toString(const Value &V);

} // namespace snslp

#endif // SNSLP_IR_IRPRINTER_H
