file(REMOVE_RECURSE
  "CMakeFiles/example_motivating_example.dir/motivating_example.cpp.o"
  "CMakeFiles/example_motivating_example.dir/motivating_example.cpp.o.d"
  "example_motivating_example"
  "example_motivating_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_motivating_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
