//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled, opt-in RTTI in the style of LLVM's llvm/Support/Casting.h.
///
/// Classes participate by providing a static `classof(const Base *)`
/// predicate. `isa<>`, `cast<>` and `dyn_cast<>` then work exactly like
/// their LLVM counterparts:
///
/// \code
///   if (auto *BO = dyn_cast<BinaryOperator>(V))
///     use(BO->getOpcode());
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SUPPORT_CASTING_H
#define SNSLP_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace snslp {

/// Returns true if \p Val is an instance of class \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Returns true if \p Val is non-null and an instance of \p To.
template <typename To, typename From> bool isa_and_nonnull(const From *Val) {
  return Val && isa<To>(Val);
}

/// Checked downcast: asserts that \p Val is-a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast that returns null when \p Val is not an instance of \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// \name Reference forms (SFINAE-guarded so pointer calls stay unambiguous).
/// @{
template <typename To, typename From,
          typename = std::enable_if_t<!std::is_pointer_v<From>>>
bool isa(const From &Val) {
  return To::classof(&Val);
}

template <typename To, typename From,
          typename = std::enable_if_t<!std::is_pointer_v<From>>>
To &cast(From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To &>(Val);
}

template <typename To, typename From,
          typename = std::enable_if_t<!std::is_pointer_v<From>>>
const To &cast(const From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To &>(Val);
}

template <typename To, typename From,
          typename = std::enable_if_t<!std::is_pointer_v<From>>>
To *dyn_cast(From &Val) {
  return isa<To>(Val) ? &static_cast<To &>(Val) : nullptr;
}

template <typename To, typename From,
          typename = std::enable_if_t<!std::is_pointer_v<From>>>
const To *dyn_cast(const From &Val) {
  return isa<To>(Val) ? &static_cast<const To &>(Val) : nullptr;
}
/// @}

/// dyn_cast<> that also tolerates a null input.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return isa_and_nonnull<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return isa_and_nonnull<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace snslp

#endif // SNSLP_SUPPORT_CASTING_H
