//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR structural and semantic verification. Run after every transformation
/// in tests; catches broken use lists, malformed CFGs, type errors and SSA
/// dominance violations.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_IR_VERIFIER_H
#define SNSLP_IR_VERIFIER_H

#include <string>
#include <vector>

namespace snslp {

class Function;
class Module;

/// Verifies \p F. Returns true when well-formed; otherwise returns false
/// and appends human-readable diagnostics to \p Errors (when non-null).
bool verifyFunction(const Function &F, std::vector<std::string> *Errors =
                                           nullptr);

/// Verifies every function in \p M.
bool verifyModule(const Module &M, std::vector<std::string> *Errors = nullptr);

} // namespace snslp

#endif // SNSLP_IR_VERIFIER_H
