//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The snslpd wire protocol: length-prefixed frames over a Unix domain
/// socket, carrying a text request (config headers + module text) and a
/// text response (status headers + vectorized module or positioned error).
///
/// Frame layout (both directions):
///   byte 0..3   magic "SNS1"
///   byte 4..7   payload length, little-endian uint32 (capped, see
///               kMaxFrameBytes)
///   byte 8..    payload
///
/// Request payload (text):
///   snslp-request v1\n
///   mode: SN-SLP\n           (O3|SLP|LSLP|SN-SLP; "SNSLP" is accepted
///                             as an alias on decode)
///   entry: <name>\n          (optional)
///   run: 1\n                 (optional: execute after compiling)
///   elems: 16\n              (optional: elements per synthesized buffer)
///   data-seed: 1\n           (optional: deterministic buffer contents)
///   max-steps: N\n           (optional: interpreter fuel)
///   strict-budgets: 1\n      (optional)
///   deadline-ms: N\n         (optional: per-request deadline, measured
///                             from decode; expired requests are shed with
///                             the retryable `deadline-exceeded` code)
///   max-graph-nodes: N\n     (optional per-request resource budgets)
///   max-lookahead-evals: N\n
///   max-supernode-permutations: N\n
///   module: <K>\n            (byte count of the body; must be last)
///   \n
///   <K bytes of module text>
///
/// Response payload (text):
///   snslp-response v1\n
///   status: ok|error\n
///   ... key/value result headers (see ServiceResponse fields) ...
///   body: <K>\n
///   \n
///   <K bytes: vectorized module text (ok) or error message (error)>
///
/// Parsing is strict: unknown header keys are rejected, the body length
/// must match exactly, and a malformed frame/payload yields a positioned
/// error response rather than a dropped connection. See docs/service.md.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SERVICE_PROTOCOL_H
#define SNSLP_SERVICE_PROTOCOL_H

#include "service/CompileService.h"

#include <cstdint>
#include <string>

namespace snslp {
namespace service {

/// Upper bound on a frame payload (module texts are small; a runaway
/// length prefix must not allocate gigabytes).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// A parsed client request.
struct ServiceRequest {
  std::string ModuleText;
  std::string Entry;
  VectorizerMode Mode = VectorizerMode::SNSLP;
  bool Run = false;
  /// Introspection request (`stats: 1`): the daemon answers with its
  /// per-shard counter dump as the body instead of compiling anything.
  /// The module text is ignored (conventionally empty).
  bool StatsOnly = false;
  /// `want-body: 0` suppresses the vectorized-module body on success —
  /// the load generator's bandwidth knob. Error bodies are always sent.
  bool WantBody = true;
  uint64_t Elems = 16;
  uint64_t DataSeed = 1;
  uint64_t MaxSteps = 1ull << 24;
  bool StrictBudgets = false;
  /// Per-request deadline in milliseconds (0 = none); see
  /// CompileRequest::DeadlineMillis.
  uint64_t DeadlineMillis = 0;
  ResourceBudgets Budgets;
};

/// A daemon response, before/after wire encoding.
struct ServiceResponse {
  bool Ok = false;
  std::string ErrorCodeName; ///< Pinned spelling ("parse-error", ...).
  /// Error only: the failure is transient load-shedding (`overloaded`,
  /// `deadline-exceeded`) and an identical retry with backoff is expected
  /// to succeed. Encoded as a `retryable:` header so clients need no
  /// hard-coded code list.
  bool Retryable = false;
  std::string Body;          ///< Vectorized module text, or error message.
  /// \name Compile detail (ok only).
  /// @{
  std::string Cache; ///< "hit" | "miss" | "coalesced" | "disk"
  std::string KeyHex;
  uint64_t GraphsVectorized = 0;
  uint64_t RemarkCount = 0;
  /// @}
  /// \name Execution detail (ok + run only).
  /// @{
  bool DidRun = false;
  bool RunOk = false;
  bool HasReturnInt = false;
  bool HasReturnFP = false;
  int64_t ReturnInt = 0;
  double ReturnFP = 0.0;
  uint64_t Steps = 0;
  double Cycles = 0.0;
  std::string MemHashHex; ///< FNV-64 of every synthesized buffer post-run.
  std::string RunError;   ///< Trap diagnostic when !RunOk.
  /// @}
};

/// Parses a vectorizer-mode spelling as used on the wire: the canonical
/// getModeName() forms ("O3" | "SLP" | "LSLP" | "SN-SLP") plus the
/// hyphen-less alias "SNSLP". Returns false on unknown input.
bool parseModeName(const std::string &Name, VectorizerMode &Mode);

/// \name Payload (text) encoding.
/// @{
std::string encodeRequest(const ServiceRequest &Req);
/// Returns false and fills \p Err ("line N: ..." positioned within the
/// header block) on malformed input.
bool decodeRequest(const std::string &Payload, ServiceRequest &Req,
                   std::string *Err);
std::string encodeResponse(const ServiceResponse &Resp);
bool decodeResponse(const std::string &Payload, ServiceResponse &Resp,
                    std::string *Err);
/// @}

/// \name Frame I/O over a connected socket fd.
/// Handles short reads/writes (large frames routinely exceed the socket
/// buffer), EINTR, and — for non-blocking fds — EAGAIN/EWOULDBLOCK by
/// poll(2)ing for readiness. Return false on EOF/short frame/oversized
/// length (filling \p Err when non-null).
/// @{
bool writeFrame(int Fd, const std::string &Payload, std::string *Err);
bool readFrame(int Fd, std::string &Payload, std::string *Err);
/// @}

/// Translates the wire request into the service's compile request
/// (mode, budgets, strictness, deadline; no I/O).
CompileRequest toCompileRequest(const ServiceRequest &Req);

/// Builds the wire response for a settled compile: cache provenance
/// headers plus, when \p Req.Run, the deterministic execution (one
/// 8*Elems-byte buffer per leading pointer argument filled from DataSeed;
/// a trailing integer argument receives Elems) with its mem-hash. Pure
/// w.r.t. the service — callable from any worker thread, which is how the
/// sharded daemon keeps run+encode off the reactor.
ServiceResponse buildResponse(Expected<CompiledUnit> &Unit,
                              const ServiceRequest &Req);

/// Serves one already-parsed request against \p Service synchronously:
/// compileSync(toCompileRequest(Req)) piped into buildResponse. The
/// response is always well-formed — failures come back positioned, never
/// as a dropped connection. (`stats: 1` requests are a front-end concern;
/// this helper compiles them like any other request.)
ServiceResponse serveRequest(CompileService &Service,
                             const ServiceRequest &Req);

} // namespace service
} // namespace snslp

#endif // SNSLP_SERVICE_PROTOCOL_H
