//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel suite standing in for the paper's Table I. The paper extracts
/// kernels from the C/C++ SPEC CPU2006 benchmarks in which SN-SLP
/// activates; SPEC is not redistributable, so each kernel here reproduces
/// the *algebraic pattern class* of its SPEC origin (commutative chains
/// with inverse elements and per-lane permuted operand orders), plus
/// control kernels where vanilla SLP already succeeds or nothing
/// vectorizes. See DESIGN.md for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_KERNELS_KERNEL_H
#define SNSLP_KERNELS_KERNEL_H

#include "kernels/KernelData.h"

#include <functional>
#include <string>
#include <vector>

namespace snslp {

/// What the paper's results lead us to expect from a kernel; recorded so
/// tests and EXPERIMENTS.md can check the reproduced *shape* of Fig. 5.
enum class KernelExpectation {
  SNWins,        ///< Only SN-SLP vectorizes (or vectorizes much more).
  MultiNodeWins, ///< LSLP's Multi-Node suffices; LSLP and SN-SLP tie.
  AllEqual,      ///< Plain SLP already vectorizes; all modes tie.
  NoneWin,       ///< No configuration finds profitable vector code.
};

/// One benchmark kernel: IR text + buffers + a C++ reference
/// implementation used for differential correctness checking.
struct Kernel {
  std::string Name;        ///< IR function name, e.g. "milc_force".
  std::string Origin;      ///< SPEC benchmark the pattern is drawn from.
  std::string PatternNote; ///< Short description of the algebraic pattern.
  std::string IRText;      ///< The kernel as parseable IR.
  std::vector<BufferSpec> Buffers; ///< In order of the pointer arguments.
  size_t N = 1024;         ///< Default problem size (elements).
  unsigned Unroll = 2;     ///< Statements per loop iteration (lanes).
  KernelExpectation Expectation = KernelExpectation::SNWins;
  /// FP comparison tolerance for differential tests (0 = exact/integers).
  double RelTol = 0.0;
  /// Computes the expected outputs in place over a KernelData.
  std::function<void(KernelData &)> Reference;
  /// Excluded from Table I (e.g. the scalar filler used to compose the
  /// whole-benchmark programs of Figs. 8-10).
  bool InTableI = true;
};

/// All kernels, motivating examples first (the paper includes them in the
/// kernel evaluation "for completeness").
const std::vector<Kernel> &kernelRegistry();

/// Finds a kernel by name; null when absent.
const Kernel *findKernel(const std::string &Name);

} // namespace snslp

#endif // SNSLP_KERNELS_KERNEL_H
