//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant folding: evaluates instructions whose operands are all
/// constants and replaces them with the result. Part of the scalar
/// pipeline that runs around the vectorizer (the paper's kernels are
/// compiled at -O3, where such cleanups always run).
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_PASSES_CONSTANTFOLDING_H
#define SNSLP_PASSES_CONSTANTFOLDING_H

#include <cstddef>

namespace snslp {

class Constant;
class Function;
class Instruction;

/// Attempts to fold \p Inst to a constant. Returns null when any operand
/// is non-constant or the instruction kind has side effects.
Constant *tryConstantFold(const Instruction &Inst);

/// Folds every foldable instruction in \p F (to a fixpoint) and deletes
/// the dead originals. Returns the number of instructions folded.
size_t runConstantFolding(Function &F);

} // namespace snslp

#endif // SNSLP_PASSES_CONSTANTFOLDING_H
