file(REMOVE_RECURSE
  "CMakeFiles/table1_kernels.dir/table1_kernels.cpp.o"
  "CMakeFiles/table1_kernels.dir/table1_kernels.cpp.o.d"
  "table1_kernels"
  "table1_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
