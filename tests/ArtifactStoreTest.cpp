//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the crash-safe persistent artifact store
/// (src/service/ArtifactStore.h): atomic publication, checksum-verified
/// loads, quarantine of truncated/bit-flipped/misfiled entries, temp-file
/// sweeping, and the end-to-end CompileService contract — a restarted
/// service serves prior compiles as `disk` hits with identical text, and
/// a corrupt entry is recompiled from source and re-published, never
/// served and never fatal.
///
//===----------------------------------------------------------------------===//

#include "service/ArtifactStore.h"
#include "service/CompileService.h"
#include "support/Statistic.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

using namespace snslp;

namespace {

namespace fs = std::filesystem;

/// A fresh store directory per test, removed on teardown.
class ArtifactStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    std::string Templ =
        (fs::temp_directory_path() / "snslp-store-XXXXXX").string();
    ASSERT_NE(::mkdtemp(Templ.data()), nullptr);
    StoreDir = Templ;
  }
  void TearDown() override {
    std::error_code EC;
    fs::remove_all(StoreDir, EC);
  }

  std::string StoreDir;
};

ArtifactStore::Record record(const std::string &Entry = "kern") {
  ArtifactStore::Record Rec;
  Rec.EntryName = Entry;
  Rec.VectorizedText = "func @" + Entry + "() {\nentry:\n  ret void\n}\n";
  Rec.GraphsVectorized = 2;
  Rec.BudgetBailouts = 1;
  return Rec;
}

TEST_F(ArtifactStoreTest, DisabledStoreIsInert) {
  ArtifactStore S("");
  EXPECT_FALSE(S.enabled());
  EXPECT_FALSE(static_cast<bool>(S.prepare()));
  EXPECT_FALSE(S.store(digest128("k"), record()));
  ArtifactStore::Record Out;
  EXPECT_EQ(S.load(digest128("k"), Out), ArtifactStore::LoadState::Miss);
  EXPECT_EQ(S.sweepTemp(), 0u);
}

TEST_F(ArtifactStoreTest, RoundTripPreservesEveryField) {
  ArtifactStore S(StoreDir);
  ASSERT_FALSE(static_cast<bool>(S.prepare()));
  const Digest128 Key = digest128("round-trip");
  const ArtifactStore::Record In = record("roundtrip_fn");
  ASSERT_TRUE(S.store(Key, In));
  EXPECT_TRUE(fs::exists(S.entryPath(Key)));

  ArtifactStore::Record Out;
  ASSERT_EQ(S.load(Key, Out), ArtifactStore::LoadState::Hit);
  EXPECT_EQ(Out.EntryName, In.EntryName);
  EXPECT_EQ(Out.VectorizedText, In.VectorizedText);
  EXPECT_EQ(Out.GraphsVectorized, In.GraphsVectorized);
  EXPECT_EQ(Out.BudgetBailouts, In.BudgetBailouts);
  EXPECT_EQ(S.writes(), 1u);
  EXPECT_EQ(S.hits(), 1u);
  EXPECT_EQ(S.quarantined(), 0u);
}

TEST_F(ArtifactStoreTest, UnknownKeyIsAMiss) {
  ArtifactStore S(StoreDir);
  ASSERT_FALSE(static_cast<bool>(S.prepare()));
  ArtifactStore::Record Out;
  EXPECT_EQ(S.load(digest128("never stored"), Out),
            ArtifactStore::LoadState::Miss);
  EXPECT_EQ(S.misses(), 1u);
}

TEST_F(ArtifactStoreTest, TruncatedEntryIsQuarantinedThenMisses) {
  ArtifactStore S(StoreDir);
  ASSERT_FALSE(static_cast<bool>(S.prepare()));
  const Digest128 Key = digest128("truncate-me");
  ASSERT_TRUE(S.store(Key, record()));

  // Simulate a torn write on a non-atomic filesystem: keep only the first
  // half of the published bytes.
  const std::string Path = S.entryPath(Key);
  std::string Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    Bytes.assign(std::istreambuf_iterator<char>(In), {});
  }
  ASSERT_GT(Bytes.size(), 8u);
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size() / 2));
  }

  ArtifactStore::Record Rec;
  EXPECT_EQ(S.load(Key, Rec), ArtifactStore::LoadState::Corrupt);
  EXPECT_EQ(S.quarantined(), 1u);
  // Quarantined, not unlinked: the evidence moved aside...
  EXPECT_FALSE(fs::exists(Path));
  EXPECT_TRUE(
      fs::exists(fs::path(StoreDir) / "quarantine" / (Key.toHex() + ".art.0")));
  // ...and the poisoned key now misses (served from a recompile instead).
  EXPECT_EQ(S.load(Key, Rec), ArtifactStore::LoadState::Miss);
}

TEST_F(ArtifactStoreTest, BitFlipIsQuarantined) {
  ArtifactStore S(StoreDir);
  ASSERT_FALSE(static_cast<bool>(S.prepare()));
  const Digest128 Key = digest128("flip-me");
  ASSERT_TRUE(S.store(Key, record()));

  const std::string Path = S.entryPath(Key);
  std::string Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    Bytes.assign(std::istreambuf_iterator<char>(In), {});
  }
  Bytes[Bytes.size() - 3] ^= 0x40; // One flipped bit in the body.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  ArtifactStore::Record Rec;
  EXPECT_EQ(S.load(Key, Rec), ArtifactStore::LoadState::Corrupt);
  EXPECT_EQ(S.quarantined(), 1u);
}

TEST_F(ArtifactStoreTest, EntryRenamedUnderWrongKeyIsCorrupt) {
  // The checksum covers the embedded key line: a (checksum-intact) record
  // misfiled under another key's path must never be served as that key.
  ArtifactStore S(StoreDir);
  ASSERT_FALSE(static_cast<bool>(S.prepare()));
  const Digest128 Key = digest128("right-key");
  const Digest128 Wrong = digest128("wrong-key");
  ASSERT_TRUE(S.store(Key, record()));
  ASSERT_EQ(::rename(S.entryPath(Key).c_str(), S.entryPath(Wrong).c_str()),
            0);

  ArtifactStore::Record Rec;
  EXPECT_EQ(S.load(Wrong, Rec), ArtifactStore::LoadState::Corrupt);
  EXPECT_EQ(S.quarantined(), 1u);
}

TEST_F(ArtifactStoreTest, PrepareSweepsOrphanedTempFiles) {
  {
    ArtifactStore Seed(StoreDir);
    ASSERT_FALSE(static_cast<bool>(Seed.prepare()));
  }
  // A crashed writer left temp garbage behind.
  std::ofstream(fs::path(StoreDir) / "tmp" / "deadbeef.123.tmp")
      << "half-written";
  std::ofstream(fs::path(StoreDir) / "tmp" / "cafe.456.tmp") << "also";

  StatsRegistry Stats;
  ArtifactStore S(StoreDir, &Stats);
  ASSERT_FALSE(static_cast<bool>(S.prepare()));
  EXPECT_EQ(Stats.get("service.store.tmp-swept"), 2);
  EXPECT_TRUE(fs::is_empty(fs::path(StoreDir) / "tmp"));
}

// ---------------------------------------------------------------------------
// End-to-end through CompileService: restart persistence and the
// corrupt-entry recovery path.
// ---------------------------------------------------------------------------

std::string addsubModule() {
  std::string OS = "func @kern(ptr %a, ptr %b, ptr %c) {\nentry:\n";
  for (int I = 0; I < 4; ++I) {
    std::string S = std::to_string(I);
    OS += "  %pa" + S + " = gep i64, ptr %a, i64 " + S + "\n";
    OS += "  %pb" + S + " = gep i64, ptr %b, i64 " + S + "\n";
    OS += "  %pc" + S + " = gep i64, ptr %c, i64 " + S + "\n";
    OS += "  %la" + S + " = load i64, ptr %pa" + S + "\n";
    OS += "  %lb" + S + " = load i64, ptr %pb" + S + "\n";
  }
  for (int I = 0; I < 4; ++I) {
    std::string S = std::to_string(I);
    const char *Op = (I % 2 == 0) ? "add" : "sub";
    OS += "  %r" + S + " = " + Op + " i64 %la" + S + ", %lb" + S + "\n";
    OS += "  store i64 %r" + S + ", ptr %pc" + S + "\n";
  }
  OS += "  ret void\n}\n";
  return OS;
}

CompileRequest request() {
  CompileRequest Req;
  Req.ModuleText = addsubModule();
  return Req;
}

ServiceConfig storeConfig(const std::string &Dir,
                          StatsRegistry *Stats = nullptr) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.StoreDir = Dir;
  Cfg.Stats = Stats;
  return Cfg;
}

TEST_F(ArtifactStoreTest, ServiceRestartServesDiskHitWithIdenticalText) {
  std::string ColdText;
  Digest128 Key;
  {
    CompileService A(storeConfig(StoreDir));
    Expected<CompiledUnit> U = A.compileSync(request());
    ASSERT_TRUE(static_cast<bool>(U));
    EXPECT_FALSE(U->DiskHit);
    ColdText = U->Program->vectorizedText();
    Key = U->Program->digest();
  }
  EXPECT_TRUE(fs::exists(fs::path(StoreDir) / (Key.toHex() + ".art")));

  // "Restart": a fresh service (empty memory cache) on the same store.
  StatsRegistry Stats;
  CompileService B(storeConfig(StoreDir, &Stats));
  Expected<CompiledUnit> U = B.compileSync(request());
  ASSERT_TRUE(static_cast<bool>(U));
  EXPECT_TRUE(U->DiskHit);
  EXPECT_FALSE(U->CacheHit);
  EXPECT_EQ(U->Program->vectorizedText(), ColdText);
  EXPECT_EQ(U->Program->digest().toHex(), Key.toHex());
  // The pipeline was skipped; the remark trail says so.
  bool SawStoreHit = false;
  for (const Remark &R : U->Program->remarks())
    if (R.Decision == "service:store-hit")
      SawStoreHit = true;
  EXPECT_TRUE(SawStoreHit);
  EXPECT_EQ(Stats.get("service.store.hits"), 1);
  EXPECT_EQ(Stats.get("service.compiles"), 0);

  // The disk hit fulfilled the memory cache: the next request is a plain
  // cache hit on the very same unit.
  Expected<CompiledUnit> V = B.compileSync(request());
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_TRUE(V->CacheHit);
  EXPECT_EQ(V->Program.get(), U->Program.get());

  // And the rebuilt unit actually runs.
  std::vector<int64_t> Av = {1, 2, 3, 4}, Bv = {10, 20, 30, 40}, Cv(4, 0);
  CompiledProgram::RunRequest RR;
  RR.Args = {argPointer(Av.data()), argPointer(Bv.data()),
             argPointer(Cv.data())};
  RR.MemoryRanges = {{Av.data(), 32}, {Bv.data(), 32}, {Cv.data(), 32}};
  ExecutionResult Res = U->Program->run(RR);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Cv[0], 11);
  EXPECT_EQ(Cv[1], -18);
}

TEST_F(ArtifactStoreTest, StrictBudgetsStillFailsOnADiskHit) {
  CompileRequest Budgeted = request();
  Budgeted.Config.Budgets.MaxGraphNodes = 1; // Guaranteed scalar fallback.
  {
    CompileService A(storeConfig(StoreDir));
    Expected<CompiledUnit> U = A.compileSync(Budgeted);
    ASSERT_TRUE(static_cast<bool>(U));
    ASSERT_GE(U->Program->stats().BudgetBailouts, 1u);
  }

  // Strictness is a property of the request, not the persisted unit: the
  // disk hit must honour it exactly like a memory hit would.
  CompileService B(storeConfig(StoreDir));
  CompileRequest Strict = Budgeted;
  Strict.StrictBudgets = true;
  Expected<CompiledUnit> U = B.compileSync(Strict);
  ASSERT_FALSE(static_cast<bool>(U));
  EXPECT_EQ(U.errorCode(), ErrorCode::BudgetExhausted);
  U.takeError().consume();

  // Non-strict on the same service: the persisted scalar fallback serves.
  Expected<CompiledUnit> V = B.compileSync(Budgeted);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_GE(V->Program->stats().BudgetBailouts, 1u);
}

TEST_F(ArtifactStoreTest, CorruptEntryIsRecompiledAndRepublished) {
  std::string ColdText;
  Digest128 Key;
  {
    CompileService A(storeConfig(StoreDir));
    Expected<CompiledUnit> U = A.compileSync(request());
    ASSERT_TRUE(static_cast<bool>(U));
    ColdText = U->Program->vectorizedText();
    Key = U->Program->digest();
  }

  // Rot the published entry.
  const std::string Path =
      (fs::path(StoreDir) / (Key.toHex() + ".art")).string();
  std::string Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    Bytes.assign(std::istreambuf_iterator<char>(In), {});
  }
  Bytes[Bytes.size() / 2] ^= 0x01;
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  // The corrupt entry is never served and never fatal: quarantined,
  // recompiled from source, identical text, and re-published.
  StatsRegistry Stats;
  CompileService B(storeConfig(StoreDir, &Stats));
  Expected<CompiledUnit> U = B.compileSync(request());
  ASSERT_TRUE(static_cast<bool>(U));
  EXPECT_FALSE(U->DiskHit);
  EXPECT_EQ(U->Program->vectorizedText(), ColdText);
  EXPECT_EQ(Stats.get("service.store.quarantined"), 1);
  EXPECT_EQ(Stats.get("service.store.recompiles"), 1);
  EXPECT_EQ(Stats.get("service.compiles"), 1);
  EXPECT_TRUE(fs::exists(Path)); // Re-published by the recompile.

  // A third service restart is back on the warm path.
  CompileService C(storeConfig(StoreDir));
  Expected<CompiledUnit> V = C.compileSync(request());
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_TRUE(V->DiskHit);
  EXPECT_EQ(V->Program->vectorizedText(), ColdText);
}

} // namespace
