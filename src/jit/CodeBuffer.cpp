//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeBuffer.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define SNSLP_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace snslp {

CodeBuffer::~CodeBuffer() { reset(); }

CodeBuffer::CodeBuffer(CodeBuffer &&Other) noexcept
    : Base(Other.Base), MapBytes(Other.MapBytes), CodeBytes(Other.CodeBytes) {
  Other.Base = nullptr;
  Other.MapBytes = 0;
  Other.CodeBytes = 0;
}

CodeBuffer &CodeBuffer::operator=(CodeBuffer &&Other) noexcept {
  if (this != &Other) {
    reset();
    Base = Other.Base;
    MapBytes = Other.MapBytes;
    CodeBytes = Other.CodeBytes;
    Other.Base = nullptr;
    Other.MapBytes = 0;
    Other.CodeBytes = 0;
  }
  return *this;
}

void CodeBuffer::reset() {
#if SNSLP_HAVE_MMAP
  if (Base)
    ::munmap(Base, MapBytes);
#endif
  Base = nullptr;
  MapBytes = 0;
  CodeBytes = 0;
}

bool CodeBuffer::install(const std::vector<uint8_t> &Code) {
  reset();
  if (Code.empty())
    return false;
#if SNSLP_HAVE_MMAP
  long Page = ::sysconf(_SC_PAGESIZE);
  if (Page <= 0)
    Page = 4096;
  size_t Rounded =
      (Code.size() + static_cast<size_t>(Page) - 1) &
      ~(static_cast<size_t>(Page) - 1);
  // W^X step 1: writable, not executable.
  void *P = ::mmap(nullptr, Rounded, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return false;
  std::memcpy(P, Code.data(), Code.size());
  // W^X step 2: executable, not writable. On failure the region must not
  // be left behind half-installed.
  if (::mprotect(P, Rounded, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(P, Rounded);
    return false;
  }
  Base = P;
  MapBytes = Rounded;
  CodeBytes = Code.size();
  return true;
#else
  // No executable-memory primitive on this platform; the engine degrades
  // to bytecode (docs/jit.md, "fallback ladder").
  return false;
#endif
}

} // namespace snslp
