//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "service/CompileCache.h"

#include "support/Statistic.h"

#include <cassert>

using namespace snslp;

CompileCache::CompileCache(size_t ByteBudget, StatsRegistry *Stats)
    : ByteBudget(ByteBudget), Stats(Stats) {}

CompileCache::~CompileCache() {
  // A leader that never settled would leave waiters blocked; by contract
  // every MustCompile caller fulfills or fails before the cache dies.
  assert(Pending.empty() && "compile cache destroyed with in-flight keys");
}

CompileCache::Lookup CompileCache::lookupOrBegin(const Digest128 &Key) {
  std::unique_lock<std::mutex> Lock(Mu);

  // Fast path: retained unit.
  auto It = Map.find(Key);
  if (It != Map.end()) {
    LRU.splice(LRU.begin(), LRU, It->second); // touch
    ++Events.Hits;
    if (Stats)
      Stats->add("service.cache.hits");
    return Lookup{LookupState::Hit, It->second->Unit, false, {}};
  }

  // Single-flight: coalesce onto an in-flight leader.
  auto PIt = Pending.find(Key);
  if (PIt != Pending.end()) {
    std::shared_ptr<InFlight> Rec = PIt->second;
    ++Rec->Waiters;
    ++Events.Coalesced;
    if (Stats)
      Stats->add("service.cache.coalesced");
    Rec->Settled.wait(Lock, [&Rec] { return Rec->Done; });
    --Rec->Waiters;
    Lookup L;
    L.State = LookupState::Coalesced;
    L.Unit = Rec->Unit;
    L.LeaderFailed = Rec->Failed;
    L.Error = Rec->Error;
    L.ErrorCodeName = Rec->ErrorCodeName;
    return L;
  }

  // Miss: appoint the caller leader.
  Pending.emplace(Key, std::make_shared<InFlight>());
  ++Events.Misses;
  if (Stats)
    Stats->add("service.cache.misses");
  return Lookup{LookupState::MustCompile, nullptr, false, {}, {}};
}

std::shared_ptr<CompileCache::InFlight>
CompileCache::settleLocked(const Digest128 &Key, bool Failed, UnitPtr Unit,
                           const std::string &Error,
                           const std::string &ErrorCodeName) {
  auto PIt = Pending.find(Key);
  assert(PIt != Pending.end() && "settling a key that was never begun");
  std::shared_ptr<InFlight> Rec = PIt->second;
  Rec->Done = true;
  Rec->Failed = Failed;
  Rec->Unit = std::move(Unit);
  Rec->Error = Error;
  Rec->ErrorCodeName = ErrorCodeName;
  Pending.erase(PIt);
  Rec->Settled.notify_all();
  return Rec;
}

void CompileCache::fulfill(const Digest128 &Key, UnitPtr Unit) {
  assert(Unit && "fulfill needs a unit; use fail() for errors");
  std::lock_guard<std::mutex> Lock(Mu);
  settleLocked(Key, /*Failed=*/false, Unit, {}, {});

  // Retain in the LRU map (unless a racing leader for the same key already
  // inserted it — keep the existing entry in that case).
  if (Map.find(Key) != Map.end())
    return;
  size_t Bytes = Unit->cachedBytes();
  LRU.push_front(Entry{Key, std::move(Unit), Bytes});
  Map[Key] = LRU.begin();
  RetainedBytes += Bytes;
  ++Events.Insertions;
  if (Stats)
    Stats->add("service.cache.insertions");
  evictLocked();
}

void CompileCache::fail(const Digest128 &Key, const std::string &Error,
                        const std::string &ErrorCodeName) {
  std::lock_guard<std::mutex> Lock(Mu);
  settleLocked(Key, /*Failed=*/true, nullptr, Error, ErrorCodeName);
  ++Events.Failures;
  if (Stats)
    Stats->add("service.cache.failures");
}

void CompileCache::evictLocked() {
  if (ByteBudget == 0)
    return;
  // Never evict the just-touched front entry unless it alone exceeds the
  // budget (a unit larger than the whole cache cannot be retained).
  while (RetainedBytes > ByteBudget && LRU.size() > 1) {
    Entry &Victim = LRU.back();
    RetainedBytes -= Victim.Bytes;
    Map.erase(Victim.Key);
    LRU.pop_back();
    ++Events.Evictions;
    if (Stats)
      Stats->add("service.cache.evictions");
  }
  if (RetainedBytes > ByteBudget && LRU.size() == 1) {
    Entry &Victim = LRU.back();
    RetainedBytes -= Victim.Bytes;
    Map.erase(Victim.Key);
    LRU.pop_back();
    ++Events.Evictions;
    if (Stats)
      Stats->add("service.cache.evictions");
  }
}

bool CompileCache::contains(const Digest128 &Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.find(Key) != Map.end();
}

CompileCache::Counters CompileCache::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events;
}

size_t CompileCache::retainedBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return RetainedBytes;
}

size_t CompileCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}

void CompileCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  LRU.clear();
  Map.clear();
  RetainedBytes = 0;
}
