//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression corpus replay: every artifact checked into tests/corpus/
/// (hand-picked nasty APO chains plus any repros reduced from fuzzslp
/// findings) is loaded through the artifact reader and pushed through the
/// full differential-oracle matrix. A corpus artifact failing here means a
/// previously-understood bug pattern has regressed.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Artifact.h"
#include "fuzz/DiffOracle.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <string>
#include <vector>

using namespace snslp;
using namespace snslp::fuzz;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  std::error_code EC;
  for (const auto &Entry :
       std::filesystem::directory_iterator(SNSLP_CORPUS_DIR, EC))
    if (Entry.path().extension() == ".ir")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

class FuzzCorpusTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzCorpusTest, ArtifactStaysClean) {
  Context Ctx;
  Module M(Ctx, "corpus");
  ArtifactInfo Info;
  std::string Err;
  ASSERT_TRUE(loadArtifactFile(GetParam(), M, Info, &Err)) << Err;
  ASSERT_NE(Info.Meta.F, nullptr);
  ASSERT_TRUE(verifyFunction(*Info.Meta.F));

  // The full matrix, load-shuffle configurations included: corpus entries
  // are chosen to be nasty, so give them the widest net.
  OracleOptions Opts;
  Opts.Configs = OracleOptions::defaultConfigs(/*WithLoadShuffles=*/true);
  DiffOracle Oracle(Opts);
  OracleReport Report = Oracle.check(Info.Meta, Info.DataSeed);
  EXPECT_TRUE(Report.ok()) << GetParam() << "\n" << Report.summary();
  // A baseline that cleanly exhausts its fuel (unbounded-loop.ir) skips
  // the matrix; every terminating artifact must cover it.
  if (!Report.BaselineFuelExhausted) {
    EXPECT_GT(Report.VariantsChecked, 2u);
  }
}

/// The deliberately non-terminating artifact: the oracle must classify the
/// baseline's clean fuel trap as a skip — ok(), no exec-error failure —
/// under an aggressively small step budget, and the run must come back
/// quickly instead of hanging.
TEST(FuzzCorpusFuelTest, UnboundedLoopSkipsNotFails) {
  const std::string Path =
      std::string(SNSLP_CORPUS_DIR) + "/unbounded-loop.ir";
  Context Ctx;
  Module M(Ctx, "fuel");
  ArtifactInfo Info;
  std::string Err;
  ASSERT_TRUE(loadArtifactFile(Path, M, Info, &Err)) << Err;

  OracleOptions Opts;
  Opts.MaxSteps = 10000; // Tiny fuel: the trap must be clean and fast.
  DiffOracle Oracle(Opts);
  OracleReport Report = Oracle.check(Info.Meta, Info.DataSeed);
  EXPECT_TRUE(Report.BaselineFuelExhausted);
  EXPECT_TRUE(Report.ok()) << Report.summary();
  EXPECT_EQ(Report.VariantsChecked, 1u); // Baseline only; matrix skipped.

  // The raw run classifies the trap: FuelExhausted, not a generic error.
  ProgramRun Run =
      Oracle.runProgram(Info.Meta, *Info.Meta.F, Info.DataSeed,
                        /*Reference=*/true);
  EXPECT_FALSE(Run.Ok);
  EXPECT_EQ(Run.TrapKind, Trap::FuelExhausted);
  ProgramRun VMRun =
      Oracle.runProgram(Info.Meta, *Info.Meta.F, Info.DataSeed,
                        /*Reference=*/false);
  EXPECT_FALSE(VMRun.Ok);
  EXPECT_EQ(VMRun.TrapKind, Trap::FuelExhausted);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, FuzzCorpusTest, ::testing::ValuesIn(corpusFiles()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Stem = std::filesystem::path(Info.param).stem().string();
      for (char &C : Stem)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Stem;
    });

/// The corpus must retain its hand-picked baseline of at least five nasty
/// APO-chain artifacts.
TEST(FuzzCorpusInventoryTest, AtLeastFiveArtifacts) {
  EXPECT_GE(corpusFiles().size(), 5u);
}

} // namespace
