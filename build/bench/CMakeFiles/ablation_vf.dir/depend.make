# Empty dependencies file for ablation_vf.
# This may be replaced when dependencies are built.
