# Empty compiler generated dependencies file for snslp.
# This may be replaced when dependencies are built.
