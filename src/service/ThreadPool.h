//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool over an MPMC job queue — the execution
/// substrate of the concurrent compilation service (src/service) and of
/// `fuzzslp --jobs`. Deliberately minimal: producers enqueue type-erased
/// jobs from any thread, a fixed set of workers drains the queue, and
/// shutdown is graceful (pending jobs either finish or are dropped,
/// caller's choice). Per-job isolation is the caller's contract: the IR
/// Context is single-threaded by design, so every job must own its own
/// Context/Module and never share IR objects across jobs (see
/// docs/service.md, "Context-per-job rule").
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SERVICE_THREADPOOL_H
#define SNSLP_SERVICE_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace snslp {

/// Fixed-size worker pool. All members are thread-safe.
class ThreadPool {
public:
  /// Spawns \p NumWorkers worker threads (0 is clamped to 1; the pool must
  /// make progress even on a restricted machine).
  explicit ThreadPool(unsigned NumWorkers);

  /// Equivalent to shutdown(/*RunPending=*/true).
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Job. Returns false (and drops the job) when the pool is
  /// shutting down.
  bool submit(std::function<void()> Job);

  /// Outcome of a bounded-queue submission attempt.
  enum class SubmitResult {
    Accepted,     ///< Job enqueued.
    QueueFull,    ///< Pending depth already at MaxQueueDepth; job dropped.
    ShuttingDown, ///< Pool is shutting down; job dropped.
  };

  /// Bounded-queue submit: enqueues \p Job unless the number of *pending*
  /// (queued, not yet running) jobs is already \p MaxQueueDepth, in which
  /// case the job is rejected without blocking. \p MaxQueueDepth == 0 means
  /// unbounded (same as submit()). The depth check and the enqueue happen
  /// under one lock, so rejection is deterministic: with a single blocked
  /// worker and depth D, submissions D+1.. are rejected, never queued.
  SubmitResult trySubmit(std::function<void()> Job, size_t MaxQueueDepth);

  /// Current number of pending (queued, not yet running) jobs.
  size_t queueDepth() const;

  /// Blocks until the queue is empty and every worker is idle. Jobs
  /// submitted while waiting extend the wait (quiescence barrier, used by
  /// batch drivers between waves).
  void wait();

  /// Stops the pool and joins all workers. With \p RunPending, queued jobs
  /// are executed before the workers exit; otherwise they are dropped
  /// (counted in jobsDropped). Idempotent.
  void shutdown(bool RunPending = true);

  unsigned getNumWorkers() const { return static_cast<unsigned>(Workers.size()); }
  uint64_t jobsExecuted() const { return Executed.load(std::memory_order_relaxed); }
  uint64_t jobsDropped() const { return Dropped.load(std::memory_order_relaxed); }
  /// High-water mark of the queue depth (contention telemetry).
  size_t peakQueueDepth() const { return PeakDepth.load(std::memory_order_relaxed); }

private:
  void workerLoop();

  mutable std::mutex Mu;
  std::condition_variable WorkAvailable; ///< Signalled on submit/shutdown.
  std::condition_variable Quiescent;     ///< Signalled when a worker goes idle.
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Workers;
  unsigned ActiveJobs = 0; ///< Jobs currently executing (guarded by Mu).
  bool ShuttingDown = false;
  bool DropPending = false;
  std::atomic<uint64_t> Executed{0};
  std::atomic<uint64_t> Dropped{0};
  std::atomic<size_t> PeakDepth{0};
};

} // namespace snslp

#endif // SNSLP_SERVICE_THREADPOOL_H
