//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Negative tests for the verifier: each class of malformed IR must be
/// reported with a recognizable diagnostic. Constructed with raw builder
/// calls (the parser rejects most of these earlier).
///
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "slp/SLPVectorizer.h"

#include <gtest/gtest.h>

using namespace snslp;

namespace {

class VerifierNegativeTest : public ::testing::Test {
protected:
  Context Ctx;
  Module M{Ctx, "neg"};

  /// Expects verification to fail with a message containing \p Fragment.
  void expectError(Function *F, const std::string &Fragment) {
    std::vector<std::string> Errors;
    EXPECT_FALSE(verifyFunction(F ? *F : *M.functions().back(), &Errors));
    bool Found = false;
    for (const std::string &E : Errors)
      if (E.find(Fragment) != std::string::npos)
        Found = true;
    EXPECT_TRUE(Found) << "no diagnostic containing '" << Fragment
                       << "'; got: "
                       << (Errors.empty() ? "<none>" : Errors.front());
  }
};

TEST_F(VerifierNegativeTest, EmptyFunction) {
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  expectError(F, "no blocks");
}

TEST_F(VerifierNegativeTest, EmptyBlock) {
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  F->createBlock("entry");
  expectError(F, "empty");
}

TEST_F(VerifierNegativeTest, MissingTerminator) {
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  B.createAdd(B.getInt64(1), B.getInt64(2));
  expectError(F, "terminator");
}

TEST_F(VerifierNegativeTest, TerminatorNotLast) {
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  B.createRet();
  B.createAdd(B.getInt64(1), B.getInt64(2));
  expectError(F, "terminator");
}

TEST_F(VerifierNegativeTest, DuplicateBlockNames) {
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *A = F->createBlock("entry");
  BasicBlock *Dup = F->createBlock("dup");
  BasicBlock *Dup2 = F->createBlock("dup");
  IRBuilder B(A);
  B.createBr(Dup);
  B.setInsertPointAtEnd(Dup);
  B.createBr(Dup2);
  B.setInsertPointAtEnd(Dup2);
  B.createRet();
  expectError(F, "duplicate block name");
}

TEST_F(VerifierNegativeTest, PhiInEntryBlock) {
  Function *F = M.createFunction("f", Ctx.getVoidTy(),
                                 {{Ctx.getInt64Ty(), "x"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  B.createPhi(Ctx.getInt64Ty());
  B.createRet();
  expectError(F, "entry block");
}

TEST_F(VerifierNegativeTest, PhiIncomingCountMismatch) {
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  IRBuilder B(Entry);
  B.createBr(Next);
  B.setInsertPointAtEnd(Next);
  B.createPhi(Ctx.getInt64Ty()); // No incoming entries at all.
  B.createRet();
  expectError(F, "incoming count");
}

TEST_F(VerifierNegativeTest, PhiAfterNonPhi) {
  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  IRBuilder B(Entry);
  B.createBr(Next);
  B.setInsertPointAtEnd(Next);
  Value *X = B.createAdd(B.getInt64(1), B.getInt64(2));
  (void)X;
  PhiNode *Phi = B.createPhi(Ctx.getInt64Ty());
  Phi->addIncoming(B.getInt64(0), Entry);
  B.createRet();
  expectError(F, "phi after non-phi");
}

TEST_F(VerifierNegativeTest, RetTypeMismatch) {
  Function *F = M.createFunction("f", Ctx.getInt64Ty(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  B.createRet(); // ret void in an i64 function.
  expectError(F, "ret void in non-void function");
}

TEST_F(VerifierNegativeTest, RetValueTypeMismatch) {
  Function *F = M.createFunction("f", Ctx.getInt64Ty(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  B.createRet(B.getDouble(1.0));
  expectError(F, "ret value type");
}

TEST_F(VerifierNegativeTest, BranchToForeignBlock) {
  Function *G = M.createFunction("g", Ctx.getVoidTy(), {});
  BasicBlock *Foreign = G->createBlock("entry");
  IRBuilder BG(Foreign);
  BG.createRet();

  Function *F = M.createFunction("f", Ctx.getVoidTy(), {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  B.createBr(Foreign);
  expectError(F, "outside function");
}

TEST_F(VerifierNegativeTest, UseBeforeDefAcrossBlocks) {
  // A value defined in a non-dominating block is used in another.
  std::string Err;
  ASSERT_TRUE(parseIR("func @f(i1 %c) -> i64 {\n"
                      "entry:\n"
                      "  br i1 %c, label %a, label %b\n"
                      "a:\n"
                      "  %x = add i64 1, 2\n"
                      "  br label %join\n"
                      "b:\n"
                      "  br label %join\n"
                      "join:\n"
                      "  %y = add i64 %x, 3\n"
                      "  ret i64 %y\n"
                      "}\n",
                      M, &Err))
      << Err;
  expectError(M.getFunction("f"), "before definition");
}

TEST_F(VerifierNegativeTest, RemarksDescribeDecisions) {
  // The optimization remarks name the decision and the cost.
  std::string Err;
  ASSERT_TRUE(parseIR("func @r(ptr %out, ptr %a) {\n"
                      "entry:\n"
                      "  %pa0 = gep i64, ptr %a, i64 0\n"
                      "  %a0 = load i64, ptr %pa0\n"
                      "  %s0 = add i64 %a0, 1\n"
                      "  %po0 = gep i64, ptr %out, i64 0\n"
                      "  store i64 %s0, ptr %po0\n"
                      "  %pa1 = gep i64, ptr %a, i64 1\n"
                      "  %a1 = load i64, ptr %pa1\n"
                      "  %s1 = add i64 %a1, 1\n"
                      "  %po1 = gep i64, ptr %out, i64 1\n"
                      "  store i64 %s1, ptr %po1\n"
                      "  ret void\n"
                      "}\n",
                      M, &Err))
      << Err;
  Function *F = M.getFunction("r");
  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SNSLP;
  VectorizeStats Stats = runSLPVectorizer(*F, Cfg);
  ASSERT_EQ(Stats.GraphsVectorized, 1u);
  ASSERT_FALSE(Stats.Remarks.empty());
  const Remark *Vectorized = nullptr;
  for (const Remark &R : Stats.Remarks)
    if (R.Name == "GraphVectorized")
      Vectorized = &R;
  ASSERT_NE(Vectorized, nullptr) << renderRemarksYAML(Stats.Remarks);
  EXPECT_EQ(Vectorized->Kind, RemarkKind::Passed);
  EXPECT_NE(Vectorized->Message.find("vectorized 2-wide store group"),
            std::string::npos)
      << Vectorized->Message;
}

} // namespace
