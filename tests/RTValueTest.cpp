//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for RTValue (the interpreter's runtime value), KernelData
/// buffer management, and output comparison semantics.
///
//===----------------------------------------------------------------------===//

#include "interp/RTValue.h"
#include "kernels/KernelData.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace snslp;

namespace {

TEST(RTValueTest, IntCanonicalization) {
  EXPECT_EQ(RTValue::canonicalizeInt(TypeKind::Int1, 3), 1);
  EXPECT_EQ(RTValue::canonicalizeInt(TypeKind::Int1, 2), 0);
  EXPECT_EQ(RTValue::canonicalizeInt(TypeKind::Int32, 0x100000001LL), 1);
  EXPECT_EQ(RTValue::canonicalizeInt(TypeKind::Int32, 0xffffffffLL), -1);
  EXPECT_EQ(RTValue::canonicalizeInt(TypeKind::Int64, -5), -5);
}

TEST(RTValueTest, FPCanonicalization) {
  // f32 rounds to float precision; f64 passes through.
  double Pi = 3.141592653589793;
  EXPECT_EQ(RTValue::canonicalizeFP(TypeKind::Float, Pi),
            static_cast<double>(static_cast<float>(Pi)));
  EXPECT_EQ(RTValue::canonicalizeFP(TypeKind::Double, Pi), Pi);
}

TEST(RTValueTest, FactoriesAndAccessors) {
  RTValue I = RTValue::makeInt64(-42);
  EXPECT_EQ(I.getInt(), -42);
  EXPECT_EQ(I.Lanes, 1);

  RTValue B = RTValue::makeBool(true);
  EXPECT_EQ(B.getInt(), 1);

  RTValue D = RTValue::makeDouble(2.5);
  EXPECT_DOUBLE_EQ(D.getFP(), 2.5);

  int Dummy = 0;
  RTValue P = RTValue::makePointer(&Dummy);
  EXPECT_EQ(P.getPointer(), reinterpret_cast<uint64_t>(&Dummy));

  RTValue V = RTValue::makeVector(TypeKind::Double, 4);
  EXPECT_EQ(V.Lanes, 4);
  V.setFP(1.5, 2);
  EXPECT_DOUBLE_EQ(V.getFP(2), 1.5);
}

TEST(RTValueTest, BitwiseEquals) {
  RTValue A = RTValue::makeInt64(7);
  RTValue B = RTValue::makeInt64(7);
  RTValue C = RTValue::makeInt64(8);
  EXPECT_TRUE(A.bitwiseEquals(B));
  EXPECT_FALSE(A.bitwiseEquals(C));
  RTValue V = RTValue::makeVector(TypeKind::Int64, 2);
  EXPECT_FALSE(A.bitwiseEquals(V)); // Lane-count mismatch.
}

TEST(KernelDataTest, DeterministicSeeding) {
  std::vector<BufferSpec> Specs = {
      {"in", TypeKind::Double, BufferSpec::Role::Input},
      {"out", TypeKind::Double, BufferSpec::Role::Output}};
  KernelData A(Specs, 64, 7);
  KernelData B(Specs, 64, 7);
  KernelData C(Specs, 64, 8);
  EXPECT_EQ(A.f64(0)[0], B.f64(0)[0]);
  EXPECT_EQ(A.f64(0)[63], B.f64(0)[63]);
  EXPECT_NE(A.f64(0)[0], C.f64(0)[0]);
  // Outputs are zero-initialized.
  EXPECT_EQ(A.f64(1)[0], 0.0);
  // Padding exists beyond N.
  EXPECT_GT(A.getCount(0), 64u);
  EXPECT_EQ(A.getByteSize(0), A.getCount(0) * sizeof(double));
}

TEST(KernelDataTest, OutputsMatchTolerances) {
  std::vector<BufferSpec> Specs = {
      {"out", TypeKind::Double, BufferSpec::Role::Output}};
  KernelData A(Specs, 8, 1), B(Specs, 8, 1);
  A.f64(0)[0] = 1.0;
  B.f64(0)[0] = 1.0 + 1e-14;
  std::string Msg;
  EXPECT_TRUE(KernelData::outputsMatch(A, B, 1e-12, &Msg)) << Msg;
  EXPECT_FALSE(KernelData::outputsMatch(A, B, 1e-16, &Msg));
  EXPECT_NE(Msg.find("out"), std::string::npos);
}

TEST(KernelDataTest, IntegerOutputsCompareExactly) {
  std::vector<BufferSpec> Specs = {
      {"out", TypeKind::Int64, BufferSpec::Role::Output}};
  KernelData A(Specs, 8, 1), B(Specs, 8, 1);
  A.i64(0)[3] = 10;
  B.i64(0)[3] = 10;
  EXPECT_TRUE(KernelData::outputsMatch(A, B, 0.0));
  B.i64(0)[3] = 11;
  EXPECT_FALSE(KernelData::outputsMatch(A, B, 0.0));
}

TEST(KernelDataTest, InputBuffersAreNotCompared) {
  std::vector<BufferSpec> Specs = {
      {"in", TypeKind::Double, BufferSpec::Role::Input},
      {"out", TypeKind::Double, BufferSpec::Role::Output}};
  KernelData A(Specs, 8, 1), B(Specs, 8, 1);
  A.f64(0)[0] = 999.0; // Diverge an input; must not matter.
  EXPECT_TRUE(KernelData::outputsMatch(A, B, 1e-12));
}

TEST(KernelDataTest, CountScaleGrowsBuffers) {
  std::vector<BufferSpec> Specs = {
      {"a", TypeKind::Float, BufferSpec::Role::Input, 3.0}};
  KernelData D(Specs, 100, 1);
  EXPECT_GE(D.getCount(0), 300u);
}

} // namespace
