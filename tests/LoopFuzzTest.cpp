//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-level fuzzing: random unrolled loop kernels in the shape of the
/// benchmark suite — per-lane permuted add/sub chains over several arrays,
/// optionally updating one array in place (fuzz/IRGenerator's Loop shape)
/// — pushed through the full differential oracle. Exercises the
/// interactions the straight-line fuzzers cannot: phis, loop-carried
/// addressing, seed collection inside loops, and in-place load/store
/// scheduling.
///
//===----------------------------------------------------------------------===//

#include "fuzz/DiffOracle.h"
#include "fuzz/IRGenerator.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace snslp;
using namespace snslp::fuzz;

namespace {

class LoopFuzzTest : public ::testing::TestWithParam<uint64_t> {
protected:
  Context Ctx;
  Module M{Ctx, "loopfuzz"};
};

TEST_P(LoopFuzzTest, RandomLoopsStayCorrectUnderAllConfigurations) {
  RNG R(GetParam());
  IRGenerator Gen(M);
  DiffOracle Oracle;

  constexpr unsigned Rounds = 40;
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    unsigned Unroll = R.nextBool(0.5) ? 2 : 4;
    GeneratedProgram P =
        Gen.generateLoop("lf" + std::to_string(Round), Unroll, R);
    std::vector<std::string> Errors;
    ASSERT_TRUE(verifyFunction(*P.F, &Errors))
        << "round " << Round << ": "
        << (Errors.empty() ? "" : Errors.front());
    OracleReport Report = Oracle.check(P, GetParam() + Round);
    ASSERT_TRUE(Report.ok())
        << "round " << Round << (P.InPlace ? " (in-place)" : "")
        << " unroll " << Unroll << "\n" << Report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopFuzzTest,
                         ::testing::Values(501ull, 502ull, 503ull),
                         [](const ::testing::TestParamInfo<uint64_t> &Info) {
                           return "seed" + std::to_string(Info.param);
                         });

} // namespace
