//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "ir/Module.h"
#include "support/ErrorHandling.h"

#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace snslp;

namespace {

/// Formats an integer or FP scalar constant so the parser round-trips it.
std::string formatScalarConstant(const Constant &C) {
  if (const auto *CI = dyn_cast<ConstantInt>(&C))
    return std::to_string(CI->getValue());
  const auto *CF = cast<ConstantFP>(&C);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", CF->getValue());
  std::string S = Buf;
  // Ensure the token is recognizably floating point.
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  return S;
}

/// Per-function printing state: assigns stable names to unnamed values.
class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) { assignNames(); }

  void print(std::ostream &OS) {
    OS << "func @" << F.getName() << "(";
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I) {
      if (I != 0)
        OS << ", ";
      const Argument *Arg = F.getArg(I);
      OS << Arg->getType()->getName() << " %" << Names.at(Arg);
    }
    OS << ")";
    if (!F.getReturnType()->isVoid())
      OS << " -> " << F.getReturnType()->getName();
    OS << " {\n";
    for (const auto &BB : F.blocks()) {
      OS << BB->getName() << ":\n";
      for (const auto &Inst : *BB) {
        OS << "  ";
        printInstruction(*Inst, OS);
        OS << '\n';
      }
    }
    OS << "}\n";
  }

  void printInstruction(const Instruction &Inst, std::ostream &OS) {
    if (!Inst.getType()->isVoid())
      OS << "%" << Names.at(&Inst) << " = ";
    switch (Inst.getKind()) {
    case ValueKind::BinOp: {
      const auto &BO = cast<BinaryOperator>(Inst);
      OS << getOpcodeName(BO.getOpcode()) << ' '
         << BO.getType()->getName() << ' ' << ref(BO.getLHS()) << ", "
         << ref(BO.getRHS());
      return;
    }
    case ValueKind::AlternateOp: {
      const auto &AO = cast<AlternateOp>(Inst);
      OS << "altop " << AO.getType()->getName() << " [";
      for (unsigned I = 0, E = static_cast<unsigned>(
               AO.getLaneOpcodes().size()); I != E; ++I) {
        if (I != 0)
          OS << ", ";
        OS << getOpcodeName(AO.getLaneOpcode(I));
      }
      OS << "], " << ref(AO.getLHS()) << ", " << ref(AO.getRHS());
      return;
    }
    case ValueKind::UnaryOp: {
      const auto &UO = cast<UnaryOperator>(Inst);
      OS << getUnaryOpcodeName(UO.getOpcode()) << ' '
         << UO.getType()->getName() << ' ' << ref(UO.getOperand0());
      return;
    }
    case ValueKind::Load:
      OS << "load " << Inst.getType()->getName() << ", ptr "
         << ref(Inst.getOperand(0));
      return;
    case ValueKind::Store: {
      const auto &St = cast<StoreInst>(Inst);
      OS << "store " << St.getValueOperand()->getType()->getName() << ' '
         << ref(St.getValueOperand()) << ", ptr " << ref(St.getPointerOperand());
      return;
    }
    case ValueKind::GEP: {
      const auto &GEP = cast<GEPInst>(Inst);
      OS << "gep " << GEP.getElementType()->getName() << ", ptr "
         << ref(GEP.getPointerOperand()) << ", i64 "
         << ref(GEP.getIndexOperand());
      return;
    }
    case ValueKind::ICmp: {
      const auto &Cmp = cast<ICmpInst>(Inst);
      OS << "icmp " << getPredicateName(Cmp.getPredicate()) << ' '
         << Cmp.getLHS()->getType()->getName() << ' ' << ref(Cmp.getLHS())
         << ", " << ref(Cmp.getRHS());
      return;
    }
    case ValueKind::Select: {
      const auto &Sel = cast<SelectInst>(Inst);
      OS << "select " << ref(Sel.getCondition()) << ", "
         << Sel.getType()->getName() << ' ' << ref(Sel.getTrueValue()) << ", "
         << ref(Sel.getFalseValue());
      return;
    }
    case ValueKind::Phi: {
      const auto &Phi = cast<PhiNode>(Inst);
      OS << "phi " << Phi.getType()->getName() << ' ';
      for (unsigned I = 0, E = Phi.getNumIncoming(); I != E; ++I) {
        if (I != 0)
          OS << ", ";
        OS << "[ " << ref(Phi.getIncomingValue(I)) << ", %"
           << Phi.getIncomingBlock(I)->getName() << " ]";
      }
      return;
    }
    case ValueKind::Branch: {
      const auto &Br = cast<BranchInst>(Inst);
      if (Br.isConditional())
        OS << "br i1 " << ref(Br.getCondition()) << ", label %"
           << Br.getSuccessor(0)->getName() << ", label %"
           << Br.getSuccessor(1)->getName();
      else
        OS << "br label %" << Br.getSuccessor(0)->getName();
      return;
    }
    case ValueKind::Ret: {
      const auto &Ret = cast<RetInst>(Inst);
      if (Ret.hasReturnValue())
        OS << "ret " << Ret.getReturnValue()->getType()->getName() << ' '
           << ref(Ret.getReturnValue());
      else
        OS << "ret void";
      return;
    }
    case ValueKind::InsertElement: {
      const auto &IE = cast<InsertElementInst>(Inst);
      OS << "insertelement " << IE.getType()->getName() << ' '
         << ref(IE.getVectorOperand()) << ", "
         << IE.getScalarOperand()->getType()->getName() << ' '
         << ref(IE.getScalarOperand()) << ", " << IE.getLane();
      return;
    }
    case ValueKind::ExtractElement: {
      const auto &EE = cast<ExtractElementInst>(Inst);
      OS << "extractelement " << EE.getVectorOperand()->getType()->getName()
         << ' ' << ref(EE.getVectorOperand()) << ", " << EE.getLane();
      return;
    }
    case ValueKind::ShuffleVector: {
      const auto &SV = cast<ShuffleVectorInst>(Inst);
      OS << "shufflevector " << SV.getFirstOperand()->getType()->getName()
         << ' ' << ref(SV.getFirstOperand()) << ", "
         << ref(SV.getSecondOperand()) << ", [";
      for (unsigned I = 0, E = static_cast<unsigned>(SV.getMask().size());
           I != E; ++I) {
        if (I != 0)
          OS << ", ";
        OS << SV.getMask()[I];
      }
      OS << ']';
      return;
    }
    case ValueKind::Argument:
    case ValueKind::ConstantInt:
    case ValueKind::ConstantFP:
    case ValueKind::ConstantVector:
      break;
    }
    snslp_unreachable("not an instruction kind");
  }

private:
  /// Formats a reference to an operand: a %name for named values, a bare
  /// literal for scalar constants, [e0, e1] for vector constants.
  std::string ref(const Value *V) {
    if (const auto *CV = dyn_cast<ConstantVector>(V)) {
      std::string S = "[";
      for (unsigned I = 0, E = CV->getNumLanes(); I != E; ++I) {
        if (I != 0)
          S += ", ";
        S += formatScalarConstant(*CV->getElement(I));
      }
      return S + "]";
    }
    if (const auto *C = dyn_cast<Constant>(V))
      return formatScalarConstant(*C);
    return "%" + Names.at(V);
  }

  void assignNames() {
    std::unordered_set<std::string> Used;
    auto Claim = [this, &Used](const Value *V, const std::string &Base) {
      std::string Candidate = Base;
      unsigned Suffix = 0;
      while (Used.count(Candidate))
        Candidate = Base + "." + std::to_string(Suffix++);
      Used.insert(Candidate);
      Names[V] = Candidate;
    };
    unsigned Slot = 0;
    auto FreshSlot = [&Slot, &Used]() {
      std::string Candidate;
      do {
        Candidate = "t" + std::to_string(Slot++);
      } while (Used.count(Candidate));
      return Candidate;
    };
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I) {
      const Argument *Arg = F.getArg(I);
      Claim(Arg, Arg->hasName() ? Arg->getName()
                                : "arg" + std::to_string(I));
    }
    for (const auto &BB : F.blocks())
      for (const auto &Inst : *BB) {
        if (Inst->getType()->isVoid())
          continue;
        Claim(Inst.get(), Inst->hasName() ? Inst->getName() : FreshSlot());
      }
  }

  const Function &F;
  std::unordered_map<const Value *, std::string> Names;
};

} // namespace

void snslp::printFunction(const Function &F, std::ostream &OS) {
  FunctionPrinter(F).print(OS);
}

void snslp::printModule(const Module &M, std::ostream &OS) {
  bool First = true;
  for (const auto &F : M.functions()) {
    if (!First)
      OS << '\n';
    First = false;
    printFunction(*F, OS);
  }
}

std::string snslp::toString(const Module &M) {
  std::ostringstream OS;
  printModule(M, OS);
  return OS.str();
}

std::string snslp::toString(const Function &F) {
  std::ostringstream OS;
  printFunction(F, OS);
  return OS.str();
}

std::string snslp::toString(const Value &V) {
  if (const auto *Inst = dyn_cast<Instruction>(&V)) {
    if (const Function *F = Inst->getFunction()) {
      std::ostringstream OS;
      FunctionPrinter FP(*F);
      FP.printInstruction(*Inst, OS);
      return OS.str();
    }
  }
  if (const auto *C = dyn_cast<Constant>(&V)) {
    if (const auto *CV = dyn_cast<ConstantVector>(C)) {
      std::string S = "[";
      for (unsigned I = 0, E = CV->getNumLanes(); I != E; ++I) {
        if (I != 0)
          S += ", ";
        S += formatScalarConstant(*CV->getElement(I));
      }
      return S + "]";
    }
    return formatScalarConstant(*C);
  }
  return "%" + (V.hasName() ? V.getName() : std::string("<unnamed>"));
}
