//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the content-addressed compile cache
/// (src/service/CompileCache.h): hit/miss accounting, LRU eviction under
/// the byte budget, single-flight leader/waiter coalescing (success and
/// failure paths), and the guarantee that eviction never invalidates a
/// unit a client still holds.
///
//===----------------------------------------------------------------------===//

#include "service/CompileCache.h"
#include "support/Statistic.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "gtest/gtest.h"

using namespace snslp;

namespace {

/// A unit with a settable size and a liveness flag for eviction tests.
struct FakeUnit : CacheableUnit {
  explicit FakeUnit(size_t Bytes, int Tag = 0) : Bytes(Bytes), Tag(Tag) {}
  size_t cachedBytes() const override { return Bytes; }
  size_t Bytes;
  int Tag;
};

Digest128 key(uint64_t N) { return digest128(&N, sizeof(N)); }

std::shared_ptr<const FakeUnit> asFake(const CompileCache::UnitPtr &U) {
  return std::static_pointer_cast<const FakeUnit>(U);
}

TEST(CompileCacheTest, MissThenHit) {
  CompileCache Cache(/*ByteBudget=*/0);
  CompileCache::Lookup L = Cache.lookupOrBegin(key(1));
  ASSERT_EQ(L.State, CompileCache::LookupState::MustCompile);
  Cache.fulfill(key(1), std::make_shared<FakeUnit>(100, 7));

  CompileCache::Lookup L2 = Cache.lookupOrBegin(key(1));
  ASSERT_EQ(L2.State, CompileCache::LookupState::Hit);
  EXPECT_EQ(asFake(L2.Unit)->Tag, 7);

  CompileCache::Counters C = Cache.counters();
  EXPECT_EQ(C.Misses, 1u);
  EXPECT_EQ(C.Hits, 1u);
  EXPECT_EQ(C.Insertions, 1u);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_EQ(Cache.retainedBytes(), 100u);
}

TEST(CompileCacheTest, DistinctKeysDoNotAlias) {
  CompileCache Cache(0);
  EXPECT_EQ(Cache.lookupOrBegin(key(1)).State,
            CompileCache::LookupState::MustCompile);
  Cache.fulfill(key(1), std::make_shared<FakeUnit>(10, 1));
  EXPECT_EQ(Cache.lookupOrBegin(key(2)).State,
            CompileCache::LookupState::MustCompile);
  Cache.fulfill(key(2), std::make_shared<FakeUnit>(10, 2));
  EXPECT_EQ(asFake(Cache.lookupOrBegin(key(1)).Unit)->Tag, 1);
  EXPECT_EQ(asFake(Cache.lookupOrBegin(key(2)).Unit)->Tag, 2);
}

TEST(CompileCacheTest, LRUEvictionUnderByteBudget) {
  CompileCache Cache(/*ByteBudget=*/150);
  for (uint64_t I = 0; I < 3; ++I) {
    ASSERT_EQ(Cache.lookupOrBegin(key(I)).State,
              CompileCache::LookupState::MustCompile);
    Cache.fulfill(key(I), std::make_shared<FakeUnit>(60));
  }
  // 3 * 60 = 180 > 150: the least recently used entry (key 0) is gone.
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_LE(Cache.retainedBytes(), 150u);
  EXPECT_FALSE(Cache.contains(key(0)));
  EXPECT_TRUE(Cache.contains(key(1)));
  EXPECT_TRUE(Cache.contains(key(2)));
  EXPECT_EQ(Cache.counters().Evictions, 1u);
}

TEST(CompileCacheTest, HitRefreshesLRUPosition) {
  CompileCache Cache(/*ByteBudget=*/150);
  for (uint64_t I = 0; I < 2; ++I) {
    Cache.lookupOrBegin(key(I));
    Cache.fulfill(key(I), std::make_shared<FakeUnit>(60));
  }
  // Touch key 0 so key 1 becomes the eviction victim.
  EXPECT_EQ(Cache.lookupOrBegin(key(0)).State,
            CompileCache::LookupState::Hit);
  Cache.lookupOrBegin(key(2));
  Cache.fulfill(key(2), std::make_shared<FakeUnit>(60));
  EXPECT_TRUE(Cache.contains(key(0)));
  EXPECT_FALSE(Cache.contains(key(1)));
  EXPECT_TRUE(Cache.contains(key(2)));
}

TEST(CompileCacheTest, OversizedUnitStillServedThenEvicted) {
  CompileCache Cache(/*ByteBudget=*/50);
  Cache.lookupOrBegin(key(1));
  // The unit alone exceeds the budget: it must still be published to its
  // requester (and waiters), even if the cache cannot retain it long.
  Cache.fulfill(key(1), std::make_shared<FakeUnit>(500, 9));
  CompileCache::Lookup L = Cache.lookupOrBegin(key(1));
  if (L.State == CompileCache::LookupState::Hit) {
    EXPECT_EQ(asFake(L.Unit)->Tag, 9);
  } else {
    EXPECT_EQ(L.State, CompileCache::LookupState::MustCompile);
    // Settle the in-flight record this lookup opened.
    Cache.fulfill(key(1), std::make_shared<FakeUnit>(500, 9));
  }
}

TEST(CompileCacheTest, EvictionNeverInvalidatesHeldUnits) {
  CompileCache Cache(/*ByteBudget=*/100);
  Cache.lookupOrBegin(key(1));
  Cache.fulfill(key(1), std::make_shared<FakeUnit>(80, 1));
  std::shared_ptr<const FakeUnit> Held =
      asFake(Cache.lookupOrBegin(key(1)).Unit);
  // Force the eviction of key 1.
  Cache.lookupOrBegin(key(2));
  Cache.fulfill(key(2), std::make_shared<FakeUnit>(80, 2));
  EXPECT_FALSE(Cache.contains(key(1)));
  // The held pointer is unaffected by the eviction.
  EXPECT_EQ(Held->Tag, 1);
  EXPECT_EQ(Held->cachedBytes(), 80u);
}

TEST(CompileCacheTest, SingleFlightCoalescesWaiters) {
  CompileCache Cache(0, nullptr);
  CompileCache::Lookup Leader = Cache.lookupOrBegin(key(1));
  ASSERT_EQ(Leader.State, CompileCache::LookupState::MustCompile);

  std::atomic<int> Coalesced{0};
  std::vector<std::thread> Waiters;
  for (int I = 0; I < 4; ++I)
    Waiters.emplace_back([&Cache, &Coalesced] {
      CompileCache::Lookup L = Cache.lookupOrBegin(key(1));
      if (L.State == CompileCache::LookupState::Coalesced &&
          !L.LeaderFailed && asFake(L.Unit)->Tag == 42)
        ++Coalesced;
    });
  // Give the waiters time to block on the in-flight record, then publish.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Cache.fulfill(key(1), std::make_shared<FakeUnit>(10, 42));
  for (auto &T : Waiters)
    T.join();
  EXPECT_EQ(Coalesced.load(), 4);
  EXPECT_EQ(Cache.counters().Coalesced, 4u);
  // Exactly one compile happened.
  EXPECT_EQ(Cache.counters().Misses, 1u);
}

TEST(CompileCacheTest, SingleFlightFailurePropagatesAndRetries) {
  CompileCache Cache(0);
  ASSERT_EQ(Cache.lookupOrBegin(key(1)).State,
            CompileCache::LookupState::MustCompile);

  std::atomic<int> SawFailure{0};
  std::thread Waiter([&] {
    CompileCache::Lookup L = Cache.lookupOrBegin(key(1));
    if (L.State == CompileCache::LookupState::Coalesced && L.LeaderFailed &&
        L.Error == "line 3: bad token" && L.ErrorCodeName == "parse-error")
      ++SawFailure;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Cache.fail(key(1), "line 3: bad token", "parse-error");
  Waiter.join();
  EXPECT_EQ(SawFailure.load(), 1);
  EXPECT_EQ(Cache.counters().Failures, 1u);

  // Failures are not cached: the next request gets to retry as leader.
  EXPECT_FALSE(Cache.contains(key(1)));
  EXPECT_EQ(Cache.lookupOrBegin(key(1)).State,
            CompileCache::LookupState::MustCompile);
  Cache.fulfill(key(1), std::make_shared<FakeUnit>(10));
}

TEST(CompileCacheTest, StatsRegistrySink) {
  StatsRegistry Stats;
  CompileCache Cache(0, &Stats);
  Cache.lookupOrBegin(key(1));
  Cache.fulfill(key(1), std::make_shared<FakeUnit>(10));
  Cache.lookupOrBegin(key(1));
  EXPECT_EQ(Stats.get("service.cache.misses"), 1);
  EXPECT_EQ(Stats.get("service.cache.hits"), 1);
  EXPECT_EQ(Stats.get("service.cache.insertions"), 1);
}

TEST(CompileCacheTest, ClearDropsRetainedUnits) {
  CompileCache Cache(0);
  Cache.lookupOrBegin(key(1));
  Cache.fulfill(key(1), std::make_shared<FakeUnit>(10));
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.retainedBytes(), 0u);
  EXPECT_FALSE(Cache.contains(key(1)));
}

} // namespace
