//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the SLP vectorizer. One code base implements all three
/// configurations evaluated in the paper:
///  - SLP:   LLVM-style bottom-up SLP with per-instruction commutative
///           operand reordering.
///  - LSLP:  SLP + Multi-Nodes over a single commutative opcode with
///           look-ahead operand reordering (Porpodas et al. [9]).
///  - SNSLP: LSLP generalized to Super-Nodes that also absorb the inverse
///           element of the operator family (this paper).
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SLP_VECTORIZERCONFIG_H
#define SNSLP_SLP_VECTORIZERCONFIG_H

#include "costmodel/TargetCostModel.h"

#include <cstdint>
#include <string>

namespace snslp {

class StatsRegistry;

/// Deterministic resource limits for one vectorization attempt. A value of
/// 0 means "unlimited" — the defaults impose no limit, so budget handling
/// is pure safety net unless a caller opts in (fuzzing, adversarial-input
/// hardening, compile-time SLAs). See docs/robustness.md.
struct ResourceBudgets {
  /// Maximum SLP graph nodes built per seed-group attempt.
  uint64_t MaxGraphNodes = 0;
  /// Maximum look-ahead score evaluations per attempt (counts the
  /// recursive scoreAtDepth expansions, cache hits excluded).
  uint64_t MaxLookAheadEvals = 0;
  /// Maximum Super-Node leaf-permutation probes (buildGroup calls) per
  /// attempt.
  uint64_t MaxSuperNodePermutations = 0;

  bool anyLimited() const {
    return MaxGraphNodes || MaxLookAheadEvals || MaxSuperNodePermutations;
  }
};

/// Charge-and-check tracker for ResourceBudgets. One tracker is created
/// per vectorization attempt; the graph builder, look-ahead scorer and
/// Super-Node prober charge it cooperatively and poll exhausted() at their
/// bailout points. Exhaustion is sticky and carries the name of the first
/// budget that was blown (surfaced in the `bailout:budget` remark).
class BudgetTracker {
public:
  BudgetTracker() = default;
  explicit BudgetTracker(const ResourceBudgets &B) : Budgets(B) {}

  bool chargeGraphNode() {
    return charge(GraphNodes, Budgets.MaxGraphNodes, "graph-nodes");
  }
  bool chargeLookAheadEval() {
    return charge(LookAheadEvals, Budgets.MaxLookAheadEvals,
                  "lookahead-evals");
  }
  bool chargeSuperNodePermutation() {
    return charge(SuperNodePermutations, Budgets.MaxSuperNodePermutations,
                  "supernode-permutations");
  }

  /// External exhaustion (fault injection, caller-imposed deadline).
  void forceExhausted(const char *Why) {
    if (!Exhausted) {
      Exhausted = true;
      Reason = Why;
    }
  }

  bool exhausted() const { return Exhausted; }
  /// Name of the first blown budget ("graph-nodes" | "lookahead-evals" |
  /// "supernode-permutations" | a forceExhausted() reason); empty while
  /// within budget.
  const std::string &reason() const { return Reason; }

  uint64_t graphNodes() const { return GraphNodes; }
  uint64_t lookAheadEvals() const { return LookAheadEvals; }
  uint64_t superNodePermutations() const { return SuperNodePermutations; }

private:
  /// Returns true while within budget; trips the sticky exhausted flag
  /// (and returns false) once \p Count exceeds a non-zero \p Limit.
  bool charge(uint64_t &Count, uint64_t Limit, const char *Name) {
    ++Count;
    if (Limit != 0 && Count > Limit && !Exhausted) {
      Exhausted = true;
      Reason = Name;
    }
    return !Exhausted;
  }

  ResourceBudgets Budgets;
  uint64_t GraphNodes = 0;
  uint64_t LookAheadEvals = 0;
  uint64_t SuperNodePermutations = 0;
  bool Exhausted = false;
  std::string Reason;
};

/// The vectorizer configurations compared in the paper's evaluation.
/// O3 means "all vectorizers disabled" (the paper's baseline).
enum class VectorizerMode { O3, SLP, LSLP, SNSLP };

/// Returns the display name used by benchmarks ("O3", "SLP", ...).
const char *getModeName(VectorizerMode Mode);

/// Tunables for one vectorizer run.
struct VectorizerConfig {
  VectorizerMode Mode = VectorizerMode::SNSLP;

  /// Vectorization factors to try, largest first; bounded by the target's
  /// register width for the element type.
  unsigned MaxVF = 4;
  unsigned MinVF = 2;

  /// Look-ahead recursion depth for operand-reordering scores (LSLP Sec. 4;
  /// used by LSLP and SNSLP modes).
  unsigned LookAheadDepth = 2;

  /// Memoize look-ahead scores on (L, R, depth) for the lifetime of one
  /// graph build (invalidated on IR mutation). Scores are identical either
  /// way; the toggle exists for the ablation benchmark and the equivalence
  /// tests.
  bool EnableLookAheadMemo = true;

  /// Maximum use-def recursion depth while growing the SLP graph.
  unsigned MaxGraphDepth = 16;

  /// Cost threshold: vectorize when the graph cost is strictly below this
  /// (the paper: "compared against a threshold (usually 0)").
  int CostThreshold = 0;

  /// Also seed from horizontal reduction roots. On by default: the paper
  /// enables -slp-vectorize-hor for both LLVM and SN-SLP (Section V).
  bool EnableReductionSeeds = true;

  /// Extension beyond the paper (off by default): vectorize load groups
  /// that are a permutation of consecutive addresses as one vector load
  /// plus a lane shuffle.
  bool EnableLoadShuffles = false;

  /// Deterministic resource limits (0 = unlimited). When a budget is blown
  /// mid-attempt the attempt is rolled back to scalar and a
  /// `bailout:budget` remark is emitted; compilation continues.
  ResourceBudgets Budgets;

  /// Wrap every per-region vectorization attempt in an IRTransaction so
  /// that verifier failures, budget exhaustion and injected faults roll
  /// the region back bit-identically to its pre-attempt scalar form.
  bool TransactionalRegions = true;

  /// Verify the function after each committed region attempt; a failure
  /// triggers rollback + `bailout:verify` instead of propagating corrupt
  /// IR. Requires TransactionalRegions.
  bool VerifyAfterAttempt = true;

  /// Target machine parameters.
  TargetParams Target;

  /// Optional counter sink. When set, the vectorizer records pass-level
  /// counters ("lookahead-cache-hits", "lookahead-cache-misses", ...) into
  /// it at the end of each run. Not owned.
  StatsRegistry *Stats = nullptr;

  /// \name Mode-derived feature queries.
  /// @{
  bool enableSuperNode() const {
    return Mode == VectorizerMode::LSLP || Mode == VectorizerMode::SNSLP;
  }
  bool allowInverseOps() const { return Mode == VectorizerMode::SNSLP; }
  bool enabled() const { return Mode != VectorizerMode::O3; }
  /// @}
};

} // namespace snslp

#endif // SNSLP_SLP_VECTORIZERCONFIG_H
