file(REMOVE_RECURSE
  "CMakeFiles/dynamic_coverage.dir/dynamic_coverage.cpp.o"
  "CMakeFiles/dynamic_coverage.dir/dynamic_coverage.cpp.o.d"
  "dynamic_coverage"
  "dynamic_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
