//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "jit/RegAlloc.h"

#include "ir/BasicBlock.h"

#include <algorithm>
#include <vector>

using namespace snslp;

namespace {

/// Register file a register-eligible def of \p I would live in, or None
/// when the lowering cannot leave the result in a register (multi-chunk
/// ladders, lane moves, fallback calls, control flow).
RegClass defClass(const Instruction &I, const CPUFeatures &CF) {
  if (I.getType()->isVoid())
    return RegClass::None;
  auto [Kind, Lanes] = jitElementOf(I.getType());
  bool FPScalar = Kind == TypeKind::Float || Kind == TypeKind::Double;

  switch (I.getKind()) {
  case ValueKind::BinOp:
    switch (classifyBinOpShape(cast<BinaryOperator>(I), CF)) {
    case BinOpShape::Scalar:
      return FPScalar ? RegClass::XMM : RegClass::GPR;
    case BinOpShape::PackedSingle:
      return RegClass::XMM;
    case BinOpShape::PackedWide:
      return RegClass::YMM;
    default:
      return RegClass::None;
    }
  case ValueKind::UnaryOp:
    // Single-chunk unary ops finish with the result in an XMM register;
    // the multi-chunk loop reuses its scratch per chunk.
    return jitPaddedBytes(I.getType()) == 16 ? RegClass::XMM
                                             : RegClass::None;
  case ValueKind::GEP:
  case ValueKind::ICmp:
    return RegClass::GPR;
  case ValueKind::Load: {
    if (Lanes == 1)
      return FPScalar ? RegClass::XMM : RegClass::GPR;
    uint32_t Bytes = Lanes * jitLaneBytes(Kind);
    if (Bytes == 16)
      return RegClass::XMM;
    if (Bytes == 32 && CF.AVX)
      return RegClass::YMM;
    return RegClass::None;
  }
  case ValueKind::ShuffleVector: {
    // Only the whole-chunk assembly path ends with the result in a
    // register, and only a single-chunk result avoids per-chunk reuse.
    unsigned LB = jitLaneBytes(Kind);
    const auto &SV = cast<ShuffleVectorInst>(I);
    bool Chunked = (LB == 4 || LB == 8) && (SV.getMask().size() * LB) % 16 == 0;
    return Chunked && jitPaddedBytes(I.getType()) == 16 ? RegClass::XMM
                                                        : RegClass::None;
  }
  case ValueKind::AlternateOp:
    return !jitUsesFallback(I) && jitPaddedBytes(I.getType()) == 16
               ? RegClass::XMM
               : RegClass::None;
  default:
    return RegClass::None;
  }
}

/// Whether emission serves operand \p OpIdx of \p U from the register
/// cache when the operand happens to be cached. This must under-approximate
/// the emitter: returning true for a position the emitter reads from the
/// frame would let a store elision break that read. Returning false merely
/// forces a write-through.
bool regReadableUse(const Instruction &U, unsigned OpIdx,
                    const CPUFeatures &CF) {
  switch (U.getKind()) {
  case ValueKind::BinOp:
    switch (classifyBinOpShape(cast<BinaryOperator>(U), CF)) {
    case BinOpShape::Scalar:
    case BinOpShape::PackedSingle:
    case BinOpShape::PackedWide:
      return true; // Both operands consult the cache.
    default:
      return false; // Lane loops and fallback read the frame.
    }
  case ValueKind::UnaryOp:
    return jitPaddedBytes(U.getType()) == 16;
  case ValueKind::ICmp:
  case ValueKind::GEP:
    return true;
  case ValueKind::Load:
    return true; // Pointer operand.
  case ValueKind::Store: {
    if (OpIdx == 1)
      return true; // Pointer operand.
    // The value operand: scalars and whole-register vector payloads can
    // store straight from the cached register; odd vector sizes (e.g. a
    // 12-byte 3-lane payload) go through the frame ladder.
    auto [Kind, Lanes] = jitElementOf(U.getOperand(0)->getType());
    if (Lanes == 1)
      return true;
    uint32_t Bytes = Lanes * jitLaneBytes(Kind);
    return Bytes == 8 || Bytes == 16 || Bytes == 32;
  }
  case ValueKind::Select:
  case ValueKind::Branch:
    return OpIdx == 0; // Condition only; select arms are frame copies.
  default:
    return false;
  }
}

} // namespace

namespace snslp {

BinOpShape classifyBinOpShape(const BinaryOperator &BO,
                              const CPUFeatures &CF) {
  auto [Kind, Lanes] = jitElementOf(BO.getType());
  if (Kind == TypeKind::Int1)
    return BinOpShape::Fallback;
  if (Lanes == 1)
    return BinOpShape::Scalar;
  bool I32 = Kind == TypeKind::Int32;
  if (BO.getOpcode() == BinOpcode::Mul && (!I32 || !CF.SSE41))
    return BinOpShape::PerLaneMul;
  bool FP = Kind == TypeKind::Float || Kind == TypeKind::Double;
  uint32_t Total = jitPaddedBytes(BO.getType());
  if (Total == 16)
    return BinOpShape::PackedSingle;
  if (Total == 32 && (FP ? CF.AVX : CF.AVX2))
    return BinOpShape::PackedWide;
  return BinOpShape::PackedChunks;
}

bool jitUsesFallback(const Instruction &I) {
  if (const auto *BO = dyn_cast<BinaryOperator>(&I))
    return jitElementOf(BO->getType()).first == TypeKind::Int1;
  const auto *AO = dyn_cast<AlternateOp>(&I);
  if (!AO)
    return false;
  auto [Kind, Lanes] = jitElementOf(AO->getType());
  OpFamily Family = getOpFamily(AO->getLaneOpcode(0));
  bool Uniform = Family != OpFamily::None && Lanes <= 8;
  for (unsigned L = 0; Uniform && L < Lanes; ++L)
    if (getOpFamily(AO->getLaneOpcode(L)) != Family)
      Uniform = false;
  bool KindOk = Kind == TypeKind::Int32 || Kind == TypeKind::Int64 ||
                Kind == TypeKind::Float || Kind == TypeKind::Double;
  return !Uniform || !KindOk;
}

void RegAllocPlan::analyze(const Function &F, const CPUFeatures &CF) {
  for (const auto &BB : F.blocks()) {
    // Per-block instruction positions, matching emission order exactly.
    std::unordered_map<const Instruction *, uint32_t> Pos;
    std::vector<uint32_t> FallbackPos;
    uint32_t P = 0;
    for (const auto &InstPtr : *BB) {
      Pos.emplace(InstPtr.get(), P);
      if (jitUsesFallback(*InstPtr))
        FallbackPos.push_back(P);
      ++P;
    }

    for (const auto &InstPtr : *BB) {
      const Instruction &I = *InstPtr;
      RegClass C = defClass(I, CF);
      if (C == RegClass::None)
        continue;

      ValueAllocInfo VI;
      VI.Class = C;
      VI.DefPos = Pos.at(&I);
      VI.LastRegUse = VI.DefPos;
      bool WriteThrough = false, HasRegUse = false;
      for (const Use &U : I.uses()) {
        const Instruction *User = U.User;
        if (isa<PhiNode>(User) || User->getParent() != BB.get()) {
          WriteThrough = true; // Edge copies and other blocks read frames.
          continue;
        }
        if (regReadableUse(*User, U.OperandIndex, CF)) {
          VI.LastRegUse = std::max(VI.LastRegUse, Pos.at(User));
          HasRegUse = true;
        } else {
          WriteThrough = true;
        }
      }
      // A value nobody reads from a register gains nothing from residency.
      if (!HasRegUse)
        continue;
      // A fallback call inside the live range clobbers the pool, so any
      // later use re-reads the frame: the def must have stored it.
      if (!WriteThrough)
        for (uint32_t FP_ : FallbackPos)
          if (VI.DefPos < FP_ && FP_ <= VI.LastRegUse) {
            WriteThrough = true;
            break;
          }
      VI.NeedsWriteThrough = WriteThrough;
      Info.emplace(&I, VI);
      ++Eligible;
    }
  }
}

} // namespace snslp
