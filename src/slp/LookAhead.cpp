//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "slp/LookAhead.h"

#include "analysis/MemoryAddress.h"
#include "ir/Instruction.h"
#include "slp/VectorizerConfig.h"

#include <algorithm>

using namespace snslp;

int LookAhead::immediateScore(const Value *L, const Value *R) const {
  if (L == R)
    return Weights.Splat;
  if (isa<Constant>(L) && isa<Constant>(R))
    return Weights.Constants;

  const auto *LI = dyn_cast<Instruction>(L);
  const auto *RI = dyn_cast<Instruction>(R);
  if (!LI || !RI)
    return Weights.Fail;

  if (isa<LoadInst>(LI) && isa<LoadInst>(RI))
    return areConsecutiveAccesses(LI, RI) ? Weights.ConsecutiveLoads
                                          : Weights.Fail;

  const auto *LB = dyn_cast<BinaryOperator>(LI);
  const auto *RB = dyn_cast<BinaryOperator>(RI);
  if (LB && RB) {
    if (LB->getOpcode() == RB->getOpcode())
      return Weights.SameOpcode;
    if (LB->getFamily() == RB->getFamily() &&
        LB->getFamily() != OpFamily::None)
      return Weights.SameFamily;
    return Weights.Fail;
  }

  return LI->getKind() == RI->getKind() ? Weights.SameOpcode : Weights.Fail;
}

int LookAhead::scoreAtDepth(const Value *L, const Value *R,
                            unsigned D) const {
  // Budgeted scoring: once the per-attempt look-ahead budget is blown,
  // degrade every further query to the Fail weight. The sweep loops still
  // terminate (they just stop discriminating) and the vectorizer observes
  // the exhaustion on the tracker and bails out of the attempt.
  if (Budget && Budget->exhausted())
    return Weights.Fail;
  // Only the queries that cost something are memoized: load pairs run the
  // affine address decomposition of areConsecutiveAccesses (std::map
  // traffic per query), and binop pairs at depth > 0 recurse over 4
  // sub-pairings per level. The greedy candidate sweeps in
  // SuperNode::buildGroup and GraphBuilder::reorderOperands revisit both
  // many times. Cheap queries (splat/constant pointer compares, opcode
  // compares at depth 0) stay uncached — computing them costs less than a
  // hash insert.
  const auto *LB = dyn_cast<BinaryOperator>(L);
  const auto *RB = dyn_cast<BinaryOperator>(R);
  const bool BothBinops = LB && RB;
  const bool LoadPair = isa<LoadInst>(L) && isa<LoadInst>(R);
  const bool Cacheable =
      MemoEnabled && (LoadPair || (BothBinops && D > 0));
  // Non-binop scores do not depend on the remaining depth; normalizing
  // their key to depth 0 lets leaf queries issued at different recursion
  // depths share one entry.
  const unsigned KeyD = BothBinops ? D : 0;
  if (Cacheable) {
    auto It = Cache.find(Key{L, R, KeyD});
    // An entry only counts when it was written under the current epoch;
    // anything older predates an IR mutation (invalidateCache) and its
    // operand pointers may name recycled storage.
    if (It != Cache.end() && It->second.Epoch == Epoch) {
      ++Hits;
      return It->second.Score;
    }
  }

  // Cache hits are free; only computed evaluations are charged.
  if (Budget && !Budget->chargeLookAheadEval())
    return Weights.Fail;

  int Base = immediateScore(L, R);
  int Score = Base;
  if (D > 0 && BothBinops) {
    // Look one level deeper: best of the two operand pairings (straight vs
    // swapped), as in LSLP's look-ahead calculation.
    int Straight = scoreAtDepth(LB->getLHS(), RB->getLHS(), D - 1) +
                   scoreAtDepth(LB->getRHS(), RB->getRHS(), D - 1);
    int Swapped = scoreAtDepth(LB->getLHS(), RB->getRHS(), D - 1) +
                  scoreAtDepth(LB->getRHS(), RB->getLHS(), D - 1);
    Score = Base + std::max(Straight, Swapped);
  }

  if (Cacheable) {
    ++Misses;
    // insert_or_assign: a stale (older-epoch) entry under the same key is
    // overwritten in place.
    Cache.insert_or_assign(Key{L, R, KeyD}, CacheEntry{Score, Epoch});
  }
  return Score;
}

int LookAhead::groupScore(const std::vector<const Value *> &Group) const {
  int Total = 0;
  for (size_t I = 0; I + 1 < Group.size(); ++I)
    Total += score(Group[I], Group[I + 1]);
  return Total;
}
