//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual IR parsing. Accepts the exact grammar emitted by IRPrinter plus
/// comments (';' to end of line) and flexible whitespace. Kernels and tests
/// express IR as readable text rather than builder call chains.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_IR_PARSER_H
#define SNSLP_IR_PARSER_H

#include <string>

namespace snslp {

class Module;

/// Parses the functions in \p Source and adds them to \p M.
///
/// \returns true on success. On failure, returns false and stores a
/// diagnostic (with line number) into \p ErrMsg when non-null; functions
/// parsed before the error remain in \p M.
bool parseIR(const std::string &Source, Module &M,
             std::string *ErrMsg = nullptr);

} // namespace snslp

#endif // SNSLP_IR_PARSER_H
