//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrency stress tests for the process-wide support registries that
/// the service thread pool shares across compile jobs: StatsRegistry,
/// RemarkCollector, and the FaultInjector singleton. Before the
/// thread-safety sweep these registries were single-threaded (unguarded
/// map/vector mutations) and these tests fail under ThreadSanitizer; they
/// are part of the tsan_smoke ctest label:
///   cmake -B build-tsan -S . -DSNSLP_SANITIZE="thread"
///   ctest --test-dir build-tsan -L tsan_smoke
///
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "support/Remark.h"
#include "support/Statistic.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

using namespace snslp;

namespace {

constexpr int kThreads = 4;
constexpr int kIters = 2000;

TEST(RegistryStressTest, StatsRegistryConcurrentAddAndRecord) {
  StatsRegistry Stats;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&Stats, T] {
      for (int I = 0; I < kIters; ++I) {
        Stats.add("shared.counter");
        Stats.add("per-thread." + std::to_string(T), 2);
        Stats.record("shared.dist", I);
      }
    });
  // Concurrent readers while producers run: must observe consistent
  // (if partial) state, never crash or race.
  std::atomic<bool> Stop{false};
  std::thread Reader([&Stats, &Stop] {
    while (!Stop.load()) {
      (void)Stats.get("shared.counter");
      (void)Stats.snapshot();
      (void)Stats.getDistribution("shared.dist");
    }
  });
  for (auto &T : Threads)
    T.join();
  Stop = true;
  Reader.join();

  EXPECT_EQ(Stats.get("shared.counter"), kThreads * kIters);
  for (int T = 0; T < kThreads; ++T)
    EXPECT_EQ(Stats.get("per-thread." + std::to_string(T)), 2 * kIters);
  EXPECT_EQ(Stats.getDistribution("shared.dist").size(),
            static_cast<size_t>(kThreads * kIters));
}

TEST(RegistryStressTest, StatsRegistryConcurrentMerge) {
  StatsRegistry Target;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&Target] {
      for (int I = 0; I < 50; ++I) {
        StatsRegistry Local;
        Local.add("merged", 10);
        Local.record("merged.dist", I);
        Target.mergeFrom(Local);
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Target.get("merged"), kThreads * 50 * 10);
  EXPECT_EQ(Target.getDistribution("merged.dist").size(),
            static_cast<size_t>(kThreads * 50));
}

TEST(RegistryStressTest, RemarkCollectorConcurrentProducers) {
  RemarkCollector RC;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&RC, T] {
      for (int I = 0; I < kIters; ++I)
        RC.add(Remark::analysis("stress-pass", "Decision",
                                "f" + std::to_string(T))
                   .withDecision("iter:" + std::to_string(I)));
    });
  // snapshot() is the concurrent-reader API; exercise it mid-flight.
  std::atomic<bool> Stop{false};
  std::thread Reader([&RC, &Stop] {
    while (!Stop.load()) {
      std::vector<Remark> Snap = RC.snapshot();
      if (!Snap.empty()) {
        EXPECT_EQ(Snap.front().Pass, "stress-pass");
      }
    }
  });
  for (auto &T : Threads)
    T.join();
  Stop = true;
  Reader.join();
  EXPECT_EQ(RC.size(), static_cast<size_t>(kThreads * kIters));
}

TEST(RegistryStressTest, FaultInjectorConcurrentProbesAndArming) {
  FaultInjector &FI = FaultInjector::instance();
  FI.disarmAll();

  std::atomic<uint64_t> Fired{0};
  std::vector<std::thread> Probers;
  std::atomic<bool> Stop{false};
  for (int T = 0; T < kThreads; ++T)
    Probers.emplace_back([&] {
      while (!Stop.load()) {
        if (faultPoint("stress.site"))
          ++Fired;
        (void)FI.anyArmed();
      }
    });
  // Arm/disarm churn from another thread while the probes hammer.
  for (int I = 0; I < 200; ++I) {
    FI.arm("stress.site", 1);
    while (FI.anyArmed() && FI.fireCount("stress.site") == 0 &&
           Fired.load() < static_cast<uint64_t>(I + 1)) {
      std::this_thread::yield();
      // A prober fires the site exactly once; disarmAll also breaks us
      // out in case the probe raced the arm.
      if (!FI.anyArmed())
        break;
    }
    FI.disarmAll();
  }
  Stop = true;
  for (auto &T : Probers)
    T.join();
  FI.disarmAll();
  // Every armed one-shot site fired at most once per arming.
  EXPECT_LE(Fired.load(), 200u);
  EXPECT_GE(Fired.load(), 1u);
}

} // namespace
