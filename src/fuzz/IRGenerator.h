//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured random IR program generator for the differential-testing
/// subsystem (src/fuzz). Emits verifier-clean modules biased toward the
/// shapes that stress Super-Node SLP legality: deep +/- and */÷ chains,
/// mixed-APO expression trees, adjacent load/store groups, aliasing store
/// clusters, and unrolled loops with phis — over all four scalar element
/// types. Seeded through support/RNG.h so every program is reproducible
/// from a single 64-bit seed.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_FUZZ_IRGENERATOR_H
#define SNSLP_FUZZ_IRGENERATOR_H

#include "ir/Instruction.h"
#include "support/RNG.h"

#include <cstdint>
#include <string>

namespace snslp {

class Function;
class Module;
class Type;

namespace fuzz {

/// The program shapes the generator can emit. Each shape stresses a
/// different part of the vectorizer (see docs/fuzzing.md).
enum class ProgramShape : uint8_t {
  Expression, ///< Straight-line per-lane expression trees over input arrays.
  Alias,      ///< Straight-line reads/writes of ONE shared array.
  Loop,       ///< Unrolled loop with phis and loop-carried addressing.
};

/// Returns the artifact spelling of \p Shape ("expr", "alias", "loop").
const char *getShapeName(ProgramShape Shape);
/// Parses the artifact spelling; returns false on unknown names.
bool parseShapeName(const std::string &Name, ProgramShape &Shape);

/// Generation biases. The defaults reproduce the distributions of the
/// original hand-rolled fuzz suites.
struct GenOptions {
  /// Number of distinct input arrays for Expression/Loop shapes.
  unsigned NumArrays = 4;
  /// Element count of every array (Loop shape adds slack internally).
  size_t ArrayLen = 16;
  /// Maximum expression-tree depth (Expression shape).
  unsigned MaxExprDepth = 3;
  /// Probability that an expression leaf is a constant.
  double LeafConstProb = 0.2;
  /// Probability that an interior node uses the family's inverse opcode.
  double InverseOpProb = 0.45;
  /// Probability that an integer lane is wrapped in icmp+select.
  double SelectProb = 0.12;
  /// Probability that an FP subtree is wrapped in a unary op
  /// (fneg / fabs / sqrt∘fabs).
  double UnaryProb = 0.12;
  /// Probability that an Expression program returns a scalar reduction of
  /// its lanes instead of void.
  double ReturnValueProb = 0.25;
  /// Allow the mixed driver entry point to pick Alias / Loop shapes.
  bool AllowAlias = true;
  bool AllowLoops = true;
  /// Allow integer expression trees to mix the add/sub family with mul.
  bool AllowMixedFamilies = true;
};

/// A generated program plus the signature metadata the oracle needs to
/// synthesize arguments, register sanitizer ranges and snapshot memory.
/// Pointer arguments always come first; argument 0 is the output array.
struct GeneratedProgram {
  Function *F = nullptr;
  ProgramShape Shape = ProgramShape::Expression;
  /// Scalar element type of every array (i32/i64/f32/f64).
  Type *ElemTy = nullptr;
  /// Leading pointer arguments (arg0 = out, arg1.. = inputs).
  unsigned NumPointerArgs = 0;
  /// Elements per array buffer (already includes loop slack).
  size_t ArrayLen = 0;
  /// Loop shape: trailing i64 trip-count argument and its value.
  bool HasTripCountArg = false;
  uint64_t TripCount = 0;
  /// Loop shape: the output array is also read (in-place update).
  bool InPlace = false;
  /// Expression shape: function returns a scalar reduction.
  bool ReturnsValue = false;
  /// Seed this program was generated from (0 for hand-written programs).
  uint64_t Seed = 0;
};

/// Emits random programs into one Module. Thin and stateless apart from
/// the target module and biases: every entry point is driven entirely by
/// the RNG/seed it is handed.
class IRGenerator {
public:
  explicit IRGenerator(Module &M, GenOptions Opts = {});

  /// Mixed driver entry point: derives shape, element type, operator
  /// family and structure from \p Seed alone.
  GeneratedProgram generate(const std::string &Name, uint64_t Seed);

  /// Straight-line per-lane expression trees over \p Family, one store per
  /// lane to out[0..Lanes-1]. \p ElemTy selects the element type (null =
  /// the family default: i64 / f64).
  GeneratedProgram generateExpressionTree(const std::string &Name,
                                          OpFamily Family, unsigned Lanes,
                                          RNG &R, Type *ElemTy = nullptr);

  /// Adversarial aliasing shape: interleaved loads/stores of one shared
  /// i64 array with clustered, often-conflicting store targets.
  GeneratedProgram generateAliasProgram(const std::string &Name, RNG &R);

  /// Unrolled-loop shape: per-lane permuted add/sub chains over several
  /// arrays, optionally updating the output array in place.
  GeneratedProgram generateLoop(const std::string &Name, unsigned Unroll,
                                RNG &R);

  const GenOptions &options() const { return Opts; }
  Module &module() const { return M; }

private:
  Module &M;
  GenOptions Opts;
};

} // namespace fuzz
} // namespace snslp

#endif // SNSLP_FUZZ_IRGENERATOR_H
