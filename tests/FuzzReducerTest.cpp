//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the delta-debugging reducer (fuzz/Reducer): a planted
/// miscompile must converge to a tiny repro that still triggers the
/// oracle, dead code must be stripped under a trivial predicate, loops
/// must be straightened away when the failure does not need them, and
/// every accepted candidate must stay verifier-clean.
///
//===----------------------------------------------------------------------===//

#include "fuzz/DiffOracle.h"
#include "fuzz/IRGenerator.h"
#include "fuzz/Reducer.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace snslp;
using namespace snslp::fuzz;

namespace {

/// Flips the first integer sub into an add (the planted miscompile).
bool flipFirstSub(Function &F) {
  for (const auto &BB : F.blocks())
    for (const auto &Inst : *BB)
      if (auto *BO = dyn_cast<BinaryOperator>(Inst.get()))
        if (BO->getOpcode() == BinOpcode::Sub) {
          auto Add = std::make_unique<BinaryOperator>(
              BinOpcode::Add, BO->getLHS(), BO->getRHS());
          Add->setName(BO->getName());
          Instruction *New =
              BB->insert(BB->getIterator(BO), std::move(Add));
          BO->replaceAllUsesWith(New);
          BO->eraseFromParent();
          return true;
        }
  return false;
}

bool containsOpcode(const Function &F, BinOpcode Op) {
  for (const auto &BB : F.blocks())
    for (const auto &Inst : *BB)
      if (auto *BO = dyn_cast<BinaryOperator>(Inst.get()))
        if (BO->getOpcode() == Op)
          return true;
  return false;
}

/// The ISSUE acceptance scenario: a generated program, a miscompile
/// planted through the oracle's test-only hook, and the reducer driven by
/// the failure-signature predicate — must converge to a <= 5 instruction
/// repro that still triggers the oracle.
TEST(FuzzReducerTest, PlantedMiscompileShrinksToTinyRepro) {
  Context Ctx;
  Module M(Ctx, "reduce");

  // A deliberately bloated program: several lanes of deep int expression
  // trees, subs guaranteed by construction below.
  GenOptions GO;
  GO.SelectProb = 0.0;
  GO.UnaryProb = 0.0;
  GO.AllowMixedFamilies = false;
  GO.InverseOpProb = 0.6;
  IRGenerator Gen(M, GO);
  RNG R(4242);
  GeneratedProgram P =
      Gen.generateExpressionTree("bloated", OpFamily::IntAddSub, 4, R);
  ASSERT_TRUE(verifyFunction(*P.F));
  ASSERT_TRUE(containsOpcode(*P.F, BinOpcode::Sub))
      << "seed does not produce a sub; pick another";
  size_t Before = P.F->instructionCount();
  ASSERT_GT(Before, 10u) << "program too small to make reduction meaningful";

  // Oracle with the planted bug (O3 clones keep their scalar subs).
  OracleOptions Opts;
  Opts.CheckMetamorphic = false;
  Opts.CheckRoundTrip = false;
  Opts.PostVectorizeHook = [](Function &F, VectorizerMode Mode) {
    if (Mode == VectorizerMode::O3)
      flipFirstSub(F);
  };
  DiffOracle Oracle(Opts);
  OracleReport Initial = Oracle.check(P, /*DataSeed=*/9);
  ASSERT_FALSE(Initial.ok()) << "planted miscompile not detected";
  const OracleFailure Target = Initial.Failures.front();

  // Shrink under the failure-signature predicate.
  Reducer Red;
  ReduceResult RR = Red.reduce(*P.F, [&](Function &Cand) {
    GeneratedProgram Q = P;
    Q.F = &Cand;
    OracleReport Rep = Oracle.check(Q, /*DataSeed=*/9);
    return std::any_of(Rep.Failures.begin(), Rep.Failures.end(),
                       [&](const OracleFailure &F) {
                         return F.Variant == Target.Variant &&
                                F.Engine == Target.Engine &&
                                F.Kind == Target.Kind;
                       });
  });

  ASSERT_NE(RR.Reduced, nullptr);
  EXPECT_EQ(RR.InstructionsBefore, Before);
  EXPECT_LE(RR.InstructionsAfter, 5u)
      << "reducer failed to converge to a tiny repro";
  EXPECT_LT(RR.InstructionsAfter, RR.InstructionsBefore);
  EXPECT_GT(RR.CandidatesAccepted, 0u);
  EXPECT_TRUE(verifyFunction(*RR.Reduced));
  // The repro must still carry the sub the hook flips...
  EXPECT_TRUE(containsOpcode(*RR.Reduced, BinOpcode::Sub));
  // ...and still trigger the same oracle failure.
  GeneratedProgram Q = P;
  Q.F = RR.Reduced;
  OracleReport Final = Oracle.check(Q, /*DataSeed=*/9);
  EXPECT_FALSE(Final.ok());
}

/// Instructions not needed by the predicate are stripped wholesale.
TEST(FuzzReducerTest, DeadWeightIsStripped) {
  Context Ctx;
  Module M(Ctx, "dead");
  const char *Source = "func @f(ptr %out, ptr %in0) {\n"
                       "entry:\n"
                       "  %p = gep i64, ptr %in0, i64 0\n"
                       "  %a = load i64, ptr %p\n"
                       "  %q = gep i64, ptr %in0, i64 1\n"
                       "  %b = load i64, ptr %q\n"
                       "  %c = add i64 %a, %b\n"
                       "  %d = mul i64 %c, %c\n"
                       "  %e = sub i64 %d, %a\n"
                       "  %o = gep i64, ptr %out, i64 0\n"
                       "  store i64 %e, ptr %o\n"
                       "  %o1 = gep i64, ptr %out, i64 1\n"
                       "  store i64 %c, ptr %o1\n"
                       "  ret void\n"
                       "}\n";
  std::string Err;
  ASSERT_TRUE(parseIR(Source, M, &Err)) << Err;
  Function *F = M.getFunction("f");

  // Interesting = "still contains a mul". Everything else is fair game.
  Reducer Red;
  ReduceResult RR = Red.reduce(*F, [](Function &Cand) {
    return containsOpcode(Cand, BinOpcode::Mul);
  });
  ASSERT_NE(RR.Reduced, nullptr);
  EXPECT_TRUE(verifyFunction(*RR.Reduced));
  EXPECT_TRUE(containsOpcode(*RR.Reduced, BinOpcode::Mul));
  // mul + ret is the floor; allow a little slack above it.
  EXPECT_LE(RR.InstructionsAfter, 3u);
}

/// Loops are straightened away when the predicate does not need them.
TEST(FuzzReducerTest, LoopsAreStraightened) {
  Context Ctx;
  Module M(Ctx, "loopred");
  IRGenerator Gen(M);
  RNG R(77);
  GeneratedProgram P = Gen.generateLoop("loopy", /*Unroll=*/4, R);
  ASSERT_TRUE(verifyFunction(*P.F));
  ASSERT_GT(P.F->blocks().size(), 1u);

  Reducer Red;
  ReduceResult RR = Red.reduce(*P.F, [](Function &Cand) {
    return containsOpcode(Cand, BinOpcode::Add) ||
           containsOpcode(Cand, BinOpcode::Sub);
  });
  ASSERT_NE(RR.Reduced, nullptr);
  EXPECT_TRUE(verifyFunction(*RR.Reduced));
  // The conditional branch (and with it the diamond/loop control flow)
  // must be straightened away and unreachable blocks deleted.
  for (const auto &BB : RR.Reduced->blocks()) {
    const Instruction *Term = BB->getTerminator();
    const auto *Br = Term ? dyn_cast<BranchInst>(Term) : nullptr;
    EXPECT_TRUE(!Br || !Br->isConditional());
  }
  EXPECT_LE(RR.Reduced->blocks().size(), 2u);
  EXPECT_LE(RR.InstructionsAfter, 6u);
  EXPECT_LT(RR.InstructionsAfter, P.F->instructionCount());
}

/// The reducer never mutates the input function, even while its candidate
/// clones are being shredded.
TEST(FuzzReducerTest, InputFunctionIsLeftUntouched) {
  Context Ctx;
  Module M(Ctx, "irred");
  const char *Source = "func @g(ptr %out, ptr %in0) {\n"
                       "entry:\n"
                       "  %p = gep i64, ptr %in0, i64 0\n"
                       "  %a = load i64, ptr %p\n"
                       "  %o = gep i64, ptr %out, i64 0\n"
                       "  store i64 %a, ptr %o\n"
                       "  ret void\n"
                       "}\n";
  std::string Err;
  ASSERT_TRUE(parseIR(Source, M, &Err)) << Err;
  Function *F = M.getFunction("g");
  size_t Before = F->instructionCount();
  std::string Printed = toString(*F);

  // Predicate pins the exact instruction count, so deletions cannot
  // survive (operand substitutions still may — that is fine).
  Reducer Red;
  ReduceResult RR = Red.reduce(*F, [Before](Function &Cand) {
    return Cand.instructionCount() == Before;
  });
  ASSERT_NE(RR.Reduced, nullptr);
  EXPECT_EQ(RR.InstructionsAfter, Before);
  EXPECT_EQ(toString(*F), Printed) << "input function was mutated";
  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_TRUE(verifyFunction(*RR.Reduced));
}

} // namespace
