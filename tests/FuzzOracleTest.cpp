//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the differential oracle (fuzz/DiffOracle) and the metamorphic
/// rewrites (fuzz/Metamorphic): a bounded deterministic sweep must be
/// clean, a planted miscompile (via the test-only PostVectorizeHook) must
/// be detected with the right failure signature, every metamorphic rule
/// must preserve semantics, and the FP comparison must honour its
/// tolerances.
///
//===----------------------------------------------------------------------===//

#include "fuzz/DiffOracle.h"
#include "fuzz/IRGenerator.h"
#include "fuzz/Metamorphic.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

using namespace snslp;
using namespace snslp::fuzz;

namespace {

/// A tiny hand-written program with one observable subtraction, plus the
/// metadata the oracle needs to execute it.
GeneratedProgram parsePlanted(Module &M) {
  const char *Source = "func @planted(ptr %out, ptr %in0) {\n"
                       "entry:\n"
                       "  %p = gep i64, ptr %in0, i64 0\n"
                       "  %a = load i64, ptr %p\n"
                       "  %q = gep i64, ptr %in0, i64 1\n"
                       "  %b = load i64, ptr %q\n"
                       "  %d = sub i64 %a, %b\n"
                       "  %o = gep i64, ptr %out, i64 0\n"
                       "  store i64 %d, ptr %o\n"
                       "  ret void\n"
                       "}\n";
  std::string Err;
  bool Parsed = parseIR(Source, M, &Err);
  EXPECT_TRUE(Parsed) << Err;
  GeneratedProgram P;
  P.F = M.getFunction("planted");
  P.Shape = ProgramShape::Expression;
  P.ElemTy = M.getContext().getInt64Ty();
  P.NumPointerArgs = 2;
  P.ArrayLen = 8;
  return P;
}

/// Flips the first integer sub into an add — the planted miscompile.
/// Returns true when a sub was found.
bool flipFirstSub(Function &F) {
  for (const auto &BB : F.blocks())
    for (const auto &Inst : *BB)
      if (auto *BO = dyn_cast<BinaryOperator>(Inst.get()))
        if (BO->getOpcode() == BinOpcode::Sub) {
          auto Add = std::make_unique<BinaryOperator>(
              BinOpcode::Add, BO->getLHS(), BO->getRHS());
          Add->setName(BO->getName());
          Instruction *New =
              BB->insert(BB->getIterator(BO), std::move(Add));
          BO->replaceAllUsesWith(New);
          BO->eraseFromParent();
          return true;
        }
  return false;
}

TEST(FuzzOracleTest, BoundedSweepIsClean) {
  DiffOracle Oracle;
  for (uint64_t Seed = 1; Seed <= 150; ++Seed) {
    Context Ctx;
    Module M(Ctx, "sweep");
    GeneratedProgram P = IRGenerator(M).generate("f", Seed);
    OracleReport Report = Oracle.check(P, Seed);
    ASSERT_TRUE(Report.ok()) << "seed " << Seed << "\n" << Report.summary();
    EXPECT_GT(Report.VariantsChecked, 2u);
  }
}

TEST(FuzzOracleTest, CleanProgramPassesAndHookedProgramFails) {
  Context Ctx;
  Module M(Ctx, "planted");
  GeneratedProgram P = parsePlanted(M);

  // Without the hook the program is healthy.
  {
    DiffOracle Oracle;
    OracleReport Report = Oracle.check(P, /*DataSeed=*/7);
    ASSERT_TRUE(Report.ok()) << Report.summary();
  }

  // Plant the miscompile under the O3 (no-op vectorizer) configuration:
  // its clone keeps the scalar sub, so the flip is guaranteed to land.
  OracleOptions Opts;
  Opts.PostVectorizeHook = [](Function &F, VectorizerMode Mode) {
    if (Mode == VectorizerMode::O3) {
      ASSERT_TRUE(flipFirstSub(F));
    }
  };
  DiffOracle Hooked(Opts);
  OracleReport Report = Hooked.check(P, /*DataSeed=*/7);
  ASSERT_FALSE(Report.ok()) << "planted miscompile was not detected";
  // Every failure must implicate a hooked variant (plain "O3" or an
  // O3-compiled metamorphic clone like "meta:commute/O3"), on both engines.
  for (const OracleFailure &F : Report.Failures) {
    EXPECT_NE(F.Variant.find("O3"), std::string::npos) << F.render();
    EXPECT_EQ(F.Kind, "memory-mismatch") << F.render();
  }
  bool SawBytecode = std::any_of(
      Report.Failures.begin(), Report.Failures.end(),
      [](const OracleFailure &F) { return F.Engine == "bytecode"; });
  bool SawReference = std::any_of(
      Report.Failures.begin(), Report.Failures.end(),
      [](const OracleFailure &F) { return F.Engine == "reference"; });
  EXPECT_TRUE(SawBytecode && SawReference);
}

TEST(FuzzOracleTest, HookedVectorizedModeIsAlsoDetected) {
  Context Ctx;
  Module M(Ctx, "planted2");
  GeneratedProgram P = parsePlanted(M);

  // Flip the sub in every mode: whatever instruction shape the vectorizer
  // leaves behind, at least the O3 and original-scalar paths must fire,
  // and no failure may be blamed on a non-hooked variant.
  OracleOptions Opts;
  Opts.CheckMetamorphic = false;
  Opts.PostVectorizeHook = [](Function &F, VectorizerMode) {
    flipFirstSub(F);
  };
  DiffOracle Hooked(Opts);
  OracleReport Report = Hooked.check(P, /*DataSeed=*/7);
  ASSERT_FALSE(Report.ok());
}

TEST(FuzzMetamorphicTest, RulesPreserveSemantics) {
  DiffOracle Oracle;
  unsigned Applied[NumMetamorphicRules] = {};
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    Context Ctx;
    Module M(Ctx, "meta");
    GeneratedProgram P = IRGenerator(M).generate("f", Seed);
    ProgramRun Baseline =
        Oracle.runProgram(P, *P.F, Seed, /*Reference=*/true);
    ASSERT_TRUE(Baseline.Ok) << Baseline.Error;

    for (unsigned RuleIdx = 0; RuleIdx < NumMetamorphicRules; ++RuleIdx) {
      auto Rule = static_cast<MetamorphicRule>(RuleIdx);
      Function *Clone =
          P.F->cloneInto(M, "f.m" + std::to_string(RuleIdx));
      RNG R(Seed * 977 + RuleIdx);
      unsigned Rewrites = applyMetamorphicRule(*Clone, Rule, R);
      if (Rewrites == 0)
        continue;
      Applied[RuleIdx] += Rewrites;
      std::vector<std::string> Errors;
      ASSERT_TRUE(verifyFunction(*Clone, &Errors))
          << "seed " << Seed << " rule " << getRuleName(Rule) << ": "
          << (Errors.empty() ? "" : Errors.front());

      GeneratedProgram Q = P;
      Q.F = Clone;
      for (bool Reference : {false, true}) {
        ProgramRun Run = Oracle.runProgram(Q, *Clone, Seed, Reference);
        ASSERT_TRUE(Run.Ok) << Run.Error;
        std::string Detail;
        EXPECT_TRUE(Oracle.compareRuns(P, Baseline, Run, &Detail))
            << "seed " << Seed << " rule " << getRuleName(Rule) << " "
            << (Reference ? "reference" : "bytecode") << ": " << Detail;
      }
    }
  }
  // Each rule must actually fire somewhere in the sweep.
  for (unsigned RuleIdx = 0; RuleIdx < NumMetamorphicRules; ++RuleIdx)
    EXPECT_GT(Applied[RuleIdx], 0u)
        << getRuleName(static_cast<MetamorphicRule>(RuleIdx))
        << " never applied";
}

TEST(FuzzOracleTest, CompareRunsHonoursTolerances) {
  Context Ctx;
  GeneratedProgram P;
  P.ElemTy = Ctx.getDoubleTy();
  P.NumPointerArgs = 1;
  P.ArrayLen = 2;

  DiffOracle Oracle;
  ProgramRun A, B;
  A.Ok = B.Ok = true;
  A.FPMem = {{1.0, 2.0}};
  B.FPMem = {{1.0 + 1e-12, 2.0}};
  std::string Detail;
  EXPECT_TRUE(Oracle.compareRuns(P, A, B, &Detail)) << Detail;

  B.FPMem = {{1.0 + 1e-3, 2.0}};
  EXPECT_FALSE(Oracle.compareRuns(P, A, B, &Detail));
  EXPECT_NE(Detail.find("arg0[0]"), std::string::npos) << Detail;

  // NaN == NaN under the bitwise fast path (a legal program state must
  // not be reported as a mismatch just because it is NaN).
  double NaN = std::numeric_limits<double>::quiet_NaN();
  A.FPMem = {{NaN, 2.0}};
  B.FPMem = {{NaN, 2.0}};
  EXPECT_TRUE(Oracle.compareRuns(P, A, B, &Detail)) << Detail;

  // Integer comparisons are exact.
  GeneratedProgram PI;
  PI.ElemTy = Ctx.getInt64Ty();
  PI.NumPointerArgs = 1;
  PI.ArrayLen = 1;
  ProgramRun IA, IB;
  IA.Ok = IB.Ok = true;
  IA.IntMem = {{41}};
  IB.IntMem = {{42}};
  EXPECT_FALSE(Oracle.compareRuns(PI, IA, IB, &Detail));
}

} // namespace
