//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the native x86-64 JIT engine: differential parity with the
/// bytecode engine (values, memory, accounting, traps, error strings),
/// the scalar-call fallback, CPU feature gating, and the fault-injected
/// degradation ladder (jit.emit.abort / jit.exec.trap -> bytecode).
///
//===----------------------------------------------------------------------===//

#include "costmodel/TargetCostModel.h"
#include "driver/KernelRunner.h"
#include "interp/ExecutionEngine.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "jit/CPUFeatures.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

using namespace snslp;

namespace {

bool jitAvailableOnHost() { return hostCPUFeatures().jitSupported(); }

class NativeEngineTest : public ::testing::Test {
protected:
  Context Ctx;
  Module M{Ctx, "native-test"};

  void TearDown() override { FaultInjector::instance().disarmAll(); }

  Function *parse(const std::string &Source) {
    std::string Err;
    bool Ok = parseIR(Source, M, &Err);
    EXPECT_TRUE(Ok) << Err;
    if (!Ok)
      return nullptr;
    Function *F = M.functions().back().get();
    EXPECT_TRUE(verifyFunction(*F));
    return F;
  }

  /// Runs \p F under both the native and bytecode engines on the same
  /// arguments and asserts bit-identical results and accounting. Memory
  /// effects are compared by the caller (distinct buffers per engine).
  void expectParity(Function *F, const std::vector<RTValue> &Args,
                    uint64_t MaxSteps = 1ull << 32) {
    ExecutionEngine E(*F);
    ExecutionResult NR = E.runNative(Args, MaxSteps);
    ExecutionResult BR = E.run(Args, MaxSteps);
    if (jitAvailableOnHost())
      EXPECT_EQ(NR.EngineUsed, EngineKind::Native)
          << E.nativeDisabledReason();
    EXPECT_EQ(NR.Ok, BR.Ok) << NR.Error << " vs " << BR.Error;
    EXPECT_EQ(NR.Error, BR.Error);
    EXPECT_EQ(NR.TrapKind, BR.TrapKind);
    EXPECT_EQ(NR.StepsExecuted, BR.StepsExecuted);
    EXPECT_EQ(NR.VectorSteps, BR.VectorSteps);
    EXPECT_DOUBLE_EQ(NR.Cycles, BR.Cycles);
    if (NR.Ok && BR.Ok)
      EXPECT_TRUE(NR.ReturnValue.bitwiseEquals(BR.ReturnValue))
          << "native/bytecode return values differ";
  }
};

TEST_F(NativeEngineTest, HostFeatureDetection) {
  const CPUFeatures &CF = hostCPUFeatures();
  // jitSupported requires x86-64 + SSE2; on any other host the engine must
  // report a clean unavailability instead of emitting code.
  EXPECT_EQ(CF.jitSupported(), CF.X86_64 && CF.SSE2);
  EXPECT_FALSE(CF.isaString().empty());
  if (CF.AVX2)
    EXPECT_TRUE(CF.AVX); // AVX2 implies AVX per the detection order.
}

TEST_F(NativeEngineTest, EngineKindNames) {
  EXPECT_STREQ(getEngineKindName(EngineKind::Bytecode), "bytecode");
  EXPECT_STREQ(getEngineKindName(EngineKind::Reference), "reference");
  EXPECT_STREQ(getEngineKindName(EngineKind::Native), "native");
}

TEST_F(NativeEngineTest, ScalarIntegerArithmetic) {
  Function *F = parse("func @a(i64 %x, i64 %y) -> i64 {\n"
                      "entry:\n"
                      "  %s = add i64 %x, %y\n"
                      "  %d = sub i64 %s, 3\n"
                      "  %m = mul i64 %d, %d\n"
                      "  ret i64 %m\n"
                      "}\n");
  expectParity(F, {argInt64(10), argInt64(5)});
  expectParity(F, {argInt64(0x7fffffffffffffffLL), argInt64(1)});
}

TEST_F(NativeEngineTest, ScalarI32Canonicalization) {
  // i32 results must wrap to 32 bits and sign-extend through compares,
  // exactly like the bytecode engine's canonical cells.
  Function *F = parse("func @w(ptr %p) -> i64 {\n"
                      "entry:\n"
                      "  %x = load i32, ptr %p\n"
                      "  %m = mul i32 %x, %x\n"
                      "  %c = icmp slt i32 %m, 0\n"
                      "  %r = select %c, i64 1, 0\n"
                      "  ret i64 %r\n"
                      "}\n");
  int32_t Val = 123456; // 123456^2 overflows i32 to a negative value.
  ExecutionEngine E(*F);
  E.addMemoryRange(&Val, sizeof(Val));
  ExecutionResult NR = E.runNative({argPointer(&Val)});
  ExecutionResult BR = E.run({argPointer(&Val)});
  ASSERT_TRUE(NR.Ok) << NR.Error;
  EXPECT_TRUE(NR.ReturnValue.bitwiseEquals(BR.ReturnValue));
  EXPECT_EQ(NR.ReturnValue.getInt(), 1);
}

TEST_F(NativeEngineTest, ScalarFloatRoundsLikeBytecode) {
  Function *F = parse("func @f32(ptr %p) -> f32 {\n"
                      "entry:\n"
                      "  %x = load f32, ptr %p\n"
                      "  %a = fadd f32 %x, 0.1\n"
                      "  %b = fmul f32 %a, 3.0\n"
                      "  %c = fdiv f32 %b, 7.0\n"
                      "  ret f32 %c\n"
                      "}\n");
  float In = 1.75f;
  ExecutionEngine E(*F);
  E.addMemoryRange(&In, sizeof(In));
  ExecutionResult NR = E.runNative({argPointer(&In)});
  ExecutionResult BR = E.run({argPointer(&In)});
  ASSERT_TRUE(NR.Ok) << NR.Error;
  EXPECT_TRUE(NR.ReturnValue.bitwiseEquals(BR.ReturnValue));
}

TEST_F(NativeEngineTest, VectorArithmeticAllKinds) {
  struct Case {
    const char *Ty;
    const char *Op;
  };
  // One packed op per (element kind, opcode family) the emitter covers.
  const Case Cases[] = {
      {"<4 x f32>", "fadd"}, {"<4 x f32>", "fsub"}, {"<4 x f32>", "fmul"},
      {"<4 x f32>", "fdiv"}, {"<2 x f64>", "fadd"}, {"<2 x f64>", "fmul"},
      {"<2 x f64>", "fdiv"}, {"<4 x i32>", "add"},  {"<4 x i32>", "sub"},
      {"<4 x i32>", "mul"},  {"<2 x i64>", "add"},  {"<2 x i64>", "sub"},
      {"<2 x i64>", "mul"},  {"<8 x f32>", "fadd"}, {"<8 x i32>", "add"},
      {"<4 x f64>", "fmul"}, {"<4 x i64>", "sub"},
  };
  for (const Case &C : Cases) {
    static unsigned Counter = 0;
    std::string Src = std::string("func @v") +
                      std::to_string(Counter++) + "(ptr %a, ptr %b, ptr %c) {\n"
                      "entry:\n"
                      "  %x = load " +
                      C.Ty + ", ptr %a\n  %y = load " + C.Ty +
                      ", ptr %b\n  %z = " + C.Op + " " + C.Ty +
                      " %x, %y\n  store " + C.Ty +
                      " %z, ptr %c\n  ret void\n}\n";
    Function *F = parse(Src);
    ASSERT_NE(F, nullptr) << Src;

    // 8 lanes x 8 bytes covers every case; deterministic nonzero values.
    alignas(32) uint8_t A[64], B[64], CN[64], CB[64];
    for (unsigned I = 0; I < 64; ++I) {
      A[I] = static_cast<uint8_t>(I * 7 + 3);
      B[I] = static_cast<uint8_t>(I * 13 + 40);
    }
    std::memset(CN, 0, sizeof(CN));
    std::memset(CB, 0, sizeof(CB));

    ExecutionEngine E(*F);
    E.addMemoryRange(A, sizeof(A));
    E.addMemoryRange(B, sizeof(B));
    E.addMemoryRange(CN, sizeof(CN));
    E.addMemoryRange(CB, sizeof(CB));
    ExecutionResult NR =
        E.runNative({argPointer(A), argPointer(B), argPointer(CN)});
    ExecutionResult BR =
        E.run({argPointer(A), argPointer(B), argPointer(CB)});
    ASSERT_TRUE(NR.Ok) << C.Ty << " " << C.Op << ": " << NR.Error;
    ASSERT_TRUE(BR.Ok) << BR.Error;
    EXPECT_EQ(NR.StepsExecuted, BR.StepsExecuted);
    EXPECT_EQ(NR.VectorSteps, BR.VectorSteps);
    EXPECT_EQ(std::memcmp(CN, CB, sizeof(CN)), 0)
        << "native/bytecode memory differs for " << C.Ty << " " << C.Op;
  }
}

TEST_F(NativeEngineTest, AlternatingOpBlend) {
  Function *F = parse("func @alt(ptr %a, ptr %b, ptr %c) {\n"
                      "entry:\n"
                      "  %x = load <4 x f32>, ptr %a\n"
                      "  %y = load <4 x f32>, ptr %b\n"
                      "  %z = altop <4 x f32> [fadd, fsub, fadd, fsub], %x, %y\n"
                      "  store <4 x f32> %z, ptr %c\n"
                      "  ret void\n"
                      "}\n");
  float A[4] = {1.5f, 2.5f, -3.25f, 8.0f};
  float B[4] = {0.5f, 4.0f, 2.0f, -1.0f};
  float CN[4] = {}, CB[4] = {};
  ExecutionEngine E(*F);
  E.addMemoryRange(A, sizeof(A));
  E.addMemoryRange(B, sizeof(B));
  E.addMemoryRange(CN, sizeof(CN));
  E.addMemoryRange(CB, sizeof(CB));
  ExecutionResult NR =
      E.runNative({argPointer(A), argPointer(B), argPointer(CN)});
  ExecutionResult BR = E.run({argPointer(A), argPointer(B), argPointer(CB)});
  ASSERT_TRUE(NR.Ok) << NR.Error;
  ASSERT_TRUE(BR.Ok) << BR.Error;
  EXPECT_EQ(std::memcmp(CN, CB, sizeof(CN)), 0);
  EXPECT_EQ(CN[0], 2.0f);  // fadd
  EXPECT_EQ(CN[1], -1.5f); // fsub
  // The uniform-family blend lowers natively, not via the fallback.
  EXPECT_EQ(E.nativeFallbackOpCount(), 0u);
}

TEST_F(NativeEngineTest, ShuffleInsertExtract) {
  Function *F = parse(
      "func @s(ptr %a, ptr %b) -> f64 {\n"
      "entry:\n"
      "  %v = load <2 x f64>, ptr %a\n"
      "  %e0 = extractelement <2 x f64> %v, 0\n"
      "  %w = insertelement <2 x f64> %v, f64 %e0, 1\n"
      "  %sh = shufflevector <2 x f64> %w, %v, [1, 2]\n"
      "  store <2 x f64> %sh, ptr %b\n"
      "  %r = extractelement <2 x f64> %sh, 1\n"
      "  ret f64 %r\n"
      "}\n");
  double A[2] = {3.5, -7.25};
  double BN[2] = {}, BB[2] = {};
  ExecutionEngine E(*F);
  E.addMemoryRange(A, sizeof(A));
  E.addMemoryRange(BN, sizeof(BN));
  E.addMemoryRange(BB, sizeof(BB));
  ExecutionResult NR = E.runNative({argPointer(A), argPointer(BN)});
  ExecutionResult BR = E.run({argPointer(A), argPointer(BB)});
  ASSERT_TRUE(NR.Ok) << NR.Error;
  ASSERT_TRUE(BR.Ok) << BR.Error;
  EXPECT_TRUE(NR.ReturnValue.bitwiseEquals(BR.ReturnValue));
  EXPECT_EQ(std::memcmp(BN, BB, sizeof(BN)), 0);
}

TEST_F(NativeEngineTest, UnaryOps) {
  Function *F = parse("func @u(ptr %a, ptr %b) {\n"
                      "entry:\n"
                      "  %v = load <4 x f32>, ptr %a\n"
                      "  %n = fneg <4 x f32> %v\n"
                      "  %q = fabs <4 x f32> %n\n"
                      "  %s = sqrt <4 x f32> %q\n"
                      "  store <4 x f32> %s, ptr %b\n"
                      "  ret void\n"
                      "}\n");
  float A[4] = {4.0f, 2.25f, 0.0f, 10.5f};
  float BN[4] = {}, BB[4] = {};
  ExecutionEngine E(*F);
  E.addMemoryRange(A, sizeof(A));
  E.addMemoryRange(BN, sizeof(BN));
  E.addMemoryRange(BB, sizeof(BB));
  ExecutionResult NR = E.runNative({argPointer(A), argPointer(BN)});
  ExecutionResult BR = E.run({argPointer(A), argPointer(BB)});
  ASSERT_TRUE(NR.Ok) << NR.Error;
  ASSERT_TRUE(BR.Ok) << BR.Error;
  // sqrtps must be bit-identical to the reference's
  // double-sqrt-rounded-to-float (correctly rounded either way).
  EXPECT_EQ(std::memcmp(BN, BB, sizeof(BN)), 0);
}

TEST_F(NativeEngineTest, LoopWithPhisAndAccounting) {
  Function *F = parse(
      "func @sum(ptr %a, i64 %n) -> i64 {\n"
      "entry:\n"
      "  br label %body\n"
      "body:\n"
      "  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]\n"
      "  %acc = phi i64 [ 0, %entry ], [ %acc.next, %body ]\n"
      "  %p = gep i64, ptr %a, i64 %i\n"
      "  %v = load i64, ptr %p\n"
      "  %acc.next = add i64 %acc, %v\n"
      "  %i.next = add i64 %i, 1\n"
      "  %c = icmp ult i64 %i.next, %n\n"
      "  br i1 %c, label %body, label %done\n"
      "done:\n"
      "  ret i64 %acc.next\n"
      "}\n");
  int64_t A[16];
  for (int I = 0; I < 16; ++I)
    A[I] = I * I - 5;
  TargetCostModel TCM;
  ExecutionEngine E(*F, [&TCM](const Instruction &I) {
    return TCM.executionCycles(I);
  });
  E.addMemoryRange(A, sizeof(A));
  std::vector<RTValue> Args = {argPointer(A), argInt64(16)};
  ExecutionResult NR = E.runNative(Args);
  ExecutionResult BR = E.run(Args);
  ASSERT_TRUE(NR.Ok) << NR.Error;
  ASSERT_TRUE(BR.Ok) << BR.Error;
  EXPECT_TRUE(NR.ReturnValue.bitwiseEquals(BR.ReturnValue));
  EXPECT_EQ(NR.StepsExecuted, BR.StepsExecuted);
  EXPECT_EQ(NR.VectorSteps, BR.VectorSteps);
  EXPECT_DOUBLE_EQ(NR.Cycles, BR.Cycles);
}

TEST_F(NativeEngineTest, PhiSwapNeedsScratch) {
  // The classic parallel-copy swap: %x and %y exchange values each
  // iteration, forcing the two-phase scratch copy on the back edge.
  Function *F = parse(
      "func @swap(i64 %n) -> i64 {\n"
      "entry:\n"
      "  br label %body\n"
      "body:\n"
      "  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]\n"
      "  %x = phi i64 [ 1, %entry ], [ %y, %body ]\n"
      "  %y = phi i64 [ 2, %entry ], [ %x, %body ]\n"
      "  %i.next = add i64 %i, 1\n"
      "  %c = icmp ult i64 %i.next, %n\n"
      "  br i1 %c, label %body, label %done\n"
      "done:\n"
      "  ret i64 %x\n"
      "}\n");
  for (int64_t N : {1, 2, 3, 8})
    expectParity(F, {argInt64(N)});
}

TEST_F(NativeEngineTest, FuelExhaustionMatchesBytecode) {
  Function *F = parse("func @spin() -> i64 {\n"
                      "entry:\n"
                      "  br label %loop\n"
                      "loop:\n"
                      "  br label %loop\n"
                      "}\n");
  expectParity(F, {}, /*MaxSteps=*/100);
}

TEST_F(NativeEngineTest, OutOfBoundsTrapParity) {
  Function *LoadF = parse("func @oobl(ptr %a) -> i64 {\n"
                          "entry:\n"
                          "  %p = gep i64, ptr %a, i64 9\n"
                          "  %v = load i64, ptr %p\n"
                          "  ret i64 %v\n"
                          "}\n");
  Function *StoreF = parse("func @oobs(ptr %a) {\n"
                           "entry:\n"
                           "  %p = gep i64, ptr %a, i64 -1\n"
                           "  store i64 7, ptr %p\n"
                           "  ret void\n"
                           "}\n");
  int64_t A[8] = {};
  for (Function *F : {LoadF, StoreF}) {
    ExecutionEngine E(*F);
    E.addMemoryRange(A, sizeof(A));
    ExecutionResult NR = E.runNative({argPointer(A)});
    ExecutionResult BR = E.run({argPointer(A)});
    EXPECT_FALSE(NR.Ok);
    EXPECT_FALSE(BR.Ok);
    EXPECT_EQ(NR.TrapKind, Trap::OutOfBounds);
    // Same diagnostic text, including the IR spelling of the instruction.
    EXPECT_EQ(NR.Error, BR.Error);
    // Failed runs report zero accounting in both engines.
    EXPECT_EQ(NR.StepsExecuted, 0u);
    EXPECT_EQ(NR.VectorSteps, 0u);
  }
}

TEST_F(NativeEngineTest, UncheckedModeSkipsBoundsChecks) {
  Function *F = parse("func @ld(ptr %a) -> i64 {\n"
                      "entry:\n"
                      "  %v = load i64, ptr %a\n"
                      "  ret i64 %v\n"
                      "}\n");
  int64_t V = 1234567;
  ExecutionEngine E(*F); // no addMemoryRange: sanitizer off
  ExecutionResult NR = E.runNative({argPointer(&V)});
  ASSERT_TRUE(NR.Ok) << NR.Error;
  EXPECT_EQ(NR.ReturnValue.getInt(), 1234567);
}

TEST_F(NativeEngineTest, I1ArithmeticUsesFallback) {
  // i1 add (XOR semantics through canonicalization) is outside the native
  // emitter's coverage; it must lower through the scalar-call fallback and
  // still match the bytecode engine exactly.
  Function *F = parse("func @b(i64 %x, i64 %y) -> i64 {\n"
                      "entry:\n"
                      "  %c1 = icmp sgt i64 %x, 0\n"
                      "  %c2 = icmp sgt i64 %y, 0\n"
                      "  %s = add i1 %c1, %c2\n"
                      "  %r = select %s, i64 1, 0\n"
                      "  ret i64 %r\n"
                      "}\n");
  ExecutionEngine E(*F);
  ExecutionResult NR = E.runNative({argInt64(5), argInt64(-5)});
  ExecutionResult BR = E.run({argInt64(5), argInt64(-5)});
  ASSERT_TRUE(NR.Ok) << NR.Error;
  EXPECT_TRUE(NR.ReturnValue.bitwiseEquals(BR.ReturnValue));
  if (NR.EngineUsed == EngineKind::Native) {
    EXPECT_GE(E.nativeFallbackOpCount(), 1u);
    EXPECT_FALSE(E.nativeFallbackOpNames().empty());
  }
}

TEST_F(NativeEngineTest, ArgumentCountMismatch) {
  Function *F = parse("func @one(i64 %x) -> i64 {\n"
                      "entry:\n"
                      "  ret i64 %x\n"
                      "}\n");
  ExecutionEngine E(*F);
  ExecutionResult NR = E.runNative({});
  EXPECT_FALSE(NR.Ok);
  EXPECT_EQ(NR.Error, "argument count mismatch");
}

TEST_F(NativeEngineTest, EmitAbortFaultDegradesToBytecode) {
  Function *F = parse("func @c() -> i64 {\nentry:\n  ret i64 42\n}\n");
  FaultInjector::instance().arm("jit.emit.abort");
  ExecutionEngine E(*F);
  EXPECT_FALSE(E.isNativeAvailable());
  EXPECT_EQ(E.nativeDisabledReason(), "emit-abort");
  ExecutionResult R = E.runNative({});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.EngineUsed, EngineKind::Bytecode);
  EXPECT_EQ(R.ReturnValue.getInt(), 42);
  EXPECT_EQ(E.nativeFallbackRuns(), 1u);
}

TEST_F(NativeEngineTest, ExecTrapFaultDegradesOnce) {
  if (!jitAvailableOnHost())
    GTEST_SKIP() << "host has no JIT support";
  Function *F = parse("func @c() -> i64 {\nentry:\n  ret i64 7\n}\n");
  ExecutionEngine E(*F);
  ASSERT_TRUE(E.isNativeAvailable()) << E.nativeDisabledReason();
  FaultInjector::instance().arm("jit.exec.trap");
  ExecutionResult R1 = E.runNative({});
  ASSERT_TRUE(R1.Ok) << R1.Error;
  EXPECT_EQ(R1.EngineUsed, EngineKind::Bytecode); // degraded run
  EXPECT_EQ(E.nativeFallbackRuns(), 1u);
  ExecutionResult R2 = E.runNative({}); // fault is one-shot
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(R2.EngineUsed, EngineKind::Native);
  EXPECT_EQ(R2.ReturnValue.getInt(), 7);
}

TEST_F(NativeEngineTest, EngineKindDispatch) {
  Function *F = parse("func @c() -> i64 {\nentry:\n  ret i64 9\n}\n");
  ExecutionEngine E(*F);
  for (EngineKind K :
       {EngineKind::Bytecode, EngineKind::Reference, EngineKind::Native}) {
    ExecutionResult R = E.run(K, {});
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.ReturnValue.getInt(), 9);
    if (K != EngineKind::Native)
      EXPECT_EQ(R.EngineUsed, K);
  }
}

TEST_F(NativeEngineTest, NativeCodeSizeReported) {
  if (!jitAvailableOnHost())
    GTEST_SKIP() << "host has no JIT support";
  Function *F = parse("func @c() -> i64 {\nentry:\n  ret i64 1\n}\n");
  ExecutionEngine E(*F);
  ASSERT_TRUE(E.isNativeAvailable());
  EXPECT_GT(E.nativeCodeSize(), 0u);
}

//===----------------------------------------------------------------------===//
// Whole-kernel differential: every kernel under every vectorizer mode must
// be observationally identical between the native and bytecode engines.
//===----------------------------------------------------------------------===//

TEST_F(NativeEngineTest, ISACapDowngradesOnly) {
  CPUFeatures Full;
  Full.X86_64 = Full.SSE2 = Full.SSE41 = Full.AVX = Full.AVX2 = true;

  CPUFeatures C = applyISACap(Full, "sse2");
  EXPECT_TRUE(C.SSE2);
  EXPECT_FALSE(C.SSE41 || C.AVX || C.AVX2);

  C = applyISACap(Full, "sse4.1");
  EXPECT_TRUE(C.SSE2 && C.SSE41);
  EXPECT_FALSE(C.AVX || C.AVX2);
  // The alternate spelling caps identically.
  CPUFeatures C2 = applyISACap(Full, "sse41");
  EXPECT_EQ(C.SSE41, C2.SSE41);
  EXPECT_EQ(C.AVX, C2.AVX);

  C = applyISACap(Full, "avx");
  EXPECT_TRUE(C.AVX);
  EXPECT_FALSE(C.AVX2);

  // No-ops: empty, "host", the full tier, and unrecognized values.
  for (const char *Cap : {"", "host", "avx2", "bogus"}) {
    C = applyISACap(Full, Cap);
    EXPECT_TRUE(C.SSE41 && C.AVX && C.AVX2) << Cap;
  }

  // A cap can only downgrade: capping an SSE2-only host at avx2 grants
  // nothing.
  CPUFeatures Sse2Only;
  Sse2Only.X86_64 = Sse2Only.SSE2 = true;
  C = applyISACap(Sse2Only, "avx2");
  EXPECT_FALSE(C.SSE41 || C.AVX || C.AVX2);
}

TEST_F(NativeEngineTest, RegAllocElidesStoresAndMatchesBytecode) {
  // %s has a single in-block register-readable use (the mul), so its
  // frame store is elided; %m feeds ret, which reads the frame, so it is
  // not allocated at all.
  Function *F = parse("func @elide(i64 %x, i64 %y) -> i64 {\n"
                      "entry:\n"
                      "  %s = add i64 %x, %y\n"
                      "  %m = mul i64 %s, %s\n"
                      "  ret i64 %m\n"
                      "}\n");
  expectParity(F, {argInt64(41), argInt64(1)});
  if (!jitAvailableOnHost())
    GTEST_SKIP() << "host has no JIT support";
  ExecutionEngine E(*F);
  ASSERT_TRUE(E.isNativeAvailable()) << E.nativeDisabledReason();
  EXPECT_TRUE(E.nativeRegAllocEnabled());
  EXPECT_GE(E.nativeRegAllocValues(), 1u);
  EXPECT_GE(E.nativeRegAllocElidedStores(), 1u);
  EXPECT_EQ(E.nativeRegAllocSpills(), 0u);
}

TEST_F(NativeEngineTest, RegAllocSpillPressureParity) {
  // Thirteen <4 x f32> loads all live until the reduction chain below
  // exhausts the eleven-register XMM pool, forcing per-value spills back
  // to the frame path; the GEP chain keeps GPR pressure up as well.
  // Values, accounting and memory must stay bit-identical regardless.
  std::string Src = "func @pressure(ptr %p) -> f32 {\nentry:\n";
  for (int I = 0; I < 13; ++I) {
    Src += "  %g" + std::to_string(I) + " = gep f32, ptr %p, i64 " +
           std::to_string(I * 4) + "\n";
    Src += "  %v" + std::to_string(I) + " = load <4 x f32>, ptr %g" +
           std::to_string(I) + "\n";
  }
  Src += "  %s0 = fadd <4 x f32> %v0, %v1\n";
  for (int I = 1; I < 12; ++I)
    Src += "  %s" + std::to_string(I) + " = fadd <4 x f32> %s" +
           std::to_string(I - 1) + ", %v" + std::to_string(I + 1) + "\n";
  Src += "  %e = extractelement <4 x f32> %s11, 0\n"
         "  ret f32 %e\n"
         "}\n";
  Function *F = parse(Src);
  std::vector<float> Data(13 * 4);
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] = 0.5f * static_cast<float>(I) - 7.0f;

  ExecutionEngine E(*F);
  E.addMemoryRange(Data.data(), Data.size() * sizeof(float));
  ExecutionResult NR = E.runNative({argPointer(Data.data())});
  ExecutionResult BR = E.run({argPointer(Data.data())});
  ASSERT_TRUE(NR.Ok) << NR.Error;
  EXPECT_EQ(NR.StepsExecuted, BR.StepsExecuted);
  EXPECT_EQ(NR.VectorSteps, BR.VectorSteps);
  EXPECT_DOUBLE_EQ(NR.Cycles, BR.Cycles);
  EXPECT_TRUE(NR.ReturnValue.bitwiseEquals(BR.ReturnValue));
  if (jitAvailableOnHost()) {
    ASSERT_EQ(NR.EngineUsed, EngineKind::Native);
    EXPECT_GT(E.nativeRegAllocValues(), 0u);
    EXPECT_GT(E.nativeRegAllocSpills(), 0u);
  }
}

TEST_F(NativeEngineTest, RegAllocOnOffBitExact) {
  // The allocator must be invisible to every observable: a looping,
  // phi-carrying, memory-writing kernel run with allocation on and off
  // (and under the bytecode engine) produces identical values, buffers,
  // steps, vector steps and simulated cycles — the r13/r14/r15/xmm15
  // accounting registers are outside the allocator's pool and their
  // bookkeeping must not shift by a single count.
  const char *Src = "func @loop(ptr %p, i64 %n) -> f32 {\n"
                    "entry:\n"
                    "  br label %head\n"
                    "head:\n"
                    "  %i = phi i64 [ 0, %entry ], [ %i2, %body ]\n"
                    "  %acc = phi f32 [ 0.0, %entry ], [ %acc2, %body ]\n"
                    "  %c = icmp slt i64 %i, %n\n"
                    "  br i1 %c, label %body, label %exit\n"
                    "body:\n"
                    "  %g = gep f32, ptr %p, i64 %i\n"
                    "  %v = load <4 x f32>, ptr %g\n"
                    "  %d = fmul <4 x f32> %v, %v\n"
                    "  store <4 x f32> %d, ptr %g\n"
                    "  %e = extractelement <4 x f32> %d, 1\n"
                    "  %acc2 = fadd f32 %acc, %e\n"
                    "  %i2 = add i64 %i, 4\n"
                    "  br label %head\n"
                    "exit:\n"
                    "  ret f32 %acc\n"
                    "}\n";
  Function *F = parse(Src);
  TargetCostModel TCM;
  auto CycleFn = [&TCM](const Instruction &I) {
    return TCM.executionCycles(I);
  };

  auto RunWith = [&](bool RegAlloc, std::vector<float> &Buf,
                     ExecutionResult &R, EngineKind Kind) {
    ExecutionEngine E(*F, CycleFn);
    E.setNativeRegAlloc(RegAlloc);
    E.addMemoryRange(Buf.data(), Buf.size() * sizeof(float));
    std::vector<RTValue> Args = {
        argPointer(Buf.data()),
        argInt64(static_cast<int64_t>(Buf.size()) - 3)};
    R = E.run(Kind, Args);
    ASSERT_TRUE(R.Ok) << R.Error;
    if (Kind == EngineKind::Native && jitAvailableOnHost()) {
      ASSERT_EQ(R.EngineUsed, EngineKind::Native)
          << E.nativeDisabledReason();
      EXPECT_EQ(E.nativeRegAllocEnabled(), RegAlloc);
      if (!RegAlloc)
        EXPECT_EQ(E.nativeRegAllocValues(), 0u);
    }
  };

  auto MakeBuf = [] {
    std::vector<float> Buf(64);
    for (size_t I = 0; I < Buf.size(); ++I)
      Buf[I] = 0.25f * static_cast<float>(I) - 3.0f;
    return Buf;
  };
  std::vector<float> OnBuf = MakeBuf(), OffBuf = MakeBuf(),
                     ByteBuf = MakeBuf();
  ExecutionResult On, Off, Byte;
  RunWith(true, OnBuf, On, EngineKind::Native);
  RunWith(false, OffBuf, Off, EngineKind::Native);
  RunWith(true, ByteBuf, Byte, EngineKind::Bytecode);

  for (const ExecutionResult *R : {&Off, &Byte}) {
    EXPECT_EQ(On.StepsExecuted, R->StepsExecuted);
    EXPECT_EQ(On.VectorSteps, R->VectorSteps);
    EXPECT_DOUBLE_EQ(On.Cycles, R->Cycles);
    EXPECT_TRUE(On.ReturnValue.bitwiseEquals(R->ReturnValue));
  }
  EXPECT_EQ(std::memcmp(OnBuf.data(), OffBuf.data(),
                        OnBuf.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(OnBuf.data(), ByteBuf.data(),
                        OnBuf.size() * sizeof(float)),
            0);
}

struct KernelModeCase {
  std::string KernelName;
  VectorizerMode Mode;
};

std::vector<KernelModeCase> allKernelModeCases() {
  std::vector<KernelModeCase> Cases;
  for (const Kernel &K : kernelRegistry())
    for (VectorizerMode Mode :
         {VectorizerMode::O3, VectorizerMode::SLP, VectorizerMode::LSLP,
          VectorizerMode::SNSLP})
      Cases.push_back(KernelModeCase{K.Name, Mode});
  return Cases;
}

std::string caseName(const ::testing::TestParamInfo<KernelModeCase> &Info) {
  std::string Name =
      Info.param.KernelName + "_" + getModeName(Info.param.Mode);
  for (char &C : Name)
    if (C == '-' || C == '.')
      C = '_';
  return Name;
}

class NativeKernelTest : public ::testing::TestWithParam<KernelModeCase> {
  void TearDown() override { FaultInjector::instance().disarmAll(); }
};

TEST_P(NativeKernelTest, NativeMatchesBytecodeBitExact) {
  const KernelModeCase &Case = GetParam();
  const Kernel *K = findKernel(Case.KernelName);
  ASSERT_NE(K, nullptr);

  KernelRunner Runner;
  CompiledKernel CK = Runner.compile(*K, Case.Mode);
  TargetCostModel TCM;
  ExecutionEngine Engine(*CK.F, [&TCM](const Instruction &I) {
    return TCM.executionCycles(I);
  });

  for (uint64_t Seed : {3ull, 91ull}) {
    KernelData NativeData(K->Buffers, K->N, Seed);
    KernelData ByteData(K->Buffers, K->N, Seed);

    auto Execute = [&](KernelData &Data, bool Native) {
      Engine.clearMemoryRanges();
      std::vector<RTValue> Args;
      for (size_t I = 0; I < Data.getNumBuffers(); ++I) {
        Args.push_back(argPointer(Data.getPointer(I)));
        Engine.addMemoryRange(Data.getPointer(I), Data.getByteSize(I));
      }
      Args.push_back(argInt64(static_cast<int64_t>(Data.getN())));
      return Native ? Engine.runNative(Args) : Engine.run(Args);
    };

    ExecutionResult NR = Execute(NativeData, /*Native=*/true);
    ExecutionResult BR = Execute(ByteData, /*Native=*/false);
    ASSERT_TRUE(NR.Ok) << NR.Error;
    ASSERT_TRUE(BR.Ok) << BR.Error;
    if (jitAvailableOnHost())
      ASSERT_EQ(NR.EngineUsed, EngineKind::Native)
          << Engine.nativeDisabledReason();

    EXPECT_EQ(NR.StepsExecuted, BR.StepsExecuted);
    EXPECT_EQ(NR.VectorSteps, BR.VectorSteps);
    EXPECT_DOUBLE_EQ(NR.Cycles, BR.Cycles);
    EXPECT_TRUE(NR.ReturnValue.bitwiseEquals(BR.ReturnValue));

    // Every buffer bit-identical — the JIT's FP contract on SSE2 hosts is
    // exact equality with the bytecode engine (docs/jit.md).
    for (size_t I = 0; I < NativeData.getNumBuffers(); ++I) {
      ASSERT_EQ(NativeData.getByteSize(I), ByteData.getByteSize(I));
      EXPECT_EQ(std::memcmp(NativeData.getPointer(I), ByteData.getPointer(I),
                            NativeData.getByteSize(I)),
                0)
          << "buffer " << I << " differs (kernel " << K->Name << ", mode "
          << getModeName(Case.Mode) << ", seed " << Seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, NativeKernelTest,
                         ::testing::ValuesIn(allKernelModeCases()),
                         caseName);

} // namespace
