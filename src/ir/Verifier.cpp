//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Context.h"
#include "ir/Dominators.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"

#include <algorithm>
#include <unordered_set>

using namespace snslp;

namespace {

/// Collects verification failures for one function.
class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> *Errors)
      : F(F), Errors(Errors) {}

  bool run() {
    checkBlockStructure();
    checkInstructions();
    checkUseListIntegrity();
    if (Failed)
      return false; // Dominance needs a structurally sound CFG.
    checkDominance();
    return !Failed;
  }

private:
  void fail(const std::string &Msg) {
    Failed = true;
    if (Errors)
      Errors->push_back("@" + F.getName() + ": " + Msg);
  }

  void checkBlockStructure() {
    if (F.empty()) {
      fail("function has no blocks");
      return;
    }
    std::unordered_set<std::string> BlockNames;
    for (const auto &BB : F.blocks()) {
      if (BB->getName().empty())
        fail("block without a name");
      if (!BlockNames.insert(BB->getName()).second)
        fail("duplicate block name '" + BB->getName() + "'");
      if (BB->empty()) {
        fail("block '" + BB->getName() + "' is empty");
        continue;
      }
      // Exactly one terminator, and it is the last instruction.
      unsigned TermCount = 0;
      for (const auto &Inst : *BB)
        if (Inst->isTerminator())
          ++TermCount;
      if (TermCount != 1 || !BB->back().isTerminator())
        fail("block '" + BB->getName() +
             "' must end in exactly one terminator");
      // Phis only at the top of the block.
      bool SeenNonPhi = false;
      for (const auto &Inst : *BB) {
        if (isa<PhiNode>(Inst.get())) {
          if (SeenNonPhi)
            fail("phi after non-phi in block '" + BB->getName() + "'");
        } else {
          SeenNonPhi = true;
        }
      }
    }
    // Entry block must not have predecessors or phis.
    const BasicBlock &Entry = *F.blocks().front();
    if (!Entry.predecessors().empty())
      fail("entry block has predecessors");
    for (const auto &Inst : Entry)
      if (isa<PhiNode>(Inst.get()))
        fail("phi in entry block");
  }

  void checkInstructions() {
    for (const auto &BB : F.blocks()) {
      for (const auto &Inst : *BB) {
        if (Inst->getParent() != BB.get())
          fail("instruction parent link broken in '" + BB->getName() + "'");
        checkInstructionTypes(*Inst);
      }
    }
  }

  void checkInstructionTypes(const Instruction &Inst) {
    switch (Inst.getKind()) {
    case ValueKind::BinOp: {
      const auto &BO = cast<BinaryOperator>(Inst);
      Type *Ty = BO.getType();
      if (BO.getLHS()->getType() != Ty || BO.getRHS()->getType() != Ty)
        fail("binop operand/result type mismatch: " + toString(Inst));
      Type *Scalar = Ty->getScalarType();
      bool IsFPOp = BO.getOpcode() == BinOpcode::FAdd ||
                    BO.getOpcode() == BinOpcode::FSub ||
                    BO.getOpcode() == BinOpcode::FMul ||
                    BO.getOpcode() == BinOpcode::FDiv;
      if (IsFPOp != Scalar->isFloatingPoint())
        fail("binop opcode/type category mismatch: " + toString(Inst));
      if (!Scalar->isFloatingPoint() && !Scalar->isInteger())
        fail("binop over non-arithmetic type: " + toString(Inst));
      break;
    }
    case ValueKind::AlternateOp: {
      const auto &AO = cast<AlternateOp>(Inst);
      const auto *VT = dyn_cast<VectorType>(AO.getType());
      if (!VT) {
        fail("altop must have vector type: " + toString(Inst));
        break;
      }
      if (AO.getLaneOpcodes().size() != VT->getNumLanes())
        fail("altop lane-opcode count mismatch: " + toString(Inst));
      break;
    }
    case ValueKind::UnaryOp: {
      const auto &UO = cast<UnaryOperator>(Inst);
      if (UO.getOperand0()->getType() != UO.getType())
        fail("unary operand/result type mismatch: " + toString(Inst));
      if (!UO.getType()->getScalarType()->isFloatingPoint())
        fail("unary op over non-FP type: " + toString(Inst));
      break;
    }
    case ValueKind::Load:
      if (!cast<LoadInst>(Inst).getPointerOperand()->getType()->isPointer())
        fail("load pointer operand is not ptr: " + toString(Inst));
      break;
    case ValueKind::Store: {
      const auto &St = cast<StoreInst>(Inst);
      if (!St.getPointerOperand()->getType()->isPointer())
        fail("store pointer operand is not ptr: " + toString(Inst));
      if (St.getValueOperand()->getType()->isVoid())
        fail("store of void value");
      break;
    }
    case ValueKind::GEP: {
      const auto &GEP = cast<GEPInst>(Inst);
      if (!GEP.getPointerOperand()->getType()->isPointer())
        fail("gep base is not ptr: " + toString(Inst));
      if (GEP.getIndexOperand()->getType()->getKind() != TypeKind::Int64)
        fail("gep index is not i64: " + toString(Inst));
      break;
    }
    case ValueKind::ICmp: {
      const auto &Cmp = cast<ICmpInst>(Inst);
      if (Cmp.getLHS()->getType() != Cmp.getRHS()->getType() ||
          !Cmp.getLHS()->getType()->isInteger())
        fail("icmp operand types invalid: " + toString(Inst));
      break;
    }
    case ValueKind::Select: {
      const auto &Sel = cast<SelectInst>(Inst);
      if (Sel.getCondition()->getType()->getKind() != TypeKind::Int1)
        fail("select condition is not i1: " + toString(Inst));
      if (Sel.getTrueValue()->getType() != Sel.getType() ||
          Sel.getFalseValue()->getType() != Sel.getType())
        fail("select arm type mismatch: " + toString(Inst));
      break;
    }
    case ValueKind::Phi:
      checkPhi(cast<PhiNode>(Inst));
      break;
    case ValueKind::Branch: {
      const auto &Br = cast<BranchInst>(Inst);
      for (unsigned I = 0, E = Br.getNumSuccessors(); I != E; ++I) {
        BasicBlock *Succ = Br.getSuccessor(I);
        bool Found = false;
        for (const auto &BB : F.blocks())
          if (BB.get() == Succ)
            Found = true;
        if (!Found)
          fail("branch to block outside function");
      }
      break;
    }
    case ValueKind::Ret: {
      const auto &Ret = cast<RetInst>(Inst);
      if (Ret.hasReturnValue()) {
        if (Ret.getReturnValue()->getType() != F.getReturnType())
          fail("ret value type does not match function return type");
      } else if (!F.getReturnType()->isVoid()) {
        fail("ret void in non-void function");
      }
      break;
    }
    case ValueKind::InsertElement:
    case ValueKind::ExtractElement:
    case ValueKind::ShuffleVector:
      // Lane ranges are asserted at construction; nothing further here.
      break;
    case ValueKind::Argument:
    case ValueKind::ConstantInt:
    case ValueKind::ConstantFP:
    case ValueKind::ConstantVector:
      fail("non-instruction value in block");
      break;
    }
  }

  void checkPhi(const PhiNode &Phi) {
    std::vector<BasicBlock *> Preds = Phi.getParent()->predecessors();
    if (Phi.getNumIncoming() != Preds.size()) {
      fail("phi incoming count does not match predecessor count: " +
           toString(Phi));
      return;
    }
    for (unsigned I = 0, E = Phi.getNumIncoming(); I != E; ++I) {
      if (Phi.getIncomingValue(I)->getType() != Phi.getType())
        fail("phi incoming type mismatch: " + toString(Phi));
      BasicBlock *In = Phi.getIncomingBlock(I);
      if (std::find(Preds.begin(), Preds.end(), In) == Preds.end())
        fail("phi incoming block is not a predecessor: " + toString(Phi));
    }
    // No duplicate incoming blocks.
    for (unsigned I = 0; I < Phi.getNumIncoming(); ++I)
      for (unsigned J = I + 1; J < Phi.getNumIncoming(); ++J)
        if (Phi.getIncomingBlock(I) == Phi.getIncomingBlock(J))
          fail("duplicate phi incoming block: " + toString(Phi));
  }

  void checkUseListIntegrity() {
    for (const auto &BB : F.blocks()) {
      for (const auto &Inst : *BB) {
        // Every operand's use list must contain this (user, index) entry.
        for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I) {
          const Value *Op = Inst->getOperand(I);
          const auto &Uses = Op->uses();
          Use Expected{Inst.get(), I};
          if (std::find(Uses.begin(), Uses.end(), Expected) == Uses.end())
            fail("operand use-list entry missing for " + toString(*Inst));
        }
        // Every use-list entry of this instruction must be a real operand.
        for (const Use &U : Inst->uses()) {
          if (U.OperandIndex >= U.User->getNumOperands() ||
              U.User->getOperand(U.OperandIndex) != Inst.get())
            fail("stale use-list entry on " + toString(*Inst));
        }
      }
    }
  }

  void checkDominance() {
    DominatorTree DT(F);
    for (const auto &BB : F.blocks()) {
      if (!DT.isReachable(BB.get()))
        continue;
      for (const auto &Inst : *BB)
        for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I)
          if (!DT.isUseWellFormed(Inst->getOperand(I), Inst.get(), I))
            fail("use of value before definition in " + toString(*Inst));
    }
  }

  const Function &F;
  std::vector<std::string> *Errors;
  bool Failed = false;
};

} // namespace

bool snslp::verifyFunction(const Function &F,
                           std::vector<std::string> *Errors) {
  return FunctionVerifier(F, Errors).run();
}

bool snslp::verifyModule(const Module &M, std::vector<std::string> *Errors) {
  bool AllOk = true;
  for (const auto &F : M.functions())
    if (!verifyFunction(*F, Errors))
      AllOk = false;
  return AllOk;
}
