//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "kernels/Programs.h"

using namespace snslp;

const std::vector<BenchmarkProgram> &snslp::programRegistry() {
  // Weights approximate the hot/cold split of the real benchmarks: the
  // SN-relevant kernels are a few percent of dynamic cost. 433.milc has
  // the largest share (the paper reports a 2% whole-benchmark speedup
  // there); the others sit at or below the noise floor.
  static const std::vector<BenchmarkProgram> Programs = {
      {"433.milc",
       {{"milc_force", 6.0}, {"milc_cmul", 8.0}, {"scalar_filler", 330.0}}},
      {"444.namd",
       {{"namd_force", 1.0},
        {"namd_accum", 3.0},
        {"povray_dot", 4.0},
        {"scalar_filler", 300.0}}},
      {"447.dealII",
       {{"dealii_stencil", 2.0},
        {"soplex_axpy", 4.0},
        {"scalar_filler", 420.0}}},
      {"450.soplex", {{"soplex_axpy", 12.0}, {"scalar_filler", 150.0}}},
      {"453.povray", {{"povray_dot", 12.0}, {"scalar_filler", 150.0}}},
      {"482.sphinx3",
       {{"sphinx_rescale", 2.0},
        {"sphinx_bias", 2.0},
        {"scalar_filler", 800.0}}},
  };
  return Programs;
}
