//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "ir/Context.h"
#include "ir/Module.h"
#include "support/ErrorHandling.h"

#include <unordered_map>
#include <unordered_set>

using namespace snslp;

Function::Function(Module *Parent, std::string Name, Type *RetTy,
                   std::vector<std::pair<Type *, std::string>> Params)
    : Parent(Parent), Name(std::move(Name)), RetTy(RetTy) {
  unsigned Index = 0;
  for (auto &[Ty, ArgName] : Params) {
    Args.push_back(std::make_unique<Argument>(Ty, std::move(ArgName), Index));
    ++Index;
  }
}

Function::~Function() {
  // Instructions may reference values that are destroyed earlier (operands
  // later in the block, arguments, instructions in other blocks). Sever all
  // def-use edges first so destruction order is irrelevant.
  for (const auto &BB : Blocks)
    for (const auto &Inst : *BB)
      Inst->dropAllReferences();
}

Context &Function::getContext() const { return Parent->getContext(); }

Argument *Function::getArgByName(const std::string &ArgName) const {
  for (const auto &Arg : Args)
    if (Arg->getName() == ArgName)
      return Arg.get();
  return nullptr;
}

BasicBlock *Function::createBlock(std::string BlockName) {
  Blocks.push_back(std::make_unique<BasicBlock>(this, std::move(BlockName)));
  return Blocks.back().get();
}

void Function::eraseBlock(BasicBlock *BB) {
  assert(BB && BB->getParent() == this && "block not in this function");
  assert(!Blocks.empty() && BB != Blocks.front().get() &&
         "cannot erase the entry block");
  // Sever outgoing def-use edges so destruction order inside the block is
  // irrelevant (mirrors ~Function).
  for (const auto &Inst : *BB)
    Inst->dropAllReferences();
  for (auto It = Blocks.begin(); It != Blocks.end(); ++It)
    if (It->get() == BB) {
      Blocks.erase(It);
      return;
    }
  assert(false && "block list inconsistent");
}

BasicBlock *Function::getBlockByName(const std::string &BlockName) const {
  for (const auto &BB : Blocks)
    if (BB->getName() == BlockName)
      return BB.get();
  return nullptr;
}

size_t Function::instructionCount() const {
  size_t Count = 0;
  for (const auto &BB : Blocks)
    Count += BB->size();
  return Count;
}

/// Constructs a fresh clone of \p Inst with the given (already resolved)
/// operands. Phi nodes are handled by the caller. Successor blocks of
/// branches are mapped through \p BMap.
static std::unique_ptr<Instruction> cloneInstruction(
    const Instruction &Inst, const std::vector<Value *> &Ops,
    const std::unordered_map<const BasicBlock *, BasicBlock *> &BMap) {
  switch (Inst.getKind()) {
  case ValueKind::BinOp: {
    const auto &BO = cast<BinaryOperator>(Inst);
    return std::make_unique<BinaryOperator>(BO.getOpcode(), Ops[0], Ops[1]);
  }
  case ValueKind::AlternateOp: {
    const auto &AO = cast<AlternateOp>(Inst);
    return std::make_unique<AlternateOp>(AO.getLaneOpcodes(), Ops[0], Ops[1]);
  }
  case ValueKind::UnaryOp: {
    const auto &UO = cast<UnaryOperator>(Inst);
    return std::make_unique<UnaryOperator>(UO.getOpcode(), Ops[0]);
  }
  case ValueKind::Load:
    return std::make_unique<LoadInst>(Inst.getType(), Ops[0]);
  case ValueKind::Store:
    return std::make_unique<StoreInst>(Ops[0], Ops[1]);
  case ValueKind::GEP: {
    const auto &GEP = cast<GEPInst>(Inst);
    return std::make_unique<GEPInst>(GEP.getElementType(), Ops[0], Ops[1]);
  }
  case ValueKind::ICmp: {
    const auto &Cmp = cast<ICmpInst>(Inst);
    return std::make_unique<ICmpInst>(Cmp.getPredicate(), Ops[0], Ops[1]);
  }
  case ValueKind::Select:
    return std::make_unique<SelectInst>(Ops[0], Ops[1], Ops[2]);
  case ValueKind::Branch: {
    const auto &Br = cast<BranchInst>(Inst);
    if (Br.isConditional())
      return std::make_unique<BranchInst>(Ops[0], BMap.at(Br.getSuccessor(0)),
                                          BMap.at(Br.getSuccessor(1)));
    return std::make_unique<BranchInst>(BMap.at(Br.getSuccessor(0)));
  }
  case ValueKind::Ret:
    return std::make_unique<RetInst>(Inst.getType()->getContext(),
                                     Ops.empty() ? nullptr : Ops[0]);
  case ValueKind::InsertElement: {
    const auto &IE = cast<InsertElementInst>(Inst);
    return std::make_unique<InsertElementInst>(Ops[0], Ops[1], IE.getLane());
  }
  case ValueKind::ExtractElement: {
    const auto &EE = cast<ExtractElementInst>(Inst);
    return std::make_unique<ExtractElementInst>(Ops[0], EE.getLane());
  }
  case ValueKind::ShuffleVector: {
    const auto &SV = cast<ShuffleVectorInst>(Inst);
    return std::make_unique<ShuffleVectorInst>(Ops[0], Ops[1], SV.getMask());
  }
  case ValueKind::Phi:
  case ValueKind::Argument:
  case ValueKind::ConstantInt:
  case ValueKind::ConstantFP:
  case ValueKind::ConstantVector:
    break;
  }
  snslp_unreachable("not a clonable instruction kind");
}

Function *Function::cloneInto(Module &TargetModule,
                              const std::string &NewName) const {
  std::vector<std::pair<Type *, std::string>> Params;
  for (const auto &Arg : Args)
    Params.emplace_back(Arg->getType(), Arg->getName());
  Function *NewF =
      TargetModule.createFunction(NewName, RetTy, std::move(Params));

  std::unordered_map<const Value *, Value *> VMap;
  for (unsigned I = 0, E = getNumArgs(); I != E; ++I)
    VMap[getArg(I)] = NewF->getArg(I);

  std::unordered_map<const BasicBlock *, BasicBlock *> BMap;
  for (const auto &BB : Blocks)
    BMap[BB.get()] = NewF->createBlock(BB->getName());

  // Resolves an operand: mapped clone if available, otherwise the original
  // value (shared constants, or a forward reference fixed in pass 2).
  auto Resolve = [&VMap](Value *V) -> Value * {
    auto It = VMap.find(V);
    return It == VMap.end() ? V : It->second;
  };

  // Pass 1: clone all instructions in block order. Phi nodes are created
  // empty; their incoming lists are wired in pass 2 because they may
  // forward-reference values that have not been cloned yet.
  std::vector<std::pair<const PhiNode *, PhiNode *>> Phis;
  for (const auto &BB : Blocks) {
    BasicBlock *NewBB = BMap.at(BB.get());
    for (const auto &Inst : *BB) {
      std::unique_ptr<Instruction> NewInst;
      if (const auto *Phi = dyn_cast<PhiNode>(Inst.get())) {
        auto NewPhi = std::make_unique<PhiNode>(Phi->getType());
        Phis.emplace_back(Phi, NewPhi.get());
        NewInst = std::move(NewPhi);
      } else {
        std::vector<Value *> Ops;
        Ops.reserve(Inst->getNumOperands());
        for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I)
          Ops.push_back(Resolve(Inst->getOperand(I)));
        NewInst = cloneInstruction(*Inst, Ops, BMap);
      }
      NewInst->setName(Inst->getName());
      VMap[Inst.get()] = NewBB->append(std::move(NewInst));
    }
  }

  // Pass 2: fix operands that still point into the original function, and
  // populate the phi incoming lists.
  for (const auto &BB : NewF->blocks()) {
    for (const auto &Inst : *BB) {
      if (isa<PhiNode>(Inst.get()))
        continue;
      for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I) {
        auto It = VMap.find(Inst->getOperand(I));
        if (It != VMap.end() && It->second != Inst->getOperand(I))
          Inst->setOperand(I, It->second);
      }
    }
  }
  for (auto &[OldPhi, NewPhi] : Phis)
    for (unsigned I = 0, E = OldPhi->getNumIncoming(); I != E; ++I)
      NewPhi->addIncoming(Resolve(OldPhi->getIncomingValue(I)),
                          BMap.at(OldPhi->getIncomingBlock(I)));

  return NewF;
}

void Function::takeBody(Function &Donor) {
  assert(&Donor != this && "cannot take a function's own body");
  assert(&Donor.getContext() == &getContext() &&
         "takeBody requires a donor in the same Context");
  assert(Donor.getNumArgs() == getNumArgs() &&
         "takeBody requires an identical signature");
#ifndef NDEBUG
  for (unsigned I = 0, E = getNumArgs(); I != E; ++I)
    assert(Donor.getArg(I)->getType() == getArg(I)->getType() &&
           "takeBody requires an identical signature");
#endif

  // Destroy the current body. Sever every def-use edge first so that
  // destruction order (defs before users, cross-block references) is
  // irrelevant — the same discipline as ~Function.
  for (const auto &BB : Blocks)
    for (const auto &Inst : *BB)
      Inst->dropAllReferences();
  Blocks.clear();

  // Redirect donor-argument uses to this function's own arguments before
  // the move, so the transplanted instructions reference live values.
  for (unsigned I = 0, E = getNumArgs(); I != E; ++I)
    Donor.getArg(I)->replaceAllUsesWith(getArg(I));

  // Move the donor's blocks wholesale (instruction pointers stay valid)
  // and reparent them.
  Blocks = std::move(Donor.Blocks);
  Donor.Blocks.clear();
  for (const auto &BB : Blocks)
    BB->Parent = this;
}

void Function::nameValues() {
  std::unordered_set<std::string> Used;
  for (const auto &Arg : Args)
    Used.insert(Arg->getName());
  for (const auto &BB : Blocks)
    for (const auto &Inst : *BB)
      if (Inst->hasName())
        Used.insert(Inst->getName());

  unsigned Counter = 0;
  auto FreshName = [&Used, &Counter]() {
    std::string Candidate;
    do {
      Candidate = "t" + std::to_string(Counter++);
    } while (Used.count(Candidate));
    Used.insert(Candidate);
    return Candidate;
  };

  for (const auto &BB : Blocks)
    for (const auto &Inst : *BB)
      if (!Inst->hasName() && !Inst->getType()->isVoid())
        Inst->setName(FreshName());
}
