//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the multi-VF retry: when a wide seed group is not profitable,
/// the vectorizer re-tries the halves at the smaller VF.
///
//===----------------------------------------------------------------------===//

#include "interp/ExecutionEngine.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "slp/SLPVectorizer.h"

#include <gtest/gtest.h>

using namespace snslp;

namespace {

/// Four adjacent stores: lanes 0-1 are isomorphic fadds over adjacent
/// loads (profitable at VF=2); lanes 2-3 mix unrelated values so the
/// VF=4 graph gathers everything and is rejected.
const char *MixedIR = R"(
func @mixed(ptr %out, ptr %a, ptr %b, f64 %x) {
entry:
  %pa0 = gep f64, ptr %a, i64 0
  %a0 = load f64, ptr %pa0
  %pb0 = gep f64, ptr %b, i64 0
  %b0 = load f64, ptr %pb0
  %s0 = fadd f64 %a0, %b0
  %po0 = gep f64, ptr %out, i64 0
  store f64 %s0, ptr %po0
  %pa1 = gep f64, ptr %a, i64 1
  %a1 = load f64, ptr %pa1
  %pb1 = gep f64, ptr %b, i64 1
  %b1 = load f64, ptr %pb1
  %s1 = fadd f64 %a1, %b1
  %po1 = gep f64, ptr %out, i64 1
  store f64 %s1, ptr %po1
  %s2 = fdiv f64 %x, 3.0
  %po2 = gep f64, ptr %out, i64 2
  store f64 %s2, ptr %po2
  %s3 = fmul f64 %x, %x
  %po3 = gep f64, ptr %out, i64 3
  store f64 %s3, ptr %po3
  ret void
}
)";

TEST(VFRetryTest, UnprofitableVF4RetriesAsVF2) {
  Context Ctx;
  Module M(Ctx, "vfr");
  std::string Err;
  ASSERT_TRUE(parseIR(MixedIR, M, &Err)) << Err;
  Function *F = M.getFunction("mixed");

  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SNSLP;
  VectorizeStats Stats = runSLPVectorizer(*F, Cfg);
  // The VF=4 group is rejected; its first half (lanes 0-1) commits.
  EXPECT_GE(Stats.GraphsBuilt, 2u);
  EXPECT_EQ(Stats.GraphsVectorized, 1u);
  std::vector<std::string> Errors;
  ASSERT_TRUE(verifyFunction(*F, &Errors))
      << (Errors.empty() ? "" : Errors.front());

  double A[2] = {1.0, 2.0};
  double B[2] = {0.5, 0.25};
  double Out[4] = {0, 0, 0, 0};
  ExecutionEngine E(*F);
  ASSERT_TRUE(
      E.run({argPointer(Out), argPointer(A), argPointer(B), argDouble(6.0)})
          .Ok);
  EXPECT_DOUBLE_EQ(Out[0], 1.5);
  EXPECT_DOUBLE_EQ(Out[1], 2.25);
  EXPECT_DOUBLE_EQ(Out[2], 2.0);
  EXPECT_DOUBLE_EQ(Out[3], 36.0);
}

TEST(VFRetryTest, ProfitableVF4IsNotSplit) {
  // Fully isomorphic 4-wide pattern: one VF=4 graph, no retries needed.
  const char *IR = R"(
func @wide(ptr %out, ptr %a) {
entry:
  %pa0 = gep f32, ptr %a, i64 0
  %a0 = load f32, ptr %pa0
  %m0 = fmul f32 %a0, 2.0
  %po0 = gep f32, ptr %out, i64 0
  store f32 %m0, ptr %po0
  %pa1 = gep f32, ptr %a, i64 1
  %a1 = load f32, ptr %pa1
  %m1 = fmul f32 %a1, 2.0
  %po1 = gep f32, ptr %out, i64 1
  store f32 %m1, ptr %po1
  %pa2 = gep f32, ptr %a, i64 2
  %a2 = load f32, ptr %pa2
  %m2 = fmul f32 %a2, 2.0
  %po2 = gep f32, ptr %out, i64 2
  store f32 %m2, ptr %po2
  %pa3 = gep f32, ptr %a, i64 3
  %a3 = load f32, ptr %pa3
  %m3 = fmul f32 %a3, 2.0
  %po3 = gep f32, ptr %out, i64 3
  store f32 %m3, ptr %po3
  ret void
}
)";
  Context Ctx;
  Module M(Ctx, "wide");
  std::string Err;
  ASSERT_TRUE(parseIR(IR, M, &Err)) << Err;
  Function *F = M.getFunction("wide");

  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SLP;
  VectorizeStats Stats = runSLPVectorizer(*F, Cfg);
  EXPECT_EQ(Stats.GraphsBuilt, 1u);
  EXPECT_EQ(Stats.GraphsVectorized, 1u);
  ASSERT_TRUE(verifyFunction(*F));
}

} // namespace
