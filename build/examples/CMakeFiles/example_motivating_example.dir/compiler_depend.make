# Empty compiler generated dependencies file for example_motivating_example.
# This may be replaced when dependencies are built.
