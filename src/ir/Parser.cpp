//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <vector>

using namespace snslp;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokKind : uint8_t {
  Ident,     // bare identifier / keyword
  GlobalId,  // @name
  LocalId,   // %name
  IntLit,    // 42, -7
  FPLit,     // 1.5, -2e3
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Less,
  Greater,
  Comma,
  Colon,
  Equal,
  Arrow, // ->
  Eof,
};

struct Token {
  TokKind Kind;
  std::string Text; // identifier text / literal spelling
  unsigned Line;
};

/// Tokenizes the whole input up front. Returns false on a bad character and
/// reports via \p Err.
class Lexer {
public:
  Lexer(const std::string &Source, std::string &Err)
      : Src(Source), Err(Err) {}

  bool run(std::vector<Token> &Out) {
    while (!atEnd()) {
      skipWhitespaceAndComments();
      if (atEnd())
        break;
      if (!lexToken(Out))
        return false;
    }
    Out.push_back(Token{TokKind::Eof, "", Line});
    return true;
  }

private:
  bool atEnd() const { return Pos >= Src.size(); }
  char peek() const { return Src[Pos]; }
  char get() {
    char C = Src[Pos++];
    if (C == '\n')
      ++Line;
    return C;
  }

  void skipWhitespaceAndComments() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        get();
        continue;
      }
      if (C == ';') { // Comment to end of line.
        while (!atEnd() && peek() != '\n')
          get();
        continue;
      }
      break;
    }
  }

  static bool isIdentChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.';
  }

  std::string lexIdentBody() {
    std::string S;
    while (!atEnd() && isIdentChar(peek()))
      S += get();
    return S;
  }

  bool lexToken(std::vector<Token> &Out) {
    unsigned StartLine = Line;
    char C = peek();
    auto Push = [&Out, StartLine](TokKind Kind, std::string Text = "") {
      Out.push_back(Token{Kind, std::move(Text), StartLine});
    };

    if (C == '@') {
      get();
      Push(TokKind::GlobalId, lexIdentBody());
      return true;
    }
    if (C == '%') {
      get();
      Push(TokKind::LocalId, lexIdentBody());
      return true;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) || C == '-') {
      return lexNumberOrArrow(Out, StartLine);
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      Push(TokKind::Ident, lexIdentBody());
      return true;
    }
    get();
    switch (C) {
    case '(':
      Push(TokKind::LParen);
      return true;
    case ')':
      Push(TokKind::RParen);
      return true;
    case '{':
      Push(TokKind::LBrace);
      return true;
    case '}':
      Push(TokKind::RBrace);
      return true;
    case '[':
      Push(TokKind::LBracket);
      return true;
    case ']':
      Push(TokKind::RBracket);
      return true;
    case '<':
      Push(TokKind::Less);
      return true;
    case '>':
      Push(TokKind::Greater);
      return true;
    case ',':
      Push(TokKind::Comma);
      return true;
    case ':':
      Push(TokKind::Colon);
      return true;
    case '=':
      Push(TokKind::Equal);
      return true;
    default:
      Err = "line " + std::to_string(StartLine) +
            ": unexpected character '" + std::string(1, C) + "'";
      return false;
    }
  }

  bool lexNumberOrArrow(std::vector<Token> &Out, unsigned StartLine) {
    std::string S;
    S += get(); // digit or '-'
    if (S[0] == '-') {
      if (!atEnd() && peek() == '>') {
        get();
        Out.push_back(Token{TokKind::Arrow, "->", StartLine});
        return true;
      }
      if (atEnd() || !(std::isdigit(static_cast<unsigned char>(peek())) ||
                       peek() == 'i' || peek() == 'n')) {
        Err = "line " + std::to_string(StartLine) + ": stray '-'";
        return false;
      }
    }
    // Accept "inf"/"nan" spellings from the printer.
    if (!atEnd() && (peek() == 'i' || peek() == 'n')) {
      S += lexIdentBody();
      if (S.find("inf") == std::string::npos &&
          S.find("nan") == std::string::npos) {
        Err = "line " + std::to_string(StartLine) + ": bad numeric literal '" +
              S + "'";
        return false;
      }
      Out.push_back(Token{TokKind::FPLit, S, StartLine});
      return true;
    }
    bool IsFP = false;
    while (!atEnd()) {
      char C = peek();
      if (std::isdigit(static_cast<unsigned char>(C))) {
        S += get();
        continue;
      }
      if (C == '.') {
        IsFP = true;
        S += get();
        continue;
      }
      if (C == 'e' || C == 'E') {
        IsFP = true;
        S += get();
        if (!atEnd() && (peek() == '+' || peek() == '-'))
          S += get();
        continue;
      }
      break;
    }
    Out.push_back(Token{IsFP ? TokKind::FPLit : TokKind::IntLit, S, StartLine});
    return true;
  }

  const std::string &Src;
  std::string &Err;
  size_t Pos = 0;
  unsigned Line = 1;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Tokens, Module &M, std::string &Err)
      : Tokens(std::move(Tokens)), M(M), Ctx(M.getContext()), Err(Err) {}

  bool run() {
    while (!check(TokKind::Eof))
      if (!parseFunction())
        return false;
    return true;
  }

private:
  //===--------------------------------------------------------------------===//
  // Token helpers
  //===--------------------------------------------------------------------===//

  const Token &cur() const { return Tokens[Pos]; }
  bool check(TokKind Kind) const { return cur().Kind == Kind; }
  bool checkIdent(const char *Text) const {
    return cur().Kind == TokKind::Ident && cur().Text == Text;
  }
  Token advance() { return Tokens[Pos++]; }

  bool error(const std::string &Msg) {
    Err = "line " + std::to_string(cur().Line) + ": " + Msg;
    return false;
  }

  bool errorAt(unsigned Line, const std::string &Msg) {
    Err = "line " + std::to_string(Line) + ": " + Msg;
    return false;
  }

  bool expect(TokKind Kind, const char *What) {
    if (!check(Kind))
      return error(std::string("expected ") + What + ", got '" + cur().Text +
                   "'");
    advance();
    return true;
  }

  bool expectIdent(const char *Text) {
    if (!checkIdent(Text))
      return error(std::string("expected '") + Text + "'");
    advance();
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  Type *scalarTypeByName(const std::string &Name) {
    if (Name == "void")
      return Ctx.getVoidTy();
    if (Name == "i1")
      return Ctx.getInt1Ty();
    if (Name == "i32")
      return Ctx.getInt32Ty();
    if (Name == "i64")
      return Ctx.getInt64Ty();
    if (Name == "f32")
      return Ctx.getFloatTy();
    if (Name == "f64")
      return Ctx.getDoubleTy();
    if (Name == "ptr")
      return Ctx.getPtrTy();
    return nullptr;
  }

  /// type := scalar | '<' INT 'x' scalar '>'
  Type *parseType() {
    if (check(TokKind::Less)) {
      advance();
      if (!check(TokKind::IntLit)) {
        error("expected lane count in vector type");
        return nullptr;
      }
      long Lanes = std::strtol(advance().Text.c_str(), nullptr, 10);
      if (!expectIdent("x"))
        return nullptr;
      if (!check(TokKind::Ident)) {
        error("expected element type");
        return nullptr;
      }
      Type *Elem = scalarTypeByName(advance().Text);
      if (!Elem || Elem->isVoid() || Elem->isVector()) {
        error("invalid vector element type");
        return nullptr;
      }
      if (!expect(TokKind::Greater, "'>'"))
        return nullptr;
      if (Lanes < 2) {
        error("vector lane count must be >= 2");
        return nullptr;
      }
      return Ctx.getVectorType(Elem, static_cast<unsigned>(Lanes));
    }
    if (!check(TokKind::Ident)) {
      error("expected type");
      return nullptr;
    }
    Type *Ty = scalarTypeByName(advance().Text);
    if (!Ty)
      error("unknown type name");
    return Ty;
  }

  //===--------------------------------------------------------------------===//
  // Values
  //===--------------------------------------------------------------------===//

  Constant *parseScalarConstantToken(const Token &Tok, Type *Ty) {
    if (Ty->isInteger()) {
      if (Tok.Kind != TokKind::IntLit) {
        error("expected integer literal for type " + Ty->getName());
        return nullptr;
      }
      return Ctx.getConstantInt(Ty, std::strtoll(Tok.Text.c_str(), nullptr,
                                                 10));
    }
    if (Ty->isFloatingPoint())
      return Ctx.getConstantFP(Ty, std::strtod(Tok.Text.c_str(), nullptr));
    error("constant of non-arithmetic type");
    return nullptr;
  }

  /// val := %name | int | fp | '[' const (',' const)* ']'
  /// The expected type drives constant creation and %name type checking.
  Value *parseValue(Type *ExpectedTy) {
    if (check(TokKind::LocalId)) {
      Token Tok = advance();
      auto It = ValueMap.find(Tok.Text);
      if (It == ValueMap.end()) {
        error("use of undefined value %" + Tok.Text);
        return nullptr;
      }
      if (ExpectedTy && It->second->getType() != ExpectedTy) {
        error("%" + Tok.Text + " has type " +
              It->second->getType()->getName() + ", expected " +
              ExpectedTy->getName());
        return nullptr;
      }
      return It->second;
    }
    if (check(TokKind::LBracket)) {
      auto *VT = dyn_cast_or_null<VectorType>(ExpectedTy);
      if (!VT) {
        error("vector constant in non-vector context");
        return nullptr;
      }
      advance();
      std::vector<Constant *> Elems;
      while (true) {
        if (!check(TokKind::IntLit) && !check(TokKind::FPLit)) {
          error("expected scalar constant in vector literal");
          return nullptr;
        }
        Constant *C =
            parseScalarConstantToken(advance(), VT->getElementType());
        if (!C)
          return nullptr;
        Elems.push_back(C);
        if (check(TokKind::Comma)) {
          advance();
          continue;
        }
        break;
      }
      if (!expect(TokKind::RBracket, "']'"))
        return nullptr;
      if (Elems.size() != VT->getNumLanes()) {
        error("vector literal lane count mismatch");
        return nullptr;
      }
      return Ctx.getConstantVector(Elems);
    }
    if (check(TokKind::IntLit) || check(TokKind::FPLit)) {
      if (!ExpectedTy) {
        error("constant in context with unknown type");
        return nullptr;
      }
      return parseScalarConstantToken(advance(), ExpectedTy);
    }
    error("expected value");
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Function / blocks / instructions
  //===--------------------------------------------------------------------===//

  bool parseFunction() {
    if (!expectIdent("func"))
      return false;
    if (!check(TokKind::GlobalId))
      return error("expected @function-name");
    std::string FnName = advance().Text;
    if (M.getFunction(FnName))
      return error("redefinition of @" + FnName);

    if (!expect(TokKind::LParen, "'('"))
      return false;
    std::vector<std::pair<Type *, std::string>> Params;
    if (!check(TokKind::RParen)) {
      while (true) {
        Type *Ty = parseType();
        if (!Ty)
          return false;
        if (!check(TokKind::LocalId))
          return error("expected %argument-name");
        Params.emplace_back(Ty, advance().Text);
        if (check(TokKind::Comma)) {
          advance();
          continue;
        }
        break;
      }
    }
    if (!expect(TokKind::RParen, "')'"))
      return false;

    Type *RetTy = Ctx.getVoidTy();
    if (check(TokKind::Arrow)) {
      advance();
      RetTy = parseType();
      if (!RetTy)
        return false;
    }
    if (!expect(TokKind::LBrace, "'{'"))
      return false;

    Function *F = M.createFunction(FnName, RetTy, Params);
    ValueMap.clear();
    PhiFixups.clear();
    for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I) {
      Argument *Arg = F->getArg(I);
      if (ValueMap.count(Arg->getName()))
        return error("duplicate argument name %" + Arg->getName());
      ValueMap[Arg->getName()] = Arg;
    }

    // Pre-scan for block labels (IDENT ':') so branch targets and phi
    // incoming blocks can be resolved on first use.
    if (!prescanBlocks(F))
      return false;

    BasicBlock *CurBB = nullptr;
    while (!check(TokKind::RBrace)) {
      if (check(TokKind::Eof))
        return error("unexpected end of input inside function body");
      if (check(TokKind::Ident) && Tokens[Pos + 1].Kind == TokKind::Colon) {
        CurBB = F->getBlockByName(cur().Text);
        assert(CurBB && "pre-scan missed a block");
        advance();
        advance();
        continue;
      }
      if (!CurBB)
        return error("instruction before the first block label");
      if (!parseInstruction(F, CurBB))
        return false;
    }
    advance(); // '}'

    // Resolve phi incoming-value forward references.
    for (PhiFixup &Fix : PhiFixups) {
      Value *V = nullptr;
      if (Fix.IsConstant) {
        V = Fix.ConstantValue;
      } else {
        auto It = ValueMap.find(Fix.ValueName);
        if (It == ValueMap.end()) {
          Err = "line " + std::to_string(Fix.Line) +
                ": use of undefined value %" + Fix.ValueName + " in phi";
          return false;
        }
        V = It->second;
        if (V->getType() != Fix.Phi->getType()) {
          Err = "line " + std::to_string(Fix.Line) +
                ": phi incoming type mismatch for %" + Fix.ValueName;
          return false;
        }
      }
      Fix.Phi->addIncoming(V, Fix.Block);
    }
    return true;
  }

  /// Creates all blocks of the function body in textual order by scanning
  /// ahead for `IDENT ':'` at instruction-start positions.
  bool prescanBlocks(Function *F) {
    size_t Depth = 0;
    for (size_t I = Pos; I < Tokens.size(); ++I) {
      if (Tokens[I].Kind == TokKind::RBrace) {
        if (Depth == 0)
          break;
        --Depth;
        continue;
      }
      if (Tokens[I].Kind == TokKind::LBrace) {
        ++Depth;
        continue;
      }
      if (Tokens[I].Kind == TokKind::Ident &&
          I + 1 < Tokens.size() && Tokens[I + 1].Kind == TokKind::Colon) {
        if (F->getBlockByName(Tokens[I].Text)) {
          Err = "line " + std::to_string(Tokens[I].Line) +
                ": duplicate block label '" + Tokens[I].Text + "'";
          return false;
        }
        F->createBlock(Tokens[I].Text);
      }
    }
    if (F->empty())
      return error("function @" + F->getName() + " has no blocks");
    return true;
  }

  BasicBlock *parseBlockRef(Function *F) {
    if (!check(TokKind::LocalId)) {
      error("expected %block-label");
      return nullptr;
    }
    Token Tok = advance();
    BasicBlock *BB = F->getBlockByName(Tok.Text);
    if (!BB)
      error("unknown block label %" + Tok.Text);
    return BB;
  }

  bool defineValue(const std::string &Name, Value *V) {
    if (ValueMap.count(Name))
      return error("redefinition of %" + Name);
    V->setName(Name);
    ValueMap[Name] = V;
    return true;
  }

  BinOpcode *opcodeByName(const std::string &Name, BinOpcode &Storage) {
    static const std::pair<const char *, BinOpcode> Table[] = {
        {"add", BinOpcode::Add},   {"sub", BinOpcode::Sub},
        {"mul", BinOpcode::Mul},   {"fadd", BinOpcode::FAdd},
        {"fsub", BinOpcode::FSub}, {"fmul", BinOpcode::FMul},
        {"fdiv", BinOpcode::FDiv}};
    for (const auto &[Spelling, Op] : Table)
      if (Name == Spelling) {
        Storage = Op;
        return &Storage;
      }
    return nullptr;
  }

  bool parseInstruction(Function *F, BasicBlock *BB) {
    IRBuilder Builder(BB);

    // Optional result binding.
    std::string ResultName;
    bool HasResult = false;
    if (check(TokKind::LocalId)) {
      ResultName = advance().Text;
      HasResult = true;
      if (!expect(TokKind::Equal, "'='"))
        return false;
    }

    if (!check(TokKind::Ident))
      return error("expected instruction opcode");
    unsigned OpcodeLine = cur().Line;
    std::string Opcode = advance().Text;

    BinOpcode BinOp;
    if (opcodeByName(Opcode, BinOp)) {
      Type *Ty = parseType();
      if (!Ty)
        return false;
      Value *L = parseValue(Ty);
      if (!L || !expect(TokKind::Comma, "','"))
        return false;
      Value *R = parseValue(Ty);
      if (!R)
        return false;
      Value *Result = Builder.createBinOp(BinOp, L, R);
      return !HasResult || defineValue(ResultName, Result);
    }

    // Unary FP operations: OPCODE type value.
    {
      UnaryOpcode UnOp;
      bool IsUnary = true;
      if (Opcode == "fneg")
        UnOp = UnaryOpcode::FNeg;
      else if (Opcode == "sqrt")
        UnOp = UnaryOpcode::Sqrt;
      else if (Opcode == "fabs")
        UnOp = UnaryOpcode::Fabs;
      else
        IsUnary = false;
      if (IsUnary) {
        Type *Ty = parseType();
        if (!Ty)
          return false;
        Value *V = parseValue(Ty);
        if (!V)
          return false;
        Value *Result = Builder.createUnaryOp(UnOp, V);
        return !HasResult || defineValue(ResultName, Result);
      }
    }

    if (Opcode == "altop")
      return parseAlternateOp(Builder, HasResult, ResultName);
    if (Opcode == "load")
      return parseLoad(Builder, HasResult, ResultName);
    if (Opcode == "store")
      return parseStore(Builder, HasResult);
    if (Opcode == "gep")
      return parseGEP(Builder, HasResult, ResultName);
    if (Opcode == "icmp")
      return parseICmp(Builder, HasResult, ResultName);
    if (Opcode == "select")
      return parseSelect(Builder, HasResult, ResultName);
    if (Opcode == "phi")
      return parsePhi(F, Builder, HasResult, ResultName, BB);
    if (Opcode == "br")
      return parseBranch(F, Builder, HasResult);
    if (Opcode == "ret")
      return parseRet(Builder, HasResult);
    if (Opcode == "insertelement")
      return parseInsertElement(Builder, HasResult, ResultName);
    if (Opcode == "extractelement")
      return parseExtractElement(Builder, HasResult, ResultName);
    if (Opcode == "shufflevector")
      return parseShuffleVector(Builder, HasResult, ResultName);

    return errorAt(OpcodeLine, "unknown opcode '" + Opcode + "'");
  }

  bool parseAlternateOp(IRBuilder &Builder, bool HasResult,
                        const std::string &ResultName) {
    Type *Ty = parseType();
    if (!Ty)
      return false;
    auto *VT = dyn_cast<VectorType>(Ty);
    if (!VT)
      return error("altop requires a vector type");
    if (!expect(TokKind::LBracket, "'['"))
      return false;
    std::vector<BinOpcode> LaneOps;
    while (true) {
      if (!check(TokKind::Ident))
        return error("expected opcode in altop lane list");
      BinOpcode Op;
      if (!opcodeByName(advance().Text, Op))
        return error("unknown opcode in altop lane list");
      LaneOps.push_back(Op);
      if (check(TokKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    if (!expect(TokKind::RBracket, "']'") || !expect(TokKind::Comma, "','"))
      return false;
    if (LaneOps.size() != VT->getNumLanes())
      return error("altop lane-opcode count mismatch");
    Value *L = parseValue(Ty);
    if (!L || !expect(TokKind::Comma, "','"))
      return false;
    Value *R = parseValue(Ty);
    if (!R)
      return false;
    Value *Result = Builder.createAlternateOp(std::move(LaneOps), L, R);
    return !HasResult || defineValue(ResultName, Result);
  }

  bool parseLoad(IRBuilder &Builder, bool HasResult,
                 const std::string &ResultName) {
    Type *Ty = parseType();
    if (!Ty || !expect(TokKind::Comma, "','") || !expectIdent("ptr"))
      return false;
    Value *Ptr = parseValue(Ctx.getPtrTy());
    if (!Ptr)
      return false;
    Value *Result = Builder.createLoad(Ty, Ptr);
    return !HasResult || defineValue(ResultName, Result);
  }

  bool parseStore(IRBuilder &Builder, bool HasResult) {
    if (HasResult)
      return error("store has no result");
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *Val = parseValue(Ty);
    if (!Val || !expect(TokKind::Comma, "','") || !expectIdent("ptr"))
      return false;
    Value *Ptr = parseValue(Ctx.getPtrTy());
    if (!Ptr)
      return false;
    Builder.createStore(Val, Ptr);
    return true;
  }

  bool parseGEP(IRBuilder &Builder, bool HasResult,
                const std::string &ResultName) {
    Type *ElemTy = parseType();
    if (!ElemTy || !expect(TokKind::Comma, "','") || !expectIdent("ptr"))
      return false;
    Value *Ptr = parseValue(Ctx.getPtrTy());
    if (!Ptr || !expect(TokKind::Comma, "','") || !expectIdent("i64"))
      return false;
    Value *Index = parseValue(Ctx.getInt64Ty());
    if (!Index)
      return false;
    Value *Result = Builder.createGEP(ElemTy, Ptr, Index);
    return !HasResult || defineValue(ResultName, Result);
  }

  bool parseICmp(IRBuilder &Builder, bool HasResult,
                 const std::string &ResultName) {
    if (!check(TokKind::Ident))
      return error("expected icmp predicate");
    std::string PredName = advance().Text;
    static const std::pair<const char *, ICmpPredicate> Preds[] = {
        {"eq", ICmpPredicate::EQ},   {"ne", ICmpPredicate::NE},
        {"slt", ICmpPredicate::SLT}, {"sle", ICmpPredicate::SLE},
        {"sgt", ICmpPredicate::SGT}, {"sge", ICmpPredicate::SGE},
        {"ult", ICmpPredicate::ULT}, {"ule", ICmpPredicate::ULE}};
    const ICmpPredicate *Pred = nullptr;
    for (const auto &[Spelling, P] : Preds)
      if (PredName == Spelling)
        Pred = &P;
    if (!Pred)
      return error("unknown icmp predicate '" + PredName + "'");
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *L = parseValue(Ty);
    if (!L || !expect(TokKind::Comma, "','"))
      return false;
    Value *R = parseValue(Ty);
    if (!R)
      return false;
    Value *Result = Builder.createICmp(*Pred, L, R);
    return !HasResult || defineValue(ResultName, Result);
  }

  bool parseSelect(IRBuilder &Builder, bool HasResult,
                   const std::string &ResultName) {
    Value *Cond = parseValue(Ctx.getInt1Ty());
    if (!Cond || !expect(TokKind::Comma, "','"))
      return false;
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *T = parseValue(Ty);
    if (!T || !expect(TokKind::Comma, "','"))
      return false;
    Value *FVal = parseValue(Ty);
    if (!FVal)
      return false;
    Value *Result = Builder.createSelect(Cond, T, FVal);
    return !HasResult || defineValue(ResultName, Result);
  }

  bool parsePhi(Function *F, IRBuilder &Builder, bool HasResult,
                const std::string &ResultName, BasicBlock *BB) {
    (void)BB;
    Type *Ty = parseType();
    if (!Ty)
      return false;
    PhiNode *Phi = Builder.createPhi(Ty);
    while (true) {
      if (!expect(TokKind::LBracket, "'['"))
        return false;
      // The incoming value may be a forward reference; defer resolution.
      PhiFixup Fix;
      Fix.Phi = Phi;
      Fix.Line = cur().Line;
      if (check(TokKind::LocalId)) {
        Fix.IsConstant = false;
        Fix.ValueName = advance().Text;
      } else {
        Fix.IsConstant = true;
        if (check(TokKind::IntLit) || check(TokKind::FPLit)) {
          Fix.ConstantValue = parseScalarConstantToken(advance(), Ty);
          if (!Fix.ConstantValue)
            return false;
        } else {
          return error("expected phi incoming value");
        }
      }
      if (!expect(TokKind::Comma, "','"))
        return false;
      Fix.Block = parseBlockRef(F);
      if (!Fix.Block)
        return false;
      PhiFixups.push_back(Fix);
      if (!expect(TokKind::RBracket, "']'"))
        return false;
      if (check(TokKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    return !HasResult || defineValue(ResultName, Phi);
  }

  bool parseBranch(Function *F, IRBuilder &Builder, bool HasResult) {
    if (HasResult)
      return error("br has no result");
    if (checkIdent("label")) {
      advance();
      BasicBlock *Target = parseBlockRef(F);
      if (!Target)
        return false;
      Builder.createBr(Target);
      return true;
    }
    if (!expectIdent("i1"))
      return false;
    Value *Cond = parseValue(Ctx.getInt1Ty());
    if (!Cond || !expect(TokKind::Comma, "','") || !expectIdent("label"))
      return false;
    BasicBlock *TrueBB = parseBlockRef(F);
    if (!TrueBB || !expect(TokKind::Comma, "','") || !expectIdent("label"))
      return false;
    BasicBlock *FalseBB = parseBlockRef(F);
    if (!FalseBB)
      return false;
    Builder.createCondBr(Cond, TrueBB, FalseBB);
    return true;
  }

  bool parseRet(IRBuilder &Builder, bool HasResult) {
    if (HasResult)
      return error("ret has no result");
    if (checkIdent("void")) {
      advance();
      Builder.createRet();
      return true;
    }
    Type *Ty = parseType();
    if (!Ty)
      return false;
    Value *V = parseValue(Ty);
    if (!V)
      return false;
    Builder.createRet(V);
    return true;
  }

  bool parseInsertElement(IRBuilder &Builder, bool HasResult,
                          const std::string &ResultName) {
    Type *VecTy = parseType();
    if (!VecTy || !VecTy->isVector())
      return error("insertelement requires a vector type");
    Value *Vec = parseValue(VecTy);
    if (!Vec || !expect(TokKind::Comma, "','"))
      return false;
    Type *ScalarTy = parseType();
    if (!ScalarTy)
      return false;
    Value *Scalar = parseValue(ScalarTy);
    if (!Scalar || !expect(TokKind::Comma, "','"))
      return false;
    if (!check(TokKind::IntLit))
      return error("expected lane index");
    long Lane = std::strtol(advance().Text.c_str(), nullptr, 10);
    if (Lane < 0 ||
        Lane >= static_cast<long>(cast<VectorType>(VecTy)->getNumLanes()))
      return error("lane index out of range");
    Value *Result = Builder.createInsertElement(
        Vec, Scalar, static_cast<unsigned>(Lane));
    return !HasResult || defineValue(ResultName, Result);
  }

  bool parseExtractElement(IRBuilder &Builder, bool HasResult,
                           const std::string &ResultName) {
    Type *VecTy = parseType();
    if (!VecTy || !VecTy->isVector())
      return error("extractelement requires a vector type");
    Value *Vec = parseValue(VecTy);
    if (!Vec || !expect(TokKind::Comma, "','"))
      return false;
    if (!check(TokKind::IntLit))
      return error("expected lane index");
    long Lane = std::strtol(advance().Text.c_str(), nullptr, 10);
    if (Lane < 0 ||
        Lane >= static_cast<long>(cast<VectorType>(VecTy)->getNumLanes()))
      return error("lane index out of range");
    Value *Result =
        Builder.createExtractElement(Vec, static_cast<unsigned>(Lane));
    return !HasResult || defineValue(ResultName, Result);
  }

  bool parseShuffleVector(IRBuilder &Builder, bool HasResult,
                          const std::string &ResultName) {
    Type *VecTy = parseType();
    if (!VecTy || !VecTy->isVector())
      return error("shufflevector requires a vector type");
    Value *V1 = parseValue(VecTy);
    if (!V1 || !expect(TokKind::Comma, "','"))
      return false;
    Value *V2 = parseValue(VecTy);
    if (!V2 || !expect(TokKind::Comma, "','") ||
        !expect(TokKind::LBracket, "'['"))
      return false;
    std::vector<int> Mask;
    unsigned InLanes = cast<VectorType>(VecTy)->getNumLanes();
    while (true) {
      if (!check(TokKind::IntLit))
        return error("expected mask element");
      long MVal = std::strtol(advance().Text.c_str(), nullptr, 10);
      if (MVal < 0 || MVal >= static_cast<long>(2 * InLanes))
        return error("shuffle mask element out of range");
      Mask.push_back(static_cast<int>(MVal));
      if (check(TokKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    if (!expect(TokKind::RBracket, "']'"))
      return false;
    if (Mask.size() < 2)
      return error("shuffle result must have at least two lanes");
    Value *Result = Builder.createShuffleVector(V1, V2, std::move(Mask));
    return !HasResult || defineValue(ResultName, Result);
  }

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  struct PhiFixup {
    PhiNode *Phi = nullptr;
    BasicBlock *Block = nullptr;
    bool IsConstant = false;
    Constant *ConstantValue = nullptr;
    std::string ValueName;
    unsigned Line = 0;
  };

  std::vector<Token> Tokens;
  size_t Pos = 0;
  Module &M;
  Context &Ctx;
  std::string &Err;

  std::map<std::string, Value *> ValueMap;
  std::vector<PhiFixup> PhiFixups;
};

} // namespace

bool snslp::parseIR(const std::string &Source, Module &M,
                    std::string *ErrMsg) {
  std::string Err;
  std::vector<Token> Tokens;
  Lexer Lex(Source, Err);
  if (!Lex.run(Tokens)) {
    if (ErrMsg)
      *ErrMsg = Err;
    return false;
  }
  ParserImpl P(std::move(Tokens), M, Err);
  if (!P.run()) {
    if (ErrMsg)
      *ErrMsg = Err;
    return false;
  }
  return true;
}
