//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "slp/PackEnumerator.h"

#include "analysis/Dependence.h"
#include "ir/BasicBlock.h"

#include <algorithm>
#include <unordered_map>

using namespace snslp;

PackEnumeration snslp::enumeratePackCandidates(BasicBlock &BB,
                                               const VectorizerConfig &Cfg,
                                               BudgetTracker &Budget,
                                               RemarkCollector *RC) {
  PackEnumeration Out;
  if (Cfg.MinVF < 2 || Cfg.MaxVF < Cfg.MinVF)
    return Out;

  std::unordered_map<const Instruction *, size_t> Pos;
  size_t Idx = 0;
  for (const auto &Inst : BB)
    Pos[Inst.get()] = Idx++;

  std::vector<StoreRun> Runs = collectAdjacentStoreRuns(BB, RC);
  for (unsigned RI = 0; RI < Runs.size(); ++RI) {
    const StoreRun &Run = Runs[RI];
    unsigned ElemSize =
        Run.Stores.front()->getValueOperand()->getType()->getSizeInBytes();
    unsigned EffMaxVF =
        std::min(Cfg.MaxVF, Cfg.Target.MaxVectorWidthBytes / ElemSize);
    if (EffMaxVF < Cfg.MinVF)
      continue;

    // Widest windows first (they carry the most savings and so make the
    // strongest solver incumbents), then left to right. Overlapping windows
    // are enumerated deliberately — resolving the overlap is the solver's
    // job, and the freedom to pick an offset the greedy left-to-right
    // slicing never considers is exactly where GoSLP wins.
    for (unsigned VF = EffMaxVF; VF >= Cfg.MinVF; VF /= 2) {
      if (VF > Run.Stores.size())
        continue;
      for (unsigned Off = 0; Off + VF <= Run.Stores.size(); ++Off) {
        std::vector<Instruction *> Bundle;
        for (unsigned I = 0; I < VF; ++I)
          Bundle.push_back(Run.Stores[Off + I]);
        if (!isSafeToBundle(Bundle))
          continue;
        if (!Budget.chargePackCandidate()) {
          Out.Complete = false;
          return Out;
        }
        PackCandidate C;
        C.RunIndex = RI;
        C.Offset = Off;
        for (unsigned I = 0; I < VF; ++I) {
          C.Group.Stores.push_back(Run.Stores[Off + I]);
          C.Positions.push_back(Pos.at(Run.Stores[Off + I]));
        }
        Out.Candidates.push_back(std::move(C));
      }
    }
  }
  return Out;
}
