//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini -O3 pipeline: scalar cleanup (constant folding, local CSE,
/// DCE) around the SLP vectorizer, mirroring where LLVM runs the SLP pass.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_DRIVER_PASSPIPELINE_H
#define SNSLP_DRIVER_PASSPIPELINE_H

#include "slp/SLPVectorizer.h"

#include <cstddef>

namespace snslp {

class Function;

/// Pipeline configuration.
struct PipelineOptions {
  /// Run constant folding + CSE + DCE before the vectorizer (canonical
  /// input) and after it (cleanup of extracts/duplicates).
  bool EarlyCleanup = true;
  bool LateCleanup = true;
  VectorizerConfig Vectorizer;
};

/// Aggregated pipeline results.
struct PipelineResult {
  size_t ConstantsFolded = 0;
  size_t CSERemoved = 0;
  size_t DCERemoved = 0;
  VectorizeStats VecStats;
};

/// Runs cleanup -> vectorizer -> cleanup over \p F in place.
PipelineResult runPassPipeline(Function &F, const PipelineOptions &Options);

} // namespace snslp

#endif // SNSLP_DRIVER_PASSPIPELINE_H
