//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Super-Node (Section IV of the paper): a multi-lane bundle of maximal
/// single-use expression trees over one operator family — a commutative,
/// associative operator together with its inverse element (add/sub,
/// fadd/fsub, fmul/fdiv). With AllowInverse=false this degenerates to
/// LSLP's Multi-Node (single commutative opcode).
///
/// Each leaf operand carries its Accumulated Path Operation (APO,
/// Sec. IV-C1): the effective unary operation ('+' or '-'; for the
/// multiplicative family, identity or reciprocal) obtained by counting the
/// right-hand-side edges of inverse operators on the path from the root.
/// The lane's value equals the APO-signed combination of its leaves, which
/// is what makes cross-slot leaf reordering legal.
///
/// Legality (Sec. IV-C2/C3): a leaf may take a slot whose APO matches
/// (leaf-only move), or a slot whose trunk can be reordered to route the
/// required APO there while preserving every node's APO (trunk-assisted
/// move). Because this implementation re-emits the trunk as a canonical
/// left-to-right chain, the two rules reduce to: slot 0 (the chain head)
/// requires a '+' leaf — no unary negation/reciprocal is ever introduced,
/// the same restriction the paper's trunk reordering obeys — and every
/// other slot accepts either APO (the re-derived trunk supplies the
/// matching direct/inverse opcode). One '+' leaf is reserved per lane so
/// slot 0 can always be filled; every lane has one because the root's
/// leftmost spine always carries a '+' APO.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SLP_SUPERNODE_H
#define SNSLP_SLP_SUPERNODE_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace snslp {

class BudgetTracker;
class LookAhead;

/// A leaf operand of a Super-Node with its APO.
struct SNLeaf {
  Value *V = nullptr;
  /// APO: false = '+' (identity), true = '-' (negation / reciprocal).
  bool Inverted = false;
};

/// A Super-Node spanning all lanes of one SLP bundle.
class SuperNode {
public:
  /// Attempts to build a Super-Node rooted at \p Bundle.
  ///
  /// Every lane must be a distinct BinaryOperator of the same operator
  /// family within one basic block; with \p AllowInverse false only the
  /// direct (commutative) opcode participates, yielding an LSLP Multi-Node.
  /// Values in \p Frozen (e.g. instructions produced by an earlier
  /// Super-Node re-emission) are never expanded.
  ///
  /// Returns null when no Super-Node of trunk depth >= 2 exists (the
  /// paper's minimum legal Multi/Super-Node size). When \p WhyNot is
  /// non-null, a null return stores a machine-readable reason there
  /// ("bundle-too-small", "duplicate-lanes", "non-binop-or-frozen",
  /// "no-family", "inverse-not-allowed", "family-or-block-mismatch",
  /// "trunk-too-small"); optimization remarks surface it.
  static std::unique_ptr<SuperNode>
  tryBuild(const std::vector<Value *> &Bundle, bool AllowInverse,
           const std::unordered_set<Value *> &Frozen,
           std::string *WhyNot = nullptr);

  unsigned getNumLanes() const {
    return static_cast<unsigned>(Lanes.size());
  }
  /// Leaf slots per lane (equal across lanes after construction).
  unsigned getNumSlots() const {
    return static_cast<unsigned>(Lanes.front().Leaves.size());
  }
  /// Trunk operations per lane (= slots - 1); the "node size" reported by
  /// the paper's Figs. 6/7/9/10.
  unsigned getTrunkSize() const { return getNumSlots() - 1; }

  OpFamily getFamily() const { return Family; }

  /// Finds the best legal leaf order per slot across all lanes, greedy,
  /// root-proximal slots first, scored with \p LA (Listings 2 and 3).
  void reorderLeavesAndTrunks(const LookAhead &LA);

  /// Attaches a per-attempt resource budget (not owned; may be null).
  /// Every coordinated-group probe (buildGroup call) charges one
  /// Super-Node permutation; once exhausted the remaining slots fill via
  /// the cheap per-lane fallback and the caller observes exhaustion on
  /// the tracker.
  void setBudget(BudgetTracker *BT) { Budget = BT; }

  /// Re-emits each lane as a canonical chain realizing the order chosen by
  /// reorderLeavesAndTrunks, replaces all uses of the old roots, and erases
  /// the dead original trunk. Newly created instructions are added to
  /// \p Produced so callers can stop re-forming Super-Nodes over them.
  ///
  /// \returns the new root instruction of each lane.
  std::vector<Instruction *>
  generateCode(std::unordered_set<Value *> &Produced);

  /// Assigned leaf for (lane, slot); valid after reorderLeavesAndTrunks.
  const SNLeaf &getAssigned(unsigned Lane, unsigned Slot) const {
    return Lanes[Lane].Assigned[Slot];
  }

  /// One character per leaf slot of \p Lane — '+' identity APO, '-'
  /// inverted APO — for the assignment chosen by reorderLeavesAndTrunks.
  /// Optimization remarks record lane 0's string as the APO detail.
  std::string getAPOSlotString(unsigned Lane = 0) const;

  /// \name APO legality telemetry (valid after reorderLeavesAndTrunks).
  /// Candidate groups abandoned because some lane had no legal leaf for
  /// the slot (Listing 3's legality checks refused every remaining leaf),
  /// and slots filled by the uncoordinated per-lane fallback as a result.
  /// @{
  unsigned getAbandonedGroupCount() const { return AbandonedGroups; }
  unsigned getFallbackSlotCount() const { return FallbackSlots; }
  /// @}

private:
  struct Lane {
    BinaryOperator *Root = nullptr;
    /// Current internal (trunk) instructions, root first.
    std::vector<BinaryOperator *> Trunk;
    /// Current leaves in left-to-right DFS order.
    std::vector<SNLeaf> Leaves;
    /// Expansion history for LIFO undo during lane equalization.
    struct Expansion {
      size_t Pos;          ///< Leaf position that was expanded.
      SNLeaf Replaced;     ///< The leaf that the expansion replaced.
      BinaryOperator *TrunkInst;
    };
    std::vector<Expansion> History;
    /// Per-slot leaf assignment chosen by reorderLeavesAndTrunks.
    std::vector<SNLeaf> Assigned;
    std::vector<bool> Used; ///< Parallel to Leaves.

    void undoLastExpansion();
    unsigned unusedNonInvertedCount() const;
  };

  /// Listing 3: extends the group for slot \p Slot across lanes, starting
  /// from leaf \p Lane0Leaf of lane 0. Returns one leaf index per lane, or
  /// empty when some lane has no legal leaf.
  std::vector<size_t> buildGroup(size_t Lane0Leaf, unsigned Slot,
                                 const LookAhead &LA) const;

  /// Two-step legality of Listing 3 in canonical-chain form (see file
  /// comment): leaf-only move when APOs agree, trunk-assisted otherwise.
  bool canPlace(const Lane &L, size_t LeafIdx, unsigned Slot) const;

  OpFamily Family = OpFamily::None;
  std::vector<Lane> Lanes;
  /// Optional per-attempt budget (see setBudget). Not owned.
  BudgetTracker *Budget = nullptr;
  /// buildGroup is const and speculative; the counter is telemetry only.
  mutable unsigned AbandonedGroups = 0;
  unsigned FallbackSlots = 0;
};

} // namespace snslp

#endif // SNSLP_SLP_SUPERNODE_H
