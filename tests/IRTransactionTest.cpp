//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the function-level checkpoint/rollback boundary
/// (slp/IRTransaction.h): modified()/refresh()/snapshotText() semantics,
/// bit-identical restores on the paper kernels after real vectorization,
/// and a seeded sweep over generated fuzz programs — rollback must reprint
/// exactly as the snapshot for every program shape the fuzzer can emit.
///
//===----------------------------------------------------------------------===//

#include "fuzz/IRGenerator.h"
#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "kernels/Kernel.h"
#include "slp/IRTransaction.h"
#include "slp/SLPVectorizer.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <string>

using namespace snslp;

namespace {

class IRTransactionTest : public ::testing::Test {
protected:
  Context Ctx;
  Module M{Ctx, "txn"};

  Function *parse(const std::string &Source) {
    std::string Err;
    EXPECT_TRUE(parseIR(Source, M, &Err)) << Err;
    Function *F = M.functions().back().get();
    EXPECT_TRUE(verifyFunction(*F));
    return F;
  }

  Function *kernelFunction(const char *Name) {
    const Kernel *K = findKernel(Name);
    EXPECT_NE(K, nullptr) << Name;
    std::string Err;
    EXPECT_TRUE(parseIR(K->IRText, M, &Err)) << Err;
    return M.getFunction(Name);
  }
};

TEST_F(IRTransactionTest, FreshTransactionIsUnmodified) {
  Function *F = kernelFunction("motiv1");
  IRTransaction Txn(*F);
  EXPECT_FALSE(Txn.modified());
  EXPECT_EQ(Txn.snapshotText(), toString(*F));
}

TEST_F(IRTransactionTest, MutationFlipsModifiedAndRollbackClearsIt) {
  Function *F = parse("func @m(ptr %p, i64 %x) {\n"
                      "entry:\n"
                      "  %a = add i64 %x, 1\n"
                      "  store i64 %a, ptr %p\n"
                      "  ret void\n"
                      "}\n");
  const std::string Before = toString(*F);
  IRTransaction Txn(*F);

  // Mutate: erase the store (keeps the function verifiable).
  BasicBlock *BB = F->blocks().front().get();
  for (const auto &I : *BB)
    if (I->getKind() == ValueKind::Store) {
      Instruction *Store = I.get();
      Store->dropAllReferences();
      Store->eraseFromParent();
      break;
    }
  EXPECT_TRUE(Txn.modified());
  EXPECT_NE(toString(*F), Before);

  ASSERT_TRUE(Txn.rollback());
  EXPECT_FALSE(Txn.modified());
  EXPECT_EQ(toString(*F), Before);
  EXPECT_TRUE(verifyFunction(*F));
}

TEST_F(IRTransactionTest, RefreshMovesTheCheckpoint) {
  Function *F = parse("func @r(ptr %p, i64 %x) {\n"
                      "entry:\n"
                      "  %a = add i64 %x, 1\n"
                      "  %b = add i64 %a, 2\n"
                      "  store i64 %b, ptr %p\n"
                      "  ret void\n"
                      "}\n");
  IRTransaction Txn(*F);

  // First span: erase the store, then commit.
  BasicBlock *BB = F->blocks().front().get();
  Instruction *Store = nullptr;
  for (const auto &I : *BB)
    if (I->getKind() == ValueKind::Store)
      Store = I.get();
  ASSERT_NE(Store, nullptr);
  Store->dropAllReferences();
  Store->eraseFromParent();
  EXPECT_TRUE(Txn.modified());
  Txn.refresh();
  EXPECT_FALSE(Txn.modified());
  const std::string Committed = toString(*F);
  EXPECT_EQ(Txn.snapshotText(), Committed);

  // Second span: another mutation rolls back to the *refreshed* state,
  // not the original. The adds are now dead; erase the later one (%b).
  BB = F->blocks().front().get();
  Instruction *LastAdd = nullptr;
  for (const auto &I : *BB)
    if (I->getKind() == ValueKind::BinOp)
      LastAdd = I.get();
  ASSERT_NE(LastAdd, nullptr);
  LastAdd->dropAllReferences();
  LastAdd->eraseFromParent();
  EXPECT_TRUE(Txn.modified());
  ASSERT_TRUE(Txn.rollback());
  EXPECT_EQ(toString(*F), Committed);
}

TEST_F(IRTransactionTest, RollbackAfterRealVectorizationIsBitIdentical) {
  // Run the real SNSLP vectorizer (which commits a graph on motiv1/motiv2),
  // then roll the whole thing back: the function must reprint exactly as
  // the pre-pass scalar form. This is the operation the in-pass bailout
  // path performs after a planted fault.
  for (const char *Name : {"motiv1", "motiv2"}) {
    Context LocalCtx;
    Module LocalM(LocalCtx, std::string("txn.") + Name);
    const Kernel *K = findKernel(Name);
    ASSERT_NE(K, nullptr);
    std::string Err;
    ASSERT_TRUE(parseIR(K->IRText, LocalM, &Err)) << Err;
    Function *F = LocalM.getFunction(Name);
    const std::string Scalar = toString(*F);

    IRTransaction Txn(*F);
    VectorizerConfig Cfg;
    Cfg.Mode = VectorizerMode::SNSLP;
    // The outer transaction must observe the vectorizer's mutation, so
    // disable the pass's own per-region transactions for this run.
    Cfg.TransactionalRegions = false;
    VectorizeStats Stats = runSLPVectorizer(*F, Cfg);
    ASSERT_EQ(Stats.GraphsVectorized, 1u) << Name;
    EXPECT_TRUE(Txn.modified()) << Name;

    ASSERT_TRUE(Txn.rollback()) << Name;
    EXPECT_EQ(toString(*F), Scalar) << Name;
    EXPECT_TRUE(verifyFunction(*F)) << Name;
    EXPECT_FALSE(Txn.modified()) << Name;
  }
}

TEST_F(IRTransactionTest, RollbackIsRepeatable) {
  Function *F = kernelFunction("motiv2");
  const std::string Scalar = toString(*F);
  IRTransaction Txn(*F);
  for (int Round = 0; Round < 3; ++Round) {
    VectorizerConfig Cfg;
    Cfg.Mode = VectorizerMode::SNSLP;
    Cfg.TransactionalRegions = false;
    runSLPVectorizer(*F, Cfg);
    ASSERT_TRUE(Txn.rollback()) << "round " << Round;
    EXPECT_EQ(toString(*F), Scalar) << "round " << Round;
  }
}

/// The load-bearing invariant, fuzzed: for 100 seeded generator programs
/// (every shape/element type the differential-testing subsystem emits),
/// open a transaction, vectorize non-transactionally, roll back — the
/// printed form must equal the snapshot byte for byte, and the function
/// must still verify.
TEST_F(IRTransactionTest, FuzzProgramsRollBackBitIdentically) {
  unsigned Modified = 0;
  for (uint64_t Seed = 1; Seed <= 100; ++Seed) {
    Context LocalCtx;
    Module LocalM(LocalCtx, "txn.fuzz");
    fuzz::IRGenerator Gen(LocalM);
    fuzz::GeneratedProgram P =
        Gen.generate("txnf_" + std::to_string(Seed), Seed);
    ASSERT_NE(P.F, nullptr) << "seed " << Seed;
    ASSERT_TRUE(verifyFunction(*P.F)) << "seed " << Seed;
    const std::string Snapshot = toString(*P.F);

    IRTransaction Txn(*P.F);
    EXPECT_EQ(Txn.snapshotText(), Snapshot) << "seed " << Seed;
    VectorizerConfig Cfg;
    Cfg.Mode = VectorizerMode::SNSLP;
    Cfg.TransactionalRegions = false;
    runSLPVectorizer(*P.F, Cfg);
    if (Txn.modified())
      ++Modified;

    ASSERT_TRUE(Txn.rollback()) << "seed " << Seed;
    EXPECT_EQ(toString(*P.F), Snapshot) << "seed " << Seed;
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyFunction(*P.F, &Errors))
        << "seed " << Seed << ": "
        << (Errors.empty() ? "" : Errors.front());
  }
  // The sweep must genuinely exercise the rollback path: the generator is
  // biased toward vectorizable shapes, so a healthy majority of programs
  // must actually have been transformed before the rollback.
  EXPECT_GT(Modified, 20u);
}

} // namespace
