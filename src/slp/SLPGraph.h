//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SLP graph: each node is a group ("bundle") of scalar values that the
/// vectorizer may replace by one vector value. Vectorize/Alternate nodes
/// carry operand edges to the bundles feeding them; Gather nodes terminate
/// recursion and pay the cost of assembling a vector from scalars.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SLP_SLPGRAPH_H
#define SNSLP_SLP_SLPGRAPH_H

#include "ir/Instruction.h"

#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace snslp {

/// How a node's scalars will be realized as a vector.
enum class SLPNodeKind : uint8_t {
  Vectorize, ///< Isomorphic group -> one uniform vector instruction.
  Alternate, ///< Same family, mixed direct/inverse opcodes -> altop.
  Gather,    ///< Non-vectorizable group -> insertelement chain.
  Shuffle,   ///< Permutation of another node's lanes -> shufflevector.
};

/// Returns "Vectorize"/"Alternate"/"Gather".
const char *getNodeKindName(SLPNodeKind Kind);

/// One group of scalars (one per vector lane).
class SLPNode {
public:
  SLPNode(SLPNodeKind Kind, std::vector<Value *> Lanes)
      : Kind(Kind), Lanes(std::move(Lanes)) {}

  SLPNodeKind getKind() const { return Kind; }
  unsigned getNumLanes() const { return static_cast<unsigned>(Lanes.size()); }
  Value *getLane(unsigned I) const {
    assert(I < Lanes.size() && "lane out of range");
    return Lanes[I];
  }
  const std::vector<Value *> &lanes() const { return Lanes; }

  /// \name Operand edges (empty for Gather and vector-load nodes).
  /// @{
  void addOperand(SLPNode *N) { Operands.push_back(N); }
  unsigned getNumOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  SLPNode *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  /// @}

  /// Static cost contribution of this node (negative = saves cost).
  int getCost() const { return Cost; }
  void setCost(int C) { Cost = C; }

  /// Per-lane opcodes for Alternate nodes.
  const std::vector<BinOpcode> &getLaneOpcodes() const { return LaneOpcodes; }
  void setLaneOpcodes(std::vector<BinOpcode> Ops) {
    LaneOpcodes = std::move(Ops);
  }

  /// True when every lane is a load/store (memory bundle).
  bool isMemoryBundle() const {
    return isa<LoadInst>(Lanes.front()) || isa<StoreInst>(Lanes.front());
  }

  /// Id of the Super-Node this row was carved from, or -1. Used by the
  /// node-size statistics (Figs. 6/7/9/10).
  int getSuperNodeId() const { return SuperNodeId; }
  void setSuperNodeId(int Id) { SuperNodeId = Id; }

  /// For permuted load groups (EnableLoadShuffles): LoadPermutation[l] is
  /// lane l's rank in memory order. Empty for in-order loads. For Shuffle
  /// nodes this is the lane-selection mask into the source node.
  const std::vector<int> &getLoadPermutation() const {
    return LoadPermutation;
  }
  void setLoadPermutation(std::vector<int> Perm) {
    LoadPermutation = std::move(Perm);
  }

private:
  SLPNodeKind Kind;
  std::vector<Value *> Lanes;
  std::vector<SLPNode *> Operands;
  std::vector<BinOpcode> LaneOpcodes;
  std::vector<int> LoadPermutation;
  int Cost = 0;
  int SuperNodeId = -1;
};

/// A whole SLP graph rooted at one seed bundle (a group of adjacent
/// stores). Owns its nodes.
class SLPGraph {
public:
  /// Creates a node owned by this graph.
  SLPNode *createNode(SLPNodeKind Kind, std::vector<Value *> Lanes) {
    Nodes.push_back(std::make_unique<SLPNode>(Kind, std::move(Lanes)));
    return Nodes.back().get();
  }

  void setRoot(SLPNode *N) { Root = N; }
  SLPNode *getRoot() const { return Root; }

  const std::vector<std::unique_ptr<SLPNode>> &nodes() const { return Nodes; }

  /// Sum of all node costs plus the external-extract cost.
  int getTotalCost() const { return TotalCost; }
  void setTotalCost(int C) { TotalCost = C; }

  /// Sizes (trunk depths) of the Super-Nodes that contributed rows to this
  /// graph; one entry per Super-Node.
  const std::vector<unsigned> &getSuperNodeSizes() const {
    return SuperNodeSizes;
  }
  void addSuperNodeSize(unsigned Size) { SuperNodeSizes.push_back(Size); }

  /// Debug dump: one line per node with kind, cost and lanes.
  void print(std::ostream &OS) const;

private:
  std::vector<std::unique_ptr<SLPNode>> Nodes;
  SLPNode *Root = nullptr;
  int TotalCost = 0;
  std::vector<unsigned> SuperNodeSizes;
};

} // namespace snslp

#endif // SNSLP_SLP_SLPGRAPH_H
