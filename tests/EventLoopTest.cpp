//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the epoll reactor (service/EventLoop) driven through its
/// socketpair seam (adoptConnection) plus one real loopback TCP socket:
///
///  - a frame trickled in a few bytes per wakeup is reassembled and
///    answered (incremental parse state across epoll wakeups);
///  - responses on one connection come back in request arrival order even
///    when they are posted out of order;
///  - idle connections are closed after IdleTimeoutMillis;
///  - a 1 MiB frame round-trips through a nonblocking TCP socket whose
///    buffers are squeezed to 4 KiB (many partial reads *and* writes);
///  - a malformed frame (bad magic) is answered with the configured
///    payload and the connection closed — never a crash, never silence;
///  - requestStop() with a request still in flight drains: the owed
///    response is written before run() returns.
///
//===----------------------------------------------------------------------===//

#include "service/EventLoop.h"
#include "service/Protocol.h"

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "gtest/gtest.h"

using namespace snslp;
using namespace snslp::service;

namespace {

/// Builds the raw wire bytes for one frame.
std::string rawFrame(const std::string &Payload) {
  std::string F = "SNS1";
  const uint32_t N = static_cast<uint32_t>(Payload.size());
  F.push_back(static_cast<char>(N & 0xff));
  F.push_back(static_cast<char>((N >> 8) & 0xff));
  F.push_back(static_cast<char>((N >> 16) & 0xff));
  F.push_back(static_cast<char>((N >> 24) & 0xff));
  F += Payload;
  return F;
}

void writeAll(int Fd, const char *Data, size_t N) {
  size_t Off = 0;
  while (Off < N) {
    ssize_t W = ::write(Fd, Data + Off, N - Off);
    ASSERT_GT(W, 0) << std::strerror(errno);
    Off += static_cast<size_t>(W);
  }
}

/// An EventLoop on its own thread, echoing `echo:` + payload unless the
/// test installs its own handler.
struct LoopFixture {
  EventLoop Loop;
  std::thread Runner;

  bool start(EventLoop::Options Opts,
             EventLoop::FrameHandler Handler = nullptr) {
    if (!Handler)
      Handler = [this](const EventLoop::RequestToken &Tok,
                       std::string Payload) {
        Loop.postResponse(Tok, "echo:" + Payload);
      };
    std::string Err;
    if (!Loop.open(Opts, std::move(Handler), &Err)) {
      ADD_FAILURE() << "open failed: " << Err;
      return false;
    }
    return true;
  }

  void run() {
    Runner = std::thread([this] { Loop.run(); });
  }

  ~LoopFixture() {
    Loop.requestStop();
    if (Runner.joinable())
      Runner.join();
  }
};

TEST(EventLoopTest, PartialFrameAcrossManyWakeups) {
  int SP[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, SP), 0);
  LoopFixture F;
  ASSERT_TRUE(F.start(EventLoop::Options()));
  F.Loop.adoptConnection(SP[1]);
  F.run();

  // Trickle the frame in 3-byte slivers: every chunk is a separate epoll
  // wakeup, so the reassembly state must survive arbitrarily many.
  const std::string Frame = rawFrame("hello across wakeups");
  for (size_t Off = 0; Off < Frame.size(); Off += 3) {
    const size_t N = std::min<size_t>(3, Frame.size() - Off);
    writeAll(SP[0], Frame.data() + Off, N);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::string Resp, Err;
  ASSERT_TRUE(readFrame(SP[0], Resp, &Err)) << Err;
  EXPECT_EQ(Resp, "echo:hello across wakeups");
  EXPECT_EQ(F.Loop.framesServed(), 1u);
  ::close(SP[0]);
}

TEST(EventLoopTest, ResponsesKeepArrivalOrderWhenPostedOutOfOrder) {
  int SP[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, SP), 0);

  // Capture tokens instead of answering; the test answers in reverse.
  std::mutex Mu;
  std::vector<std::pair<EventLoop::RequestToken, std::string>> Got;
  LoopFixture F;
  ASSERT_TRUE(F.start(EventLoop::Options(),
                      [&](const EventLoop::RequestToken &Tok,
                          std::string Payload) {
                        std::lock_guard<std::mutex> L(Mu);
                        Got.emplace_back(Tok, std::move(Payload));
                      }));
  F.Loop.adoptConnection(SP[1]);
  F.run();

  const std::string Two = rawFrame("first") + rawFrame("second");
  writeAll(SP[0], Two.data(), Two.size());
  for (int I = 0; I < 1000; ++I) {
    {
      std::lock_guard<std::mutex> L(Mu);
      if (Got.size() == 2)
        break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> L(Mu);
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0].second, "first");
  EXPECT_EQ(Got[1].second, "second");

  // Post the *second* response first: the wire order must still be
  // first, then second.
  F.Loop.postResponse(Got[1].first, "resp:second");
  F.Loop.postResponse(Got[0].first, "resp:first");

  std::string R1, R2, Err;
  ASSERT_TRUE(readFrame(SP[0], R1, &Err)) << Err;
  ASSERT_TRUE(readFrame(SP[0], R2, &Err)) << Err;
  EXPECT_EQ(R1, "resp:first");
  EXPECT_EQ(R2, "resp:second");
  ::close(SP[0]);
}

TEST(EventLoopTest, IdleConnectionIsClosed) {
  int SP[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, SP), 0);
  EventLoop::Options Opts;
  Opts.IdleTimeoutMillis = 100;
  LoopFixture F;
  ASSERT_TRUE(F.start(Opts));
  F.Loop.adoptConnection(SP[1]);
  F.run();

  // Never send a byte: the loop must close its end, which we observe as
  // EOF. Bound the wait generously; the idle scan ticks at 50ms.
  char Byte;
  ssize_t R = ::read(SP[0], &Byte, 1); // blocking read until EOF
  EXPECT_EQ(R, 0);
  EXPECT_EQ(F.Loop.idleClosed(), 1u);
  ::close(SP[0]);
}

TEST(EventLoopTest, MegabyteFrameThroughFourKilobyteTcpBuffers) {
  EventLoop::Options Opts;
  Opts.EnableTcp = true;
  Opts.TcpPort = 0; // ephemeral
  LoopFixture F;
  ASSERT_TRUE(F.start(Opts));
  ASSERT_NE(F.Loop.tcpPort(), 0);
  F.run();

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  // Squeeze both directions to 4 KiB before connecting so the 1 MiB frame
  // is forced through hundreds of partial reads and partial writes.
  int Buf = 4096;
  ASSERT_EQ(::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Buf, sizeof(Buf)), 0);
  ASSERT_EQ(::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &Buf, sizeof(Buf)), 0);
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(F.Loop.tcpPort());
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0)
      << std::strerror(errno);

  std::string Big(1u << 20, '\0');
  for (size_t I = 0; I < Big.size(); ++I)
    Big[I] = static_cast<char>('a' + (I * 131) % 26);

  std::string Err;
  ASSERT_TRUE(writeFrame(Fd, Big, &Err)) << Err;
  std::string Resp;
  ASSERT_TRUE(readFrame(Fd, Resp, &Err)) << Err;
  ASSERT_EQ(Resp.size(), Big.size() + 5);
  EXPECT_EQ(Resp.compare(5, std::string::npos, Big), 0);
  EXPECT_EQ(Resp.compare(0, 5, "echo:"), 0);
  ::close(Fd);
}

TEST(EventLoopTest, MalformedFrameIsAnsweredThenClosed) {
  int SP[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, SP), 0);
  EventLoop::Options Opts;
  Opts.MalformedFrameResponse = "that was not a frame";
  LoopFixture F;
  ASSERT_TRUE(F.start(Opts));
  F.Loop.adoptConnection(SP[1]);
  F.run();

  // Bad magic: 8 bytes that are definitely not "SNS1" + length.
  writeAll(SP[0], "GARBAGE!", 8);
  std::string Resp, Err;
  ASSERT_TRUE(readFrame(SP[0], Resp, &Err)) << Err;
  EXPECT_EQ(Resp, "that was not a frame");
  // ... then the connection is closed, not left dangling.
  char Byte;
  EXPECT_EQ(::read(SP[0], &Byte, 1), 0);
  EXPECT_EQ(F.Loop.malformedFrames(), 1u);
  ::close(SP[0]);
}

TEST(EventLoopTest, OversizedLengthPrefixIsMalformedNotAllocated) {
  int SP[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, SP), 0);
  EventLoop::Options Opts;
  Opts.MalformedFrameResponse = "too big";
  LoopFixture F;
  ASSERT_TRUE(F.start(Opts));
  F.Loop.adoptConnection(SP[1]);
  F.run();

  // Valid magic, runaway length (kMaxFrameBytes + 1): must be rejected
  // from the 8-byte header alone.
  std::string Hdr = "SNS1";
  const uint32_t N = kMaxFrameBytes + 1;
  Hdr.push_back(static_cast<char>(N & 0xff));
  Hdr.push_back(static_cast<char>((N >> 8) & 0xff));
  Hdr.push_back(static_cast<char>((N >> 16) & 0xff));
  Hdr.push_back(static_cast<char>((N >> 24) & 0xff));
  writeAll(SP[0], Hdr.data(), Hdr.size());
  std::string Resp, Err;
  ASSERT_TRUE(readFrame(SP[0], Resp, &Err)) << Err;
  EXPECT_EQ(Resp, "too big");
  char Byte;
  EXPECT_EQ(::read(SP[0], &Byte, 1), 0);
  ::close(SP[0]);
}

TEST(EventLoopTest, DrainWritesInFlightResponseBeforeReturning) {
  int SP[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, SP), 0);

  std::atomic<bool> GotRequest{false};
  EventLoop::RequestToken Tok;
  LoopFixture F;
  ASSERT_TRUE(F.start(EventLoop::Options(),
                      [&](const EventLoop::RequestToken &T, std::string) {
                        Tok = T;
                        GotRequest.store(true);
                      }));
  F.Loop.adoptConnection(SP[1]);
  F.run();

  const std::string Frame = rawFrame("slow request");
  writeAll(SP[0], Frame.data(), Frame.size());
  for (int I = 0; I < 1000 && !GotRequest.load(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(GotRequest.load());

  // Stop first, answer second: the drain phase must still deliver the
  // owed response before run() returns.
  F.Loop.requestStop();
  F.Loop.postResponse(Tok, "late but owed");

  std::string Resp, Err;
  ASSERT_TRUE(readFrame(SP[0], Resp, &Err)) << Err;
  EXPECT_EQ(Resp, "late but owed");
  F.Runner.join(); // run() returns only after the flush
  EXPECT_EQ(F.Loop.framesServed(), 1u);
  ::close(SP[0]);
}

} // namespace
