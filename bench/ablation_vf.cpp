//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: vectorization factor. Sweeps the maximum VF (and the register
/// width that caps it) over the kernel suite under SN-SLP, showing where
/// wider vectors pay off (the VF=4 kernels) and where the unroll factor
/// of the source caps the benefit.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/TextTable.h"

#include <iostream>

using namespace snslp;

int main() {
  std::cout << "=== Ablation: max vectorization factor (SN-SLP mode) "
               "===\n\n";

  KernelRunner Runner;
  TextTable Table;
  Table.setHeader({"kernel", "VF<=2", "VF<=4 (paper target)", "VF<=8"});

  for (const Kernel &K : kernelRegistry()) {
    if (!K.InTableI)
      continue;
    CompiledKernel O3 = Runner.compile(K, VectorizerMode::O3);
    KernelData BaseData(K.Buffers, K.N, 5);
    double BaseCycles = Runner.execute(O3, BaseData).Cycles;

    std::vector<std::string> Row{K.Name};
    for (unsigned MaxVF : {2u, 4u, 8u}) {
      VectorizerConfig Cfg;
      Cfg.MaxVF = MaxVF;
      // Allow 8 x f32 when MaxVF is 8 (256-bit registers already do).
      CompiledKernel CK = Runner.compile(K, VectorizerMode::SNSLP, Cfg);
      KernelData Data(K.Buffers, K.N, 5);
      double Cycles = Runner.execute(CK, Data).Cycles;
      Row.push_back(TextTable::formatDouble(BaseCycles / Cycles));
    }
    Table.addRow(std::move(Row));
  }
  Table.print(std::cout);

  std::cout << "\nKernels unrolled by 2 cannot use more than 2 lanes per\n"
               "seed group; the f32/i32 kernels (unroll 4) gain from VF 4.\n";
  return 0;
}
