//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured optimization remarks, in the spirit of LLVM's
/// `-Rpass`/`opt-remarks` machinery. Every decision the vectorizer (or any
/// other pass) makes is recorded as a Remark: a typed record carrying the
/// emitting pass, the enclosing function, the bundle of IR value names the
/// decision is about, a machine-readable decision string, the scalar/vector
/// cost pair, the Super-Node APO detail (operator family, trunk size,
/// per-slot accumulated path operations) and a free-text payload.
///
/// Remarks serialize to a YAML document stream (one `--- !kind` document
/// per remark, LLVM remark-file style) and to a JSON array; both emitters
/// have matching parsers so streams round-trip losslessly — tools and tests
/// rely on that. See docs/observability.md for the schema.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_SUPPORT_REMARK_H
#define SNSLP_SUPPORT_REMARK_H

#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace snslp {

/// The three LLVM-style remark flavours.
enum class RemarkKind {
  Passed,   ///< An optimization was applied.
  Missed,   ///< An optimization opportunity was rejected.
  Analysis, ///< Neutral information explaining how a decision was reached.
};

/// Returns the serialized spelling ("passed" | "missed" | "analysis").
const char *getRemarkKindName(RemarkKind Kind);

/// Parses a spelling produced by getRemarkKindName. Returns false on
/// unknown input.
bool parseRemarkKindName(const std::string &Name, RemarkKind &Kind);

/// One structured optimization remark.
struct Remark {
  RemarkKind Kind = RemarkKind::Analysis;
  /// Emitting pass, e.g. "slp-vectorizer" or "constant-folding".
  std::string Pass;
  /// Remark identifier naming the decision point, e.g. "SeedAccepted".
  std::string Name;
  /// Enclosing function (empty when not function-scoped).
  std::string FunctionName;
  /// Machine-readable decision, e.g. "vectorize" or "reject:alias".
  std::string Decision;
  /// The bundle of IR value names the decision is about (no '%' sigil).
  std::vector<std::string> Values;

  /// \name Cost detail (valid when HasCost).
  /// @{
  bool HasCost = false;
  int ScalarCost = 0; ///< Cost of keeping the scalar code (baseline 0).
  int VectorCost = 0; ///< Estimated cost of the vector form (negative = win).
  /// @}

  /// \name Super-Node / APO detail (valid when HasAPO).
  /// @{
  bool HasAPO = false;
  std::string APOFamily;  ///< Operator family, e.g. "add/sub".
  unsigned TrunkSize = 0; ///< Trunk operations per lane.
  /// One character per leaf slot: '+' identity APO, '-' inverted APO.
  std::string APOSlots;
  /// @}

  /// Free-text payload.
  std::string Message;

  /// Vector-minus-scalar: negative values are profitable.
  int costDelta() const { return VectorCost - ScalarCost; }

  bool operator==(const Remark &) const = default;

  /// \name Construction helpers.
  /// @{
  static Remark passed(std::string Pass, std::string Name,
                       std::string FunctionName) {
    return make(RemarkKind::Passed, std::move(Pass), std::move(Name),
                std::move(FunctionName));
  }
  static Remark missed(std::string Pass, std::string Name,
                       std::string FunctionName) {
    return make(RemarkKind::Missed, std::move(Pass), std::move(Name),
                std::move(FunctionName));
  }
  static Remark analysis(std::string Pass, std::string Name,
                         std::string FunctionName) {
    return make(RemarkKind::Analysis, std::move(Pass), std::move(Name),
                std::move(FunctionName));
  }
  Remark &withDecision(std::string D) {
    Decision = std::move(D);
    return *this;
  }
  Remark &withCost(int Scalar, int Vector) {
    HasCost = true;
    ScalarCost = Scalar;
    VectorCost = Vector;
    return *this;
  }
  Remark &withAPO(std::string Family, unsigned Trunk, std::string Slots) {
    HasAPO = true;
    APOFamily = std::move(Family);
    TrunkSize = Trunk;
    APOSlots = std::move(Slots);
    return *this;
  }
  Remark &withMessage(std::string M) {
    Message = std::move(M);
    return *this;
  }
  Remark &withValues(std::vector<std::string> V) {
    Values = std::move(V);
    return *this;
  }
  /// @}

private:
  static Remark make(RemarkKind K, std::string Pass, std::string Name,
                     std::string FunctionName) {
    Remark R;
    R.Kind = K;
    R.Pass = std::move(Pass);
    R.Name = std::move(Name);
    R.FunctionName = std::move(FunctionName);
    return R;
  }
};

/// An ordered sink of remarks. Passed by pointer through the pass manager
/// and the vectorizer; a null collector disables emission.
///
/// Mutations are internally synchronized so one collector can be shared as
/// the sink of several concurrent compile jobs (the thread-pool pipeline of
/// src/service). The zero-copy accessor remarks() still hands out a
/// reference into guarded state: it is only safe once every producer has
/// quiesced (the single-threaded pattern all existing callers follow);
/// concurrent readers should use take() or snapshot().
class RemarkCollector {
public:
  RemarkCollector() = default;
  RemarkCollector(const RemarkCollector &) = delete;
  RemarkCollector &operator=(const RemarkCollector &) = delete;

  void add(Remark R) {
    std::lock_guard<std::mutex> Lock(Mu);
    Remarks.push_back(std::move(R));
  }

  /// Unsynchronized view; requires all producers to have quiesced.
  const std::vector<Remark> &remarks() const { return Remarks; }

  bool empty() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Remarks.empty();
  }
  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Remarks.size();
  }
  void clear() {
    std::lock_guard<std::mutex> Lock(Mu);
    Remarks.clear();
  }

  /// Copies the collected remarks (safe against concurrent producers).
  std::vector<Remark> snapshot() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Remarks;
  }

  /// Moves the collected remarks out, leaving the collector empty.
  std::vector<Remark> take() {
    std::lock_guard<std::mutex> Lock(Mu);
    std::vector<Remark> Out = std::move(Remarks);
    Remarks.clear();
    return Out;
  }

private:
  mutable std::mutex Mu;
  std::vector<Remark> Remarks;
};

/// \name Serialization.
/// @{

/// Writes \p R as one YAML document (`--- !kind` ... `...`).
void printRemarkYAML(const Remark &R, std::ostream &OS);

/// Writes \p R as one JSON object (no trailing newline).
void printRemarkJSON(const Remark &R, std::ostream &OS);

/// Renders a remark stream as a YAML document stream.
std::string renderRemarksYAML(const std::vector<Remark> &Remarks);

/// Renders a remark stream as a JSON array.
std::string renderRemarksJSON(const std::vector<Remark> &Remarks);

/// One-line human-readable rendering (irtool --remarks=text).
std::string renderRemarkText(const Remark &R);

/// Parses a stream produced by renderRemarksYAML, replacing the contents
/// of \p Out. Returns false and fills \p Err (when non-null) on malformed
/// input.
bool parseRemarksYAML(const std::string &Text, std::vector<Remark> &Out,
                      std::string *Err = nullptr);

/// Parses a stream produced by renderRemarksJSON (a JSON array of remark
/// objects), replacing the contents of \p Out. Returns false and fills
/// \p Err on malformed input.
bool parseRemarksJSON(const std::string &Text, std::vector<Remark> &Out,
                      std::string *Err = nullptr);

/// @}

} // namespace snslp

#endif // SNSLP_SUPPORT_REMARK_H
