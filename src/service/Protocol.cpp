//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "ir/Function.h"
#include "ir/Type.h"
#include "support/Hashing.h"

#include <cerrno>
#include <cstring>
#include <iomanip>
#include <poll.h>
#include <sstream>
#include <unistd.h>

using namespace snslp;
using namespace snslp::service;

//===----------------------------------------------------------------------===//
// Small parsing/formatting helpers
//===----------------------------------------------------------------------===//

namespace {

/// Strict unsigned decimal parse: the whole string must be digits.
bool parseUint(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.size() > 20)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

/// Strict signed decimal parse.
bool parseInt(const std::string &S, int64_t &Out) {
  if (S.empty())
    return false;
  bool Neg = S[0] == '-';
  uint64_t Mag = 0;
  if (!parseUint(Neg ? S.substr(1) : S, Mag))
    return false;
  Out = Neg ? -static_cast<int64_t>(Mag) : static_cast<int64_t>(Mag);
  return true;
}

bool parseBool(const std::string &S, bool &Out) {
  if (S == "0") {
    Out = false;
    return true;
  }
  if (S == "1") {
    Out = true;
    return true;
  }
  return false;
}

bool parseDouble(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  double V = std::strtod(S.c_str(), &End);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

std::string formatDouble(double V) {
  std::ostringstream OS;
  OS << std::setprecision(17) << V;
  return OS.str();
}

/// Header text values live one per line; strip anything that would corrupt
/// the framing (interpreter diagnostics are single-line today, but the
/// protocol must not depend on that).
std::string sanitizeHeaderValue(std::string S) {
  for (char &C : S)
    if (C == '\n' || C == '\r')
      C = ' ';
  return S;
}

/// Splits a header block into "key: value" lines with 1-based positions.
/// The shared scaffolding of decodeRequest/decodeResponse: both formats
/// are (version line, headers, byte-counted body).
class HeaderScanner {
public:
  HeaderScanner(const std::string &Payload, std::string *Err)
      : Payload(Payload), Err(Err) {}

  /// Consumes one "\n"-terminated line. False at end-of-headers error.
  bool nextLine(std::string &Line) {
    size_t NL = Payload.find('\n', Pos);
    if (NL == std::string::npos)
      return fail("truncated payload (missing newline)");
    Line = Payload.substr(Pos, NL - Pos);
    Pos = NL + 1;
    ++LineNo;
    return true;
  }

  /// Splits \p Line at ": ". False (with a positioned error) otherwise.
  bool splitHeader(const std::string &Line, std::string &Key,
                   std::string &Value) {
    size_t Colon = Line.find(": ");
    if (Colon == std::string::npos || Colon == 0)
      return fail("malformed header line '" + Line + "'");
    Key = Line.substr(0, Colon);
    Value = Line.substr(Colon + 2);
    return true;
  }

  /// After the byte-counted header: expects one blank line, then exactly
  /// \p Bytes payload bytes, then end of input.
  bool takeBody(uint64_t Bytes, std::string &Body) {
    std::string Blank;
    if (!nextLine(Blank))
      return false;
    if (!Blank.empty())
      return fail("expected blank separator line before the body");
    if (Payload.size() - Pos != Bytes)
      return fail("body length mismatch (header says " +
                  std::to_string(Bytes) + ", payload carries " +
                  std::to_string(Payload.size() - Pos) + ")");
    Body = Payload.substr(Pos, Bytes);
    Pos = Payload.size();
    return true;
  }

  bool fail(const std::string &Msg) {
    if (Err)
      *Err = "line " + std::to_string(LineNo + 1) + ": " + Msg;
    return false;
  }

  /// Positioned error for the line most recently consumed by nextLine.
  bool failHere(const std::string &Msg) {
    if (Err)
      *Err = "line " + std::to_string(LineNo) + ": " + Msg;
    return false;
  }

private:
  const std::string &Payload;
  std::string *Err;
  size_t Pos = 0;
  int LineNo = 0;
};

/// splitmix64: the deterministic stream behind synthesized buffer data.
uint64_t splitmix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

} // namespace

//===----------------------------------------------------------------------===//
// Request encoding
//===----------------------------------------------------------------------===//

namespace snslp {
namespace service {

bool parseModeName(const std::string &Name, VectorizerMode &Mode) {
  static const VectorizerMode All[] = {VectorizerMode::O3, VectorizerMode::SLP,
                                       VectorizerMode::LSLP,
                                       VectorizerMode::SNSLP,
                                       VectorizerMode::GoSLP};
  for (VectorizerMode M : All) {
    if (Name == getModeName(M)) {
      Mode = M;
      return true;
    }
  }
  if (Name == "SNSLP") { // Hyphen-less alias for "SN-SLP".
    Mode = VectorizerMode::SNSLP;
    return true;
  }
  return false;
}

std::string encodeRequest(const ServiceRequest &Req) {
  std::ostringstream OS;
  OS << "snslp-request v1\n";
  OS << "mode: " << getModeName(Req.Mode) << "\n";
  if (!Req.Entry.empty())
    OS << "entry: " << sanitizeHeaderValue(Req.Entry) << "\n";
  if (Req.Run)
    OS << "run: 1\n";
  if (Req.StatsOnly)
    OS << "stats: 1\n";
  if (!Req.WantBody)
    OS << "want-body: 0\n";
  if (Req.Elems != 16)
    OS << "elems: " << Req.Elems << "\n";
  if (Req.DataSeed != 1)
    OS << "data-seed: " << Req.DataSeed << "\n";
  if (Req.MaxSteps != (1ull << 24))
    OS << "max-steps: " << Req.MaxSteps << "\n";
  if (Req.StrictBudgets)
    OS << "strict-budgets: 1\n";
  if (Req.DeadlineMillis)
    OS << "deadline-ms: " << Req.DeadlineMillis << "\n";
  if (Req.Budgets.MaxGraphNodes)
    OS << "max-graph-nodes: " << Req.Budgets.MaxGraphNodes << "\n";
  if (Req.Budgets.MaxLookAheadEvals)
    OS << "max-lookahead-evals: " << Req.Budgets.MaxLookAheadEvals << "\n";
  if (Req.Budgets.MaxSuperNodePermutations)
    OS << "max-supernode-permutations: "
       << Req.Budgets.MaxSuperNodePermutations << "\n";
  OS << "module: " << Req.ModuleText.size() << "\n\n" << Req.ModuleText;
  return OS.str();
}

bool decodeRequest(const std::string &Payload, ServiceRequest &Req,
                   std::string *Err) {
  HeaderScanner S(Payload, Err);
  std::string Line;
  if (!S.nextLine(Line))
    return false;
  if (Line != "snslp-request v1")
    return S.failHere("expected 'snslp-request v1', got '" + Line + "'");

  ServiceRequest Out;
  bool SawModule = false;
  while (!SawModule) {
    if (!S.nextLine(Line))
      return false;
    std::string Key, Value;
    if (!S.splitHeader(Line, Key, Value))
      return false;

    if (Key == "mode") {
      if (!parseModeName(Value, Out.Mode))
        return S.failHere("unknown mode '" + Value +
                          "' (expected O3|SLP|LSLP|SN-SLP|GoSLP)");
    } else if (Key == "entry") {
      Out.Entry = Value;
    } else if (Key == "run") {
      if (!parseBool(Value, Out.Run))
        return S.failHere("run: expected 0 or 1");
    } else if (Key == "stats") {
      if (!parseBool(Value, Out.StatsOnly))
        return S.failHere("stats: expected 0 or 1");
    } else if (Key == "want-body") {
      if (!parseBool(Value, Out.WantBody))
        return S.failHere("want-body: expected 0 or 1");
    } else if (Key == "elems") {
      if (!parseUint(Value, Out.Elems) || Out.Elems == 0 ||
          Out.Elems > (1u << 20))
        return S.failHere("elems: expected an integer in [1, 2^20]");
    } else if (Key == "data-seed") {
      if (!parseUint(Value, Out.DataSeed))
        return S.failHere("data-seed: expected an unsigned integer");
    } else if (Key == "max-steps") {
      if (!parseUint(Value, Out.MaxSteps) || Out.MaxSteps == 0)
        return S.failHere("max-steps: expected a positive integer");
    } else if (Key == "strict-budgets") {
      if (!parseBool(Value, Out.StrictBudgets))
        return S.failHere("strict-budgets: expected 0 or 1");
    } else if (Key == "deadline-ms") {
      if (!parseUint(Value, Out.DeadlineMillis))
        return S.failHere("deadline-ms: expected an unsigned integer");
    } else if (Key == "max-graph-nodes") {
      if (!parseUint(Value, Out.Budgets.MaxGraphNodes))
        return S.failHere("max-graph-nodes: expected an unsigned integer");
    } else if (Key == "max-lookahead-evals") {
      if (!parseUint(Value, Out.Budgets.MaxLookAheadEvals))
        return S.failHere("max-lookahead-evals: expected an unsigned "
                          "integer");
    } else if (Key == "max-supernode-permutations") {
      if (!parseUint(Value, Out.Budgets.MaxSuperNodePermutations))
        return S.failHere("max-supernode-permutations: expected an "
                          "unsigned integer");
    } else if (Key == "module") {
      uint64_t Bytes = 0;
      if (!parseUint(Value, Bytes) || Bytes > kMaxFrameBytes)
        return S.failHere("module: expected a byte count within the frame "
                          "limit");
      if (!S.takeBody(Bytes, Out.ModuleText))
        return false;
      SawModule = true;
    } else {
      return S.failHere("unknown header key '" + Key + "'");
    }
  }
  Req = std::move(Out);
  return true;
}

//===----------------------------------------------------------------------===//
// Response encoding
//===----------------------------------------------------------------------===//

std::string encodeResponse(const ServiceResponse &Resp) {
  std::ostringstream OS;
  OS << "snslp-response v1\n";
  OS << "status: " << (Resp.Ok ? "ok" : "error") << "\n";
  if (!Resp.Ok) {
    OS << "error-code: "
       << (Resp.ErrorCodeName.empty() ? "invalid-argument"
                                      : Resp.ErrorCodeName)
       << "\n";
    OS << "retryable: " << (Resp.Retryable ? 1 : 0) << "\n";
  } else {
    if (!Resp.Cache.empty())
      OS << "cache: " << Resp.Cache << "\n";
    if (!Resp.KeyHex.empty())
      OS << "key: " << Resp.KeyHex << "\n";
    OS << "graphs-vectorized: " << Resp.GraphsVectorized << "\n";
    OS << "remarks: " << Resp.RemarkCount << "\n";
    if (Resp.DidRun) {
      OS << "did-run: 1\n";
      OS << "run-ok: " << (Resp.RunOk ? 1 : 0) << "\n";
      if (Resp.HasReturnInt)
        OS << "return-int: " << Resp.ReturnInt << "\n";
      if (Resp.HasReturnFP)
        OS << "return-fp: " << formatDouble(Resp.ReturnFP) << "\n";
      OS << "steps: " << Resp.Steps << "\n";
      OS << "cycles: " << formatDouble(Resp.Cycles) << "\n";
      if (!Resp.MemHashHex.empty())
        OS << "mem-hash: " << Resp.MemHashHex << "\n";
      if (!Resp.RunError.empty())
        OS << "run-error: " << sanitizeHeaderValue(Resp.RunError) << "\n";
    }
  }
  OS << "body: " << Resp.Body.size() << "\n\n" << Resp.Body;
  return OS.str();
}

bool decodeResponse(const std::string &Payload, ServiceResponse &Resp,
                    std::string *Err) {
  HeaderScanner S(Payload, Err);
  std::string Line;
  if (!S.nextLine(Line))
    return false;
  if (Line != "snslp-response v1")
    return S.failHere("expected 'snslp-response v1', got '" + Line + "'");

  ServiceResponse Out;
  bool SawStatus = false, SawBody = false;
  while (!SawBody) {
    if (!S.nextLine(Line))
      return false;
    std::string Key, Value;
    if (!S.splitHeader(Line, Key, Value))
      return false;

    if (Key == "status") {
      if (Value == "ok")
        Out.Ok = true;
      else if (Value == "error")
        Out.Ok = false;
      else
        return S.failHere("status: expected ok|error");
      SawStatus = true;
    } else if (Key == "error-code") {
      Out.ErrorCodeName = Value;
    } else if (Key == "retryable") {
      if (!parseBool(Value, Out.Retryable))
        return S.failHere("retryable: expected 0 or 1");
    } else if (Key == "cache") {
      if (Value != "hit" && Value != "miss" && Value != "coalesced" &&
          Value != "disk")
        return S.failHere("cache: expected hit|miss|coalesced|disk");
      Out.Cache = Value;
    } else if (Key == "key") {
      Out.KeyHex = Value;
    } else if (Key == "graphs-vectorized") {
      if (!parseUint(Value, Out.GraphsVectorized))
        return S.failHere("graphs-vectorized: expected an unsigned integer");
    } else if (Key == "remarks") {
      if (!parseUint(Value, Out.RemarkCount))
        return S.failHere("remarks: expected an unsigned integer");
    } else if (Key == "did-run") {
      if (!parseBool(Value, Out.DidRun))
        return S.failHere("did-run: expected 0 or 1");
    } else if (Key == "run-ok") {
      if (!parseBool(Value, Out.RunOk))
        return S.failHere("run-ok: expected 0 or 1");
    } else if (Key == "return-int") {
      if (!parseInt(Value, Out.ReturnInt))
        return S.failHere("return-int: expected an integer");
      Out.HasReturnInt = true;
    } else if (Key == "return-fp") {
      if (!parseDouble(Value, Out.ReturnFP))
        return S.failHere("return-fp: expected a floating-point literal");
      Out.HasReturnFP = true;
    } else if (Key == "steps") {
      if (!parseUint(Value, Out.Steps))
        return S.failHere("steps: expected an unsigned integer");
    } else if (Key == "cycles") {
      if (!parseDouble(Value, Out.Cycles))
        return S.failHere("cycles: expected a floating-point literal");
    } else if (Key == "mem-hash") {
      Out.MemHashHex = Value;
    } else if (Key == "run-error") {
      Out.RunError = Value;
    } else if (Key == "body") {
      uint64_t Bytes = 0;
      if (!parseUint(Value, Bytes) || Bytes > kMaxFrameBytes)
        return S.failHere("body: expected a byte count within the frame "
                          "limit");
      if (!S.takeBody(Bytes, Out.Body))
        return false;
      SawBody = true;
    } else {
      return S.failHere("unknown header key '" + Key + "'");
    }
  }
  if (!SawStatus)
    return S.fail("missing status header");
  Resp = std::move(Out);
  return true;
}

//===----------------------------------------------------------------------===//
// Frame I/O
//===----------------------------------------------------------------------===//

static constexpr char kMagic[4] = {'S', 'N', 'S', '1'};

namespace {

/// Blocks (via poll) until \p Fd is ready for \p Events. Only reached on
/// EAGAIN/EWOULDBLOCK, i.e. when the fd is non-blocking; blocking fds
/// never get here. Infinite timeout: frame I/O has no deadline of its own.
bool waitReady(int Fd, short Events, std::string *Err) {
  struct pollfd P;
  P.fd = Fd;
  P.events = Events;
  P.revents = 0;
  for (;;) {
    int R = ::poll(&P, 1, /*timeout=*/-1);
    if (R > 0)
      return true;
    if (R < 0 && errno == EINTR)
      continue;
    if (Err)
      *Err = std::string("poll: ") + std::strerror(errno);
    return false;
  }
}

/// Writes exactly \p Size bytes, looping over short writes (a frame
/// larger than the socket send buffer takes several write(2) calls),
/// EINTR, and — on non-blocking fds — EAGAIN.
bool writeAll(int Fd, const void *Data, size_t Size, std::string *Err) {
  const char *P = static_cast<const char *>(Data);
  while (Size > 0) {
    ssize_t N = ::write(Fd, P, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!waitReady(Fd, POLLOUT, Err))
          return false;
        continue;
      }
      if (Err)
        *Err = std::string("write: ") + std::strerror(errno);
      return false;
    }
    P += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

/// Reads exactly \p Size bytes, looping over short reads, EINTR, and
/// EAGAIN. \p SawAny reports whether any byte arrived, so the caller can
/// tell clean EOF from a truncated frame.
bool readAll(int Fd, void *Data, size_t Size, bool &SawAny,
             std::string *Err) {
  char *P = static_cast<char *>(Data);
  while (Size > 0) {
    ssize_t N = ::read(Fd, P, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!waitReady(Fd, POLLIN, Err))
          return false;
        continue;
      }
      if (Err)
        *Err = std::string("read: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      if (SawAny && Err)
        *Err = "connection closed mid-frame";
      return false;
    }
    SawAny = true;
    P += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace

bool writeFrame(int Fd, const std::string &Payload, std::string *Err) {
  if (Payload.size() > kMaxFrameBytes) {
    if (Err)
      *Err = "frame payload exceeds the " +
             std::to_string(kMaxFrameBytes) + "-byte limit";
    return false;
  }
  char Header[8];
  std::memcpy(Header, kMagic, 4);
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  Header[4] = static_cast<char>(Len & 0xff);
  Header[5] = static_cast<char>((Len >> 8) & 0xff);
  Header[6] = static_cast<char>((Len >> 16) & 0xff);
  Header[7] = static_cast<char>((Len >> 24) & 0xff);
  return writeAll(Fd, Header, sizeof(Header), Err) &&
         writeAll(Fd, Payload.data(), Payload.size(), Err);
}

bool readFrame(int Fd, std::string &Payload, std::string *Err) {
  if (Err)
    Err->clear(); // Clean EOF leaves *Err empty.
  unsigned char Header[8];
  bool SawAny = false;
  if (!readAll(Fd, Header, sizeof(Header), SawAny, Err))
    return false;
  if (std::memcmp(Header, kMagic, 4) != 0) {
    if (Err)
      *Err = "bad frame magic (expected \"SNS1\")";
    return false;
  }
  uint32_t Len = static_cast<uint32_t>(Header[4]) |
                 (static_cast<uint32_t>(Header[5]) << 8) |
                 (static_cast<uint32_t>(Header[6]) << 16) |
                 (static_cast<uint32_t>(Header[7]) << 24);
  if (Len > kMaxFrameBytes) {
    if (Err)
      *Err = "frame length " + std::to_string(Len) + " exceeds the " +
             std::to_string(kMaxFrameBytes) + "-byte limit";
    return false;
  }
  Payload.resize(Len);
  if (Len > 0 && !readAll(Fd, Payload.data(), Len, SawAny, Err))
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// serveRequest
//===----------------------------------------------------------------------===//

namespace {

ServiceResponse errorResponse(ErrorCode Code, std::string Msg) {
  ServiceResponse Resp;
  Resp.Ok = false;
  Resp.ErrorCodeName = getErrorCodeName(Code);
  Resp.Retryable = isRetryableErrorCode(Code);
  Resp.Body = std::move(Msg);
  return Resp;
}

} // namespace

CompileRequest toCompileRequest(const ServiceRequest &Req) {
  CompileRequest CReq;
  CReq.ModuleText = Req.ModuleText;
  CReq.EntryFunction = Req.Entry;
  CReq.Config.Mode = Req.Mode;
  CReq.Config.Budgets = Req.Budgets;
  CReq.StrictBudgets = Req.StrictBudgets;
  CReq.DeadlineMillis = Req.DeadlineMillis;
  return CReq;
}

ServiceResponse serveRequest(CompileService &Service,
                             const ServiceRequest &Req) {
  Expected<CompiledUnit> U = Service.compileSync(toCompileRequest(Req));
  return buildResponse(U, Req);
}

ServiceResponse buildResponse(Expected<CompiledUnit> &U,
                              const ServiceRequest &Req) {
  if (!U)
    return errorResponse(U.errorCode(), U.errorMessage());

  const CompiledProgram &P = *U->Program;
  ServiceResponse Resp;
  Resp.Ok = true;
  Resp.Cache = U->DiskHit
                   ? "disk"
                   : (U->Coalesced ? "coalesced"
                                   : (U->CacheHit ? "hit" : "miss"));
  Resp.KeyHex = P.digest().toHex();
  Resp.GraphsVectorized = P.stats().GraphsVectorized;
  Resp.RemarkCount = P.remarks().size();
  if (Req.WantBody)
    Resp.Body = P.vectorizedText();
  if (!Req.Run)
    return Resp;

  // Deterministic argument synthesis: the signature must be N leading
  // pointer arguments (each gets a fresh 8*Elems-byte buffer filled from
  // DataSeed) optionally followed by one trailing integer argument (which
  // receives Elems, the per-buffer element count for 8-byte elements).
  const Function *Entry = P.entryFunction();
  unsigned NumPtrs = 0;
  bool HasTrailingInt = false;
  for (unsigned I = 0; I < Entry->getNumArgs(); ++I) {
    Type *Ty = Entry->getArg(I)->getType();
    if (Ty->isPointer() && !HasTrailingInt && I == NumPtrs) {
      ++NumPtrs;
    } else if (Ty->isInteger() && !HasTrailingInt &&
               I + 1 == Entry->getNumArgs()) {
      HasTrailingInt = true;
    } else {
      return errorResponse(
          ErrorCode::InvalidArgument,
          "entry '@" + P.entryName() +
              "': run requires a signature of leading pointer arguments "
              "plus at most one trailing integer argument");
    }
  }

  // One 64-bit cell per element, values in [1, 256] (small, nonzero, and
  // benign under every element interpretation the kernels use).
  uint64_t Rng = Req.DataSeed;
  std::vector<std::vector<uint64_t>> Buffers(NumPtrs);
  for (auto &B : Buffers) {
    B.resize(Req.Elems);
    for (uint64_t &Cell : B)
      Cell = 1 + (splitmix64(Rng) & 0xff);
  }

  CompiledProgram::RunRequest RR;
  RR.MaxSteps = Req.MaxSteps;
  for (auto &B : Buffers) {
    RR.Args.push_back(argPointer(B.data()));
    RR.MemoryRanges.emplace_back(B.data(), B.size() * sizeof(uint64_t));
  }
  if (HasTrailingInt)
    RR.Args.push_back(argInt64(static_cast<int64_t>(Req.Elems)));

  ExecutionResult Res = P.run(RR);
  Resp.DidRun = true;
  Resp.RunOk = Res.Ok;
  Resp.Steps = Res.StepsExecuted;
  Resp.Cycles = Res.Cycles;
  if (!Res.Ok) {
    Resp.RunError = Res.Error;
    return Resp;
  }

  Type *RetTy = Entry->getReturnType();
  if (!RetTy->isVoid()) {
    if (RetTy->isFloatingPoint()) {
      Resp.HasReturnFP = true;
      Resp.ReturnFP = Res.ReturnValue.getFP();
    } else {
      Resp.HasReturnInt = true;
      Resp.ReturnInt = Res.ReturnValue.getInt();
    }
  }

  // Post-run memory fingerprint: FNV-64 chained over every buffer in
  // argument order. Bit-identical across cold/warm/coalesced serving of
  // the same (module, config, seed) request — the wire-level analogue of
  // the cache differential test.
  uint64_t Hash = fnv1a64("snslp-mem", 9);
  for (const auto &B : Buffers)
    Hash = fnv1a64(B.data(), B.size() * sizeof(uint64_t), Hash);
  std::ostringstream HashOS;
  HashOS << std::hex << std::setw(16) << std::setfill('0') << Hash;
  Resp.MemHashHex = HashOS.str();
  return Resp;
}

} // namespace service
} // namespace snslp
