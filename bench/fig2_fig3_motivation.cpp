//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figures 2 and 3: the motivating examples. Builds the SLP graph of each
/// example under SLP, LSLP and SN-SLP, printing the graphs and the total
/// costs the paper reports (Fig. 2: 0 vs -6; Fig. 3: +4 vs -6).
///
//===----------------------------------------------------------------------===//

#include "driver/KernelRunner.h"
#include "ir/IRPrinter.h"
#include "slp/GraphBuilder.h"
#include "support/TextTable.h"

#include <iostream>

using namespace snslp;

/// Builds and prints the graph of the kernel's single seed group.
static int buildAndPrintGraph(KernelRunner &Runner, const Kernel &K,
                              VectorizerMode Mode, bool PrintGraph) {
  // Compile with O3 (no transformation), then grow the graph on a fresh
  // clone so each mode sees the pristine code.
  CompiledKernel CK = Runner.compile(K, VectorizerMode::O3);
  VectorizerConfig Cfg;
  Cfg.Mode = Mode;
  TargetCostModel TCM(Cfg.Target);

  BasicBlock *Loop = CK.F->getBlockByName("loop");
  std::vector<SeedGroup> Seeds = collectStoreSeeds(
      *Loop, Cfg.MinVF, Cfg.MaxVF, Cfg.Target.MaxVectorWidthBytes);
  if (Seeds.empty()) {
    std::cout << "  (no seeds found)\n";
    return 0;
  }
  GraphBuilder GB(Cfg, TCM);
  std::unique_ptr<SLPGraph> Graph = GB.build(Seeds.front());
  if (PrintGraph)
    Graph->print(std::cout);
  return Graph->getTotalCost();
}

int main() {
  KernelRunner Runner;

  struct Example {
    const char *Kernel;
    const char *Figure;
    int PaperSLPCost;
    int PaperSNCost;
  };
  const Example Examples[] = {
      {"motiv1", "Fig. 2 (reordering the leaf nodes)", 0, -6},
      {"motiv2", "Fig. 3 (swapping trunk nodes and leaves)", 4, -6},
  };

  for (const Example &Ex : Examples) {
    const Kernel *K = findKernel(Ex.Kernel);
    std::cout << "=== " << Ex.Figure << " — kernel '" << K->Name
              << "' ===\n\n";
    std::cout << "Source (IR):\n" << K->IRText << "\n";

    TextTable Table;
    Table.setHeader({"configuration", "graph cost", "paper"});
    for (VectorizerMode Mode : {VectorizerMode::SLP, VectorizerMode::LSLP,
                                VectorizerMode::SNSLP}) {
      bool IsSN = Mode == VectorizerMode::SNSLP;
      std::cout << "--- SLP graph under " << getModeName(Mode) << " ---\n";
      int Cost = buildAndPrintGraph(Runner, *K, Mode, /*PrintGraph=*/true);
      std::cout << '\n';
      Table.addRow({getModeName(Mode), std::to_string(Cost),
                    std::to_string(IsSN ? Ex.PaperSNCost
                                        : Ex.PaperSLPCost)});
    }
    Table.print(std::cout);
    std::cout << "\nCost < 0 means profitable to vectorize.\n\n";
  }
  return 0;
}
