//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized tests over the whole kernel suite (the Table I stand-in):
/// every kernel under every vectorizer configuration must verify, match
/// its C++ reference on multiple seeds, and behave according to its
/// documented expectation (SN-SLP wins / all tie / none vectorize).
///
//===----------------------------------------------------------------------===//

#include "driver/KernelRunner.h"
#include "kernels/Programs.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace snslp;

namespace {

struct KernelModeCase {
  std::string KernelName;
  VectorizerMode Mode;
};

std::vector<KernelModeCase> allKernelModeCases() {
  std::vector<KernelModeCase> Cases;
  for (const Kernel &K : kernelRegistry())
    for (VectorizerMode Mode :
         {VectorizerMode::O3, VectorizerMode::SLP, VectorizerMode::LSLP,
          VectorizerMode::SNSLP, VectorizerMode::GoSLP})
      Cases.push_back(KernelModeCase{K.Name, Mode});
  return Cases;
}

std::string caseName(const ::testing::TestParamInfo<KernelModeCase> &Info) {
  std::string Name =
      Info.param.KernelName + "_" + getModeName(Info.param.Mode);
  for (char &C : Name)
    if (C == '-' || C == '.')
      C = '_';
  return Name;
}

class KernelModeTest : public ::testing::TestWithParam<KernelModeCase> {};

/// Property: under every configuration, every kernel computes exactly what
/// its C++ reference computes (bitwise for integers, tolerance for
/// reassociated floating point), across several input seeds.
TEST_P(KernelModeTest, MatchesReference) {
  const KernelModeCase &Case = GetParam();
  const Kernel *K = findKernel(Case.KernelName);
  ASSERT_NE(K, nullptr);

  KernelRunner Runner;
  CompiledKernel CK = Runner.compile(*K, Case.Mode);
  for (uint64_t Seed : {1ull, 17ull, 987654321ull}) {
    std::string Message;
    EXPECT_TRUE(Runner.check(CK, Seed, &Message))
        << K->Name << " under " << getModeName(Case.Mode) << " seed "
        << Seed << ": " << Message;
  }
}

/// Differential property: for every kernel under every configuration, the
/// predecoded bytecode engine and the reference tree-walking interpreter
/// are observationally identical — bit-for-bit equal memory (every buffer,
/// not just outputs), bitwise-equal return values, and the same dynamic
/// step/vector/cycle accounting. This is the oracle that licenses the
/// bytecode engine as the default execution path.
TEST_P(KernelModeTest, BytecodeMatchesReferenceBitExact) {
  const KernelModeCase &Case = GetParam();
  const Kernel *K = findKernel(Case.KernelName);
  ASSERT_NE(K, nullptr);

  KernelRunner Runner;
  CompiledKernel CK = Runner.compile(*K, Case.Mode);
  TargetCostModel TCM;
  ExecutionEngine Engine(*CK.F, [&TCM](const Instruction &I) {
    return TCM.executionCycles(I);
  });

  for (uint64_t Seed : {2ull, 77ull}) {
    // Two identically-seeded data sets: one per engine.
    KernelData ByteData(K->Buffers, K->N, Seed);
    KernelData RefData(K->Buffers, K->N, Seed);
    ASSERT_EQ(ByteData.getNumBuffers(), RefData.getNumBuffers());

    auto Execute = [&](KernelData &Data, bool Reference) {
      Engine.clearMemoryRanges();
      std::vector<RTValue> Args;
      for (size_t I = 0; I < Data.getNumBuffers(); ++I) {
        Args.push_back(argPointer(Data.getPointer(I)));
        Engine.addMemoryRange(Data.getPointer(I), Data.getByteSize(I));
      }
      Args.push_back(argInt64(static_cast<int64_t>(Data.getN())));
      return Reference ? Engine.runReference(Args) : Engine.run(Args);
    };

    ExecutionResult ByteR = Execute(ByteData, /*Reference=*/false);
    ExecutionResult RefR = Execute(RefData, /*Reference=*/true);
    ASSERT_TRUE(ByteR.Ok) << ByteR.Error;
    ASSERT_TRUE(RefR.Ok) << RefR.Error;

    // Same dynamic accounting: the bytecode engine must not silently
    // execute a different instruction mix than the IR it predecodes.
    EXPECT_EQ(ByteR.StepsExecuted, RefR.StepsExecuted);
    EXPECT_EQ(ByteR.VectorSteps, RefR.VectorSteps);
    EXPECT_DOUBLE_EQ(ByteR.Cycles, RefR.Cycles);
    EXPECT_TRUE(ByteR.ReturnValue.bitwiseEquals(RefR.ReturnValue));

    // Every buffer byte-identical — stricter than outputsMatch's RelTol.
    for (size_t I = 0; I < ByteData.getNumBuffers(); ++I) {
      ASSERT_EQ(ByteData.getByteSize(I), RefData.getByteSize(I));
      EXPECT_EQ(std::memcmp(ByteData.getPointer(I), RefData.getPointer(I),
                            ByteData.getByteSize(I)),
                0)
          << K->Name << " under " << getModeName(Case.Mode) << " seed "
          << Seed << ": buffer " << K->Buffers[I].Name
          << " differs between bytecode and reference engines";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelModeTest,
                         ::testing::ValuesIn(allKernelModeCases()),
                         caseName);

class KernelExpectationTest
    : public ::testing::TestWithParam<std::string> {};

/// Checks the documented Fig. 5 shape for each kernel: who vectorizes, and
/// that SN-SLP's simulated cycles beat LSLP exactly on the SNWins kernels.
TEST_P(KernelExpectationTest, ExpectationHolds) {
  const Kernel *K = findKernel(GetParam());
  ASSERT_NE(K, nullptr);

  KernelRunner Runner;
  CompiledKernel O3 = Runner.compile(*K, VectorizerMode::O3);
  CompiledKernel SLP = Runner.compile(*K, VectorizerMode::SLP);
  CompiledKernel LSLP = Runner.compile(*K, VectorizerMode::LSLP);
  CompiledKernel SN = Runner.compile(*K, VectorizerMode::SNSLP);

  auto Cycles = [&Runner, K](const CompiledKernel &CK) {
    KernelData Data(K->Buffers, K->N, /*Seed=*/3);
    ExecutionResult R = Runner.execute(CK, Data);
    EXPECT_TRUE(R.Ok) << R.Error;
    return R.Cycles;
  };
  double O3Cycles = Cycles(O3);
  double SLPCycles = Cycles(SLP);
  double LSLPCycles = Cycles(LSLP);
  double SNCycles = Cycles(SN);

  switch (K->Expectation) {
  case KernelExpectation::SNWins:
    EXPECT_EQ(SLP.Stats.GraphsVectorized, 0u) << "SLP should not vectorize";
    EXPECT_EQ(LSLP.Stats.GraphsVectorized, 0u) << "LSLP should not vectorize";
    EXPECT_GT(SN.Stats.GraphsVectorized, 0u) << "SN-SLP should vectorize";
    // Speedup over both O3 and LSLP, as in Fig. 5.
    EXPECT_LT(SNCycles, 0.9 * O3Cycles);
    EXPECT_LT(SNCycles, 0.9 * LSLPCycles);
    break;
  case KernelExpectation::MultiNodeWins:
    EXPECT_EQ(SLP.Stats.GraphsVectorized, 0u) << "SLP should not vectorize";
    EXPECT_GT(LSLP.Stats.GraphsVectorized, 0u) << "LSLP should vectorize";
    EXPECT_GT(SN.Stats.GraphsVectorized, 0u) << "SN-SLP should vectorize";
    EXPECT_DOUBLE_EQ(SNCycles, LSLPCycles);
    EXPECT_LT(LSLPCycles, 0.9 * O3Cycles);
    EXPECT_DOUBLE_EQ(SLPCycles, O3Cycles);
    break;
  case KernelExpectation::AllEqual:
    EXPECT_GT(SLP.Stats.GraphsVectorized, 0u);
    EXPECT_GT(LSLP.Stats.GraphsVectorized, 0u);
    EXPECT_GT(SN.Stats.GraphsVectorized, 0u);
    EXPECT_DOUBLE_EQ(SNCycles, SLPCycles);
    EXPECT_DOUBLE_EQ(SNCycles, LSLPCycles);
    EXPECT_LT(SNCycles, O3Cycles);
    break;
  case KernelExpectation::NoneWin:
    EXPECT_EQ(SLP.Stats.GraphsVectorized, 0u);
    EXPECT_EQ(LSLP.Stats.GraphsVectorized, 0u);
    EXPECT_EQ(SN.Stats.GraphsVectorized, 0u);
    EXPECT_DOUBLE_EQ(SNCycles, O3Cycles);
    break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelExpectationTest, [] {
      std::vector<std::string> Names;
      for (const Kernel &K : kernelRegistry())
        Names.push_back(K.Name);
      return ::testing::ValuesIn(Names);
    }(),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

TEST(KernelRegistryTest, RegistryIsWellFormed) {
  const std::vector<Kernel> &Ks = kernelRegistry();
  EXPECT_GE(Ks.size(), 10u);
  for (const Kernel &K : Ks) {
    EXPECT_FALSE(K.Name.empty());
    EXPECT_FALSE(K.Origin.empty());
    EXPECT_FALSE(K.Buffers.empty());
    EXPECT_TRUE(K.Reference != nullptr) << K.Name;
    EXPECT_EQ(K.N % 4, 0u) << K.Name << ": N must fit the unroll factor";
    EXPECT_EQ(findKernel(K.Name), &K);
  }
  EXPECT_EQ(findKernel("no_such_kernel"), nullptr);
}

TEST(KernelRegistryTest, ProgramsReferenceRealKernels) {
  for (const BenchmarkProgram &P : programRegistry()) {
    EXPECT_FALSE(P.Components.empty()) << P.Name;
    for (const ProgramComponent &C : P.Components) {
      EXPECT_NE(findKernel(C.KernelName), nullptr)
          << P.Name << " references unknown kernel " << C.KernelName;
      EXPECT_GT(C.Weight, 0.0);
    }
  }
}

/// The Super-Node statistics the node-size figures are built from.
TEST(KernelStatsTest, SNWinnersCommitSuperNodes) {
  KernelRunner Runner;
  for (const Kernel &K : kernelRegistry()) {
    CompiledKernel SN = Runner.compile(K, VectorizerMode::SNSLP);
    if (K.Expectation == KernelExpectation::SNWins ||
        K.Expectation == KernelExpectation::MultiNodeWins) {
      EXPECT_GT(SN.Stats.superNodesCommitted(), 0u) << K.Name;
      for (unsigned Size : SN.Stats.CommittedSuperNodeSizes)
        EXPECT_GE(Size, 2u) << K.Name << ": minimum legal node size is 2";
    } else {
      EXPECT_EQ(SN.Stats.superNodesCommitted(), 0u) << K.Name;
    }
    if (K.Expectation == KernelExpectation::MultiNodeWins) {
      CompiledKernel LSLP = Runner.compile(K, VectorizerMode::LSLP);
      EXPECT_GT(LSLP.Stats.superNodesCommitted(), 0u)
          << K.Name << ": LSLP should commit Multi-Nodes";
    }
  }
}

/// GoSLP acceptance (docs/goslp.md): exact global selection never commits
/// a worse total cost-model cost than greedy SN-SLP, on any registry
/// kernel. CommittedCost is a sum of negative (profitable) costs, so
/// "no worse" is <=. With the default budgets nothing in the suite blows
/// up, so no kernel may take the greedy-fallback ladder either.
TEST(KernelStatsTest, GoSLPCostNeverWorseThanGreedySNSLP) {
  KernelRunner Runner;
  for (const Kernel &K : kernelRegistry()) {
    CompiledKernel SN = Runner.compile(K, VectorizerMode::SNSLP);
    CompiledKernel Go = Runner.compile(K, VectorizerMode::GoSLP);
    EXPECT_LE(Go.Stats.CommittedCost, SN.Stats.CommittedCost) << K.Name;
    EXPECT_EQ(Go.Stats.GoSLPGreedyFallbacks, 0u) << K.Name;
    // The solver only ever commits packs it proved profitable, so a
    // kernel that vectorizes under greedy SN-SLP also does under GoSLP.
    if (SN.Stats.GraphsVectorized > 0)
      EXPECT_GT(Go.Stats.GraphsVectorized, 0u) << K.Name;
  }
}

} // namespace
