//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the concurrent compilation service
/// (src/service/CompileService.h): the synchronous and future-based entry
/// points, cache-hit/coalesce reporting, recoverable error codes
/// (parse-error / invalid-argument / budget-exhausted), per-request
/// strict-budget semantics on cached units, and execution of compiled
/// units on synthesized buffers.
///
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"
#include "support/FaultInjection.h"
#include "support/Statistic.h"

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

using namespace snslp;

namespace {

/// A 4-wide add/sub alternation (the paper's Super-Node shape), with a
/// per-variant constant so each variant has its own cache key.
std::string addsubModule(unsigned Variant = 0, const char *Name = "kern") {
  std::string N = std::to_string(Variant);
  std::string OS;
  OS += std::string("func @") + Name + "(ptr %a, ptr %b, ptr %c) {\n";
  OS += "entry:\n";
  for (int I = 0; I < 4; ++I) {
    std::string S = std::to_string(I);
    OS += "  %pa" + S + " = gep i64, ptr %a, i64 " + S + "\n";
    OS += "  %pb" + S + " = gep i64, ptr %b, i64 " + S + "\n";
    OS += "  %pc" + S + " = gep i64, ptr %c, i64 " + S + "\n";
    OS += "  %la" + S + " = load i64, ptr %pa" + S + "\n";
    OS += "  %lb" + S + " = load i64, ptr %pb" + S + "\n";
  }
  for (int I = 0; I < 4; ++I) {
    std::string S = std::to_string(I);
    const char *Op = (I % 2 == 0) ? "add" : "sub";
    OS += "  %t" + S + " = " + Op + " i64 %la" + S + ", %lb" + S + "\n";
    OS += "  %r" + S + " = add i64 %t" + S + ", " + N + "\n";
    OS += "  store i64 %r" + S + ", ptr %pc" + S + "\n";
  }
  OS += "  ret void\n}\n";
  return OS;
}

CompileRequest request(unsigned Variant = 0) {
  CompileRequest Req;
  Req.ModuleText = addsubModule(Variant);
  return Req;
}

TEST(CompileServiceTest, CompileSyncVectorizes) {
  CompileService Service;
  Expected<CompiledUnit> U = Service.compileSync(request());
  ASSERT_TRUE(static_cast<bool>(U));
  EXPECT_FALSE(U->CacheHit);
  EXPECT_FALSE(U->Coalesced);
  ASSERT_NE(U->Program, nullptr);
  EXPECT_GE(U->Program->stats().GraphsVectorized, 1u);
  EXPECT_NE(U->Program->vectorizedText().find("store <4 x i64>"),
            std::string::npos);
  EXPECT_FALSE(U->Program->remarks().empty());
  EXPECT_EQ(U->Program->entryName(), "kern");
}

TEST(CompileServiceTest, SecondRequestIsACacheHit) {
  CompileService Service;
  Expected<CompiledUnit> A = Service.compileSync(request());
  ASSERT_TRUE(static_cast<bool>(A));
  Expected<CompiledUnit> B = Service.compileSync(request());
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_TRUE(B->CacheHit);
  // The very same unit is shared, not recompiled.
  EXPECT_EQ(A->Program.get(), B->Program.get());
  EXPECT_EQ(Service.cache().counters().Hits, 1u);
  EXPECT_EQ(Service.cache().counters().Misses, 1u);
}

TEST(CompileServiceTest, ConfigChangesTheCacheKey) {
  CompileRequest A = request();
  CompileRequest B = request();
  B.Config.Mode = VectorizerMode::O3;
  EXPECT_FALSE(CompileService::requestKey(A) == CompileService::requestKey(B));
  // StrictBudgets is per-request, deliberately NOT part of the key.
  CompileRequest C = request();
  C.StrictBudgets = true;
  EXPECT_TRUE(CompileService::requestKey(A) == CompileService::requestKey(C));
}

TEST(CompileServiceTest, ParseErrorIsRecoverable) {
  CompileService Service;
  CompileRequest Req;
  Req.ModuleText = "this is not ir";
  Expected<CompiledUnit> U = Service.compileSync(Req);
  ASSERT_FALSE(static_cast<bool>(U));
  EXPECT_EQ(U.errorCode(), ErrorCode::ParseError);
  U.takeError().consume();
  // Failures are not cached; a valid module under a different key still
  // compiles.
  Expected<CompiledUnit> V = Service.compileSync(request());
  EXPECT_TRUE(static_cast<bool>(V));
}

TEST(CompileServiceTest, EmptyModuleIsAParseError) {
  CompileService Service;
  CompileRequest Req;
  Req.ModuleText = "; just a comment\n";
  Expected<CompiledUnit> U = Service.compileSync(Req);
  ASSERT_FALSE(static_cast<bool>(U));
  EXPECT_EQ(U.errorCode(), ErrorCode::ParseError);
  U.takeError().consume();
}

TEST(CompileServiceTest, AmbiguousEntryIsInvalidArgument) {
  CompileService Service;
  CompileRequest Req;
  Req.ModuleText = addsubModule(0, "f") + addsubModule(1, "g");
  Expected<CompiledUnit> U = Service.compileSync(Req);
  ASSERT_FALSE(static_cast<bool>(U));
  EXPECT_EQ(U.errorCode(), ErrorCode::InvalidArgument);
  U.takeError().consume();

  // Naming the entry resolves the ambiguity.
  Req.EntryFunction = "g";
  Expected<CompiledUnit> V = Service.compileSync(Req);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->Program->entryName(), "g");

  // Naming a function the module does not define fails.
  Req.EntryFunction = "nope";
  Expected<CompiledUnit> W = Service.compileSync(Req);
  ASSERT_FALSE(static_cast<bool>(W));
  EXPECT_EQ(W.errorCode(), ErrorCode::InvalidArgument);
  W.takeError().consume();
}

TEST(CompileServiceTest, StrictBudgetsFailsOnBailout) {
  CompileService Service;
  CompileRequest Req = request();
  Req.Config.Budgets.MaxGraphNodes = 1; // Guaranteed bailout.
  Req.StrictBudgets = true;
  Expected<CompiledUnit> U = Service.compileSync(Req);
  ASSERT_FALSE(static_cast<bool>(U));
  EXPECT_EQ(U.errorCode(), ErrorCode::BudgetExhausted);
  U.takeError().consume();

  // Non-strict: the scalar fallback is served (and was cached).
  CompileRequest Lax = request();
  Lax.Config.Budgets.MaxGraphNodes = 1;
  Expected<CompiledUnit> V = Service.compileSync(Lax);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_TRUE(V->CacheHit); // Strictness did not change the key.
  EXPECT_GE(V->Program->stats().BudgetBailouts, 1u);
  EXPECT_EQ(V->Program->stats().GraphsVectorized, 0u);

  // A strict request against the now-cached scalar fallback still fails:
  // strictness is a property of the request, not the unit.
  Expected<CompiledUnit> W = Service.compileSync(Req);
  ASSERT_FALSE(static_cast<bool>(W));
  EXPECT_EQ(W.errorCode(), ErrorCode::BudgetExhausted);
  W.takeError().consume();
}

TEST(CompileServiceTest, SubmitAllSettlesEveryFuture) {
  StatsRegistry Stats;
  ServiceConfig Cfg;
  Cfg.Workers = 2;
  Cfg.Stats = &Stats;
  CompileService Service(Cfg);

  std::vector<CompileRequest> Reqs;
  for (unsigned I = 0; I < 16; ++I)
    Reqs.push_back(request(I % 8)); // 8 distinct keys, requested twice.
  auto Futures = Service.submitAll(std::move(Reqs));
  ASSERT_EQ(Futures.size(), 16u);
  unsigned Served = 0, FromCache = 0;
  for (auto &F : Futures) {
    Expected<CompiledUnit> U = F.get();
    ASSERT_TRUE(static_cast<bool>(U));
    ++Served;
    if (U->CacheHit)
      ++FromCache;
  }
  EXPECT_EQ(Served, 16u);
  // 8 compiles; the other 8 requests were hits or coalesced onto the
  // in-flight leader.
  EXPECT_EQ(FromCache, 8u);
  EXPECT_EQ(Stats.get("service.compiles"), 8);
  EXPECT_EQ(Stats.get("service.requests"), 16);
}

TEST(CompileServiceTest, CompiledUnitRunsOnSynthesizedBuffers) {
  CompileService Service;
  Expected<CompiledUnit> U = Service.compileSync(request(5));
  ASSERT_TRUE(static_cast<bool>(U));

  std::vector<int64_t> A = {1, 2, 3, 4}, B = {10, 20, 30, 40};
  std::vector<int64_t> C(4, 0);
  CompiledProgram::RunRequest RR;
  RR.Args = {argPointer(A.data()), argPointer(B.data()),
             argPointer(C.data())};
  RR.MemoryRanges = {{A.data(), A.size() * 8},
                     {B.data(), B.size() * 8},
                     {C.data(), C.size() * 8}};
  ExecutionResult Res = U->Program->run(RR);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  // c[i] = (a[i] op b[i]) + 5 with op = +,-,+,-.
  EXPECT_EQ(C[0], 1 + 10 + 5);
  EXPECT_EQ(C[1], 2 - 20 + 5);
  EXPECT_EQ(C[2], 3 + 30 + 5);
  EXPECT_EQ(C[3], 4 - 40 + 5);
  // The vectorized form executes vector steps.
  EXPECT_GT(Res.VectorSteps, 0u);

  // Out-of-bounds is caught by the registered ranges.
  CompiledProgram::RunRequest Bad = RR;
  Bad.MemoryRanges.pop_back(); // c unregistered
  ExecutionResult BadRes = U->Program->run(Bad);
  EXPECT_FALSE(BadRes.Ok);
  EXPECT_EQ(BadRes.TrapKind, Trap::OutOfBounds);
}

// ---------------------------------------------------------------------------
// Overload-safety: admission control, deadlines, and the load-shedding
// fault sites. These tests pin the *determinism* of rejection — a full
// queue or an expired deadline must fail fast with the matching retryable
// code, never block, never compile, never wedge the pool.
// ---------------------------------------------------------------------------

/// Occupies the single worker of \p Service until the returned promise is
/// fulfilled; returns only once the blocker is actually running (so
/// subsequently submitted jobs are *pending*, deterministically).
std::promise<void> blockSingleWorker(CompileService &Service) {
  std::promise<void> Release;
  std::shared_future<void> Gate = Release.get_future().share();
  std::atomic<bool> *Running = new std::atomic<bool>{false};
  EXPECT_TRUE(Service.pool().submit([Running, Gate] {
    Running->store(true);
    Gate.wait();
    delete Running;
  }));
  while (!Running->load())
    std::this_thread::yield();
  return Release;
}

TEST(CompileServiceTest, FullQueueRejectsWithRetryableOverloaded) {
  StatsRegistry Stats;
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.MaxQueueDepth = 2;
  Cfg.Stats = &Stats;
  CompileService Service(Cfg);
  std::promise<void> Release = blockSingleWorker(Service);

  // The worker is pinned: the first MaxQueueDepth submissions queue, every
  // further one is rejected immediately — deterministically, not racily.
  auto FA = Service.submit(request(101));
  auto FB = Service.submit(request(102));
  auto FC = Service.submit(request(103));
  auto FD = Service.submit(request(104));

  // Rejections settle without waiting on the (still blocked) worker.
  ASSERT_EQ(FC.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  ASSERT_EQ(FD.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  for (auto *F : {&FC, &FD}) {
    Expected<CompiledUnit> U = F->get();
    ASSERT_FALSE(static_cast<bool>(U));
    EXPECT_EQ(U.errorCode(), ErrorCode::Overloaded);
    EXPECT_TRUE(isRetryableErrorCode(U.errorCode()));
    EXPECT_NE(U.errorMessage().find("queue is full"), std::string::npos);
    U.takeError().consume();
  }
  EXPECT_EQ(Stats.get("service.queue.rejected"), 2);

  // The accepted jobs were untouched by the rejections.
  Release.set_value();
  Expected<CompiledUnit> A = FA.get();
  Expected<CompiledUnit> B = FB.get();
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_GE(A->Program->stats().GraphsVectorized, 1u);
}

TEST(CompileServiceTest, DeadlineExpiredInQueueIsShedWithoutCompiling) {
  StatsRegistry Stats;
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.Stats = &Stats;
  CompileService Service(Cfg);
  std::promise<void> Release = blockSingleWorker(Service);

  CompileRequest Req = request(111);
  Req.DeadlineMillis = 1; // Expires while stuck behind the blocker.
  auto F = Service.submit(std::move(Req));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Release.set_value();

  Expected<CompiledUnit> U = F.get();
  ASSERT_FALSE(static_cast<bool>(U));
  EXPECT_EQ(U.errorCode(), ErrorCode::DeadlineExceeded);
  EXPECT_TRUE(isRetryableErrorCode(U.errorCode()));
  EXPECT_NE(U.errorMessage().find("before compilation"), std::string::npos);
  U.takeError().consume();
  // Shed at dequeue: the pipeline never ran for it.
  EXPECT_EQ(Stats.get("service.deadline.shed"), 1);
  EXPECT_EQ(Stats.get("service.compiles"), 0);
}

TEST(CompileServiceTest, DeadlineFaultSiteShedsThenRetrySucceeds) {
  FaultInjector::instance().disarmAll();
  CompileService Service;
  FaultInjector::instance().arm("service.deadline.expire");
  Expected<CompiledUnit> U = Service.compileSync(request(112));
  ASSERT_FALSE(static_cast<bool>(U));
  EXPECT_EQ(U.errorCode(), ErrorCode::DeadlineExceeded);
  U.takeError().consume();

  // The site is one-shot: the retry the retryable code promises succeeds.
  Expected<CompiledUnit> R = Service.compileSync(request(112));
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_FALSE(R->CacheHit); // The shed request never reached the cache.
  FaultInjector::instance().disarmAll();
}

TEST(CompileServiceTest, MidCompileDeadlineFaultFailsAfterPipeline) {
  // The same site probed on its second hit fires *between* the pipeline
  // and publication — the mid-compile enforcement path.
  FaultInjector::instance().disarmAll();
  StatsRegistry Stats;
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.Stats = &Stats;
  CompileService Service(Cfg);
  FaultInjector::instance().arm("service.deadline.expire",
                                /*FireOnNthHit=*/2);
  Expected<CompiledUnit> U = Service.compileSync(request(113));
  ASSERT_FALSE(static_cast<bool>(U));
  EXPECT_EQ(U.errorCode(), ErrorCode::DeadlineExceeded);
  EXPECT_NE(U.errorMessage().find("during compilation"), std::string::npos);
  U.takeError().consume();
  EXPECT_EQ(Stats.get("service.deadline.expired"), 1);

  // An overrun compile is not published; the retry compiles afresh.
  Expected<CompiledUnit> R = Service.compileSync(request(113));
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_FALSE(R->CacheHit);
  FaultInjector::instance().disarmAll();
}

TEST(CompileServiceTest, OverloadFaultSiteRejectsThenRetrySucceeds) {
  FaultInjector::instance().disarmAll();
  CompileService Service;
  FaultInjector::instance().arm("service.queue.overload");
  Expected<CompiledUnit> U = Service.compileSync(request(114));
  ASSERT_FALSE(static_cast<bool>(U));
  EXPECT_EQ(U.errorCode(), ErrorCode::Overloaded);
  EXPECT_TRUE(isRetryableErrorCode(U.errorCode()));
  U.takeError().consume();

  Expected<CompiledUnit> R = Service.compileSync(request(114));
  ASSERT_TRUE(static_cast<bool>(R));
  FaultInjector::instance().disarmAll();
}

TEST(CompileServiceTest, BudgetTrackerPollsTheDeadline) {
  // A deadline already in the past trips on the very first charge (the
  // poll runs on charge 1 and then every 64th) with the sticky reason
  // "deadline" — the vectorizer surfaces it as a `bailout:budget`.
  ResourceBudgets Past;
  Past.DeadlineSteadyNanos = 1;
  BudgetTracker Expired(Past);
  EXPECT_FALSE(Expired.chargeGraphNode());
  EXPECT_TRUE(Expired.exhausted());
  EXPECT_EQ(Expired.reason(), "deadline");

  // A generous deadline never trips, however many charges flow.
  ResourceBudgets Future;
  Future.DeadlineSteadyNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          (std::chrono::steady_clock::now() + std::chrono::hours(1))
              .time_since_epoch())
          .count());
  BudgetTracker Fine(Future);
  for (int I = 0; I < 200; ++I)
    EXPECT_TRUE(Fine.chargeGraphNode());
  EXPECT_FALSE(Fine.exhausted());

  // No deadline: the poll is entirely disabled.
  BudgetTracker None((ResourceBudgets()));
  for (int I = 0; I < 200; ++I)
    EXPECT_TRUE(None.chargeGraphNode());
  EXPECT_FALSE(None.exhausted());
}

TEST(CompileServiceTest, RunsSerializePerUnit) {
  CompileService Service;
  Expected<CompiledUnit> U = Service.compileSync(request());
  ASSERT_TRUE(static_cast<bool>(U));
  std::shared_ptr<const CompiledProgram> P = U->Program;

  std::vector<std::thread> Threads;
  std::atomic<int> OkRuns{0};
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([P, &OkRuns] {
      for (int I = 0; I < 25; ++I) {
        std::vector<int64_t> A(4, 1), B(4, 2), C(4, 0);
        CompiledProgram::RunRequest RR;
        RR.Args = {argPointer(A.data()), argPointer(B.data()),
                   argPointer(C.data())};
        RR.MemoryRanges = {{A.data(), 32}, {B.data(), 32}, {C.data(), 32}};
        if (P->run(RR).Ok && C[0] == 3)
          ++OkRuns;
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(OkRuns.load(), 100);
}

} // namespace
