# Empty dependencies file for scaling_problem_size.
# This may be replaced when dependencies are built.
