//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the textual IR printer and parser, including exact
/// print -> parse -> print round-trips.
///
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace snslp;

namespace {

class ParserPrinterTest : public ::testing::Test {
protected:
  Context Ctx;
  Module M{Ctx, "test"};

  Function *parseOne(const std::string &Source) {
    std::string Err;
    bool Ok = parseIR(Source, M, &Err);
    EXPECT_TRUE(Ok) << Err;
    if (!Ok)
      return nullptr;
    EXPECT_EQ(M.functions().size(), 1u);
    return M.functions().front().get();
  }

  void expectParseError(const std::string &Source,
                        const std::string &Fragment) {
    std::string Err;
    EXPECT_FALSE(parseIR(Source, M, &Err));
    EXPECT_NE(Err.find(Fragment), std::string::npos)
        << "diagnostic was: " << Err;
  }
};

TEST_F(ParserPrinterTest, ParseMinimalFunction) {
  Function *F = parseOne("func @f() {\n"
                         "entry:\n"
                         "  ret void\n"
                         "}\n");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->getName(), "f");
  EXPECT_TRUE(F->getReturnType()->isVoid());
  EXPECT_TRUE(verifyFunction(*F));
}

TEST_F(ParserPrinterTest, ParseArithmeticAndMemory) {
  Function *F = parseOne(
      "func @k(ptr %a, ptr %b) {\n"
      "entry:\n"
      "  %p0 = gep f64, ptr %a, i64 0\n"
      "  %p1 = gep f64, ptr %b, i64 1\n"
      "  %x = load f64, ptr %p0\n"
      "  %y = load f64, ptr %p1\n"
      "  %s = fadd f64 %x, %y\n"
      "  %d = fsub f64 %s, 1.5\n"
      "  %m = fmul f64 %d, %d\n"
      "  %q = fdiv f64 %m, 2.0\n"
      "  store f64 %q, ptr %p0\n"
      "  ret void\n"
      "}\n");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_EQ(F->instructionCount(), 10u);
}

TEST_F(ParserPrinterTest, ParseLoopWithPhiForwardReference) {
  Function *F = parseOne(
      "func @loop(ptr %a, i64 %n) {\n"
      "entry:\n"
      "  br label %body\n"
      "body:\n"
      "  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]\n"
      "  %p = gep i64, ptr %a, i64 %i\n"
      "  %v = load i64, ptr %p\n"
      "  %v2 = add i64 %v, 1\n"
      "  store i64 %v2, ptr %p\n"
      "  %i.next = add i64 %i, 1\n"
      "  %c = icmp ult i64 %i.next, %n\n"
      "  br i1 %c, label %body, label %exit\n"
      "exit:\n"
      "  ret void\n"
      "}\n");
  ASSERT_NE(F, nullptr);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyFunction(*F, &Errors))
      << (Errors.empty() ? "" : Errors.front());
  auto *Phi = cast<PhiNode>(F->getBlockByName("body")->begin()->get());
  EXPECT_EQ(Phi->getNumIncoming(), 2u);
  EXPECT_EQ(Phi->getIncomingBlock(0)->getName(), "entry");
  auto *C0 = dyn_cast<ConstantInt>(Phi->getIncomingValue(0));
  ASSERT_NE(C0, nullptr);
  EXPECT_EQ(C0->getValue(), 0);
}

TEST_F(ParserPrinterTest, ParseVectorInstructions) {
  Function *F = parseOne(
      "func @vec(ptr %a) {\n"
      "entry:\n"
      "  %v = load <2 x f64>, ptr %a\n"
      "  %w = altop <2 x f64> [fadd, fsub], %v, %v\n"
      "  %s = extractelement <2 x f64> %w, 0\n"
      "  %u = insertelement <2 x f64> %w, f64 %s, 1\n"
      "  %sh = shufflevector <2 x f64> %u, %v, [0, 3]\n"
      "  %cv = fadd <2 x f64> %sh, [1.0, 2.0]\n"
      "  store <2 x f64> %cv, ptr %a\n"
      "  ret void\n"
      "}\n");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(verifyFunction(*F));
}

TEST_F(ParserPrinterTest, ParseSelectAndReturnValue) {
  Function *F = parseOne(
      "func @sel(i64 %a, i64 %b) -> i64 {\n"
      "entry:\n"
      "  %c = icmp sgt i64 %a, %b\n"
      "  %m = select %c, i64 %a, %b\n"
      "  ret i64 %m\n"
      "}\n");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_EQ(F->getReturnType(), Ctx.getInt64Ty());
}

TEST_F(ParserPrinterTest, CommentsAndWhitespaceIgnored) {
  Function *F = parseOne("; leading comment\n"
                         "func @c() {   ; trailing\n"
                         "entry:\n"
                         "  ; a full-line comment\n"
                         "  ret void\n"
                         "}\n");
  ASSERT_NE(F, nullptr);
}

TEST_F(ParserPrinterTest, RoundTripIsExact) {
  const char *Source =
      "func @rt(ptr %a, ptr %b, i64 %n) {\n"
      "entry:\n"
      "  br label %body\n"
      "body:\n"
      "  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]\n"
      "  %p = gep f64, ptr %a, i64 %i\n"
      "  %q = gep f64, ptr %b, i64 %i\n"
      "  %x = load f64, ptr %p\n"
      "  %y = load f64, ptr %q\n"
      "  %s = fadd f64 %x, %y\n"
      "  %t = fsub f64 %s, 3.25\n"
      "  store f64 %t, ptr %p\n"
      "  %i.next = add i64 %i, 1\n"
      "  %c = icmp ult i64 %i.next, %n\n"
      "  br i1 %c, label %body, label %exit\n"
      "exit:\n"
      "  ret void\n"
      "}\n";
  Function *F = parseOne(Source);
  ASSERT_NE(F, nullptr);
  std::string Printed = toString(*F);

  // Parse the printed text into a second module and print again: fixpoint.
  Module M2(Ctx, "m2");
  std::string Err;
  ASSERT_TRUE(parseIR(Printed, M2, &Err)) << Err;
  EXPECT_EQ(Printed, toString(*M2.functions().front()));
}

TEST_F(ParserPrinterTest, RoundTripVectorFunction) {
  const char *Source =
      "func @rtv(ptr %a) {\n"
      "entry:\n"
      "  %v = load <4 x f32>, ptr %a\n"
      "  %w = altop <4 x f32> [fadd, fsub, fadd, fsub], %v, [1.0, 2.0, 3.0, 4.0]\n"
      "  %e = extractelement <4 x f32> %w, 2\n"
      "  %u = insertelement <4 x f32> %v, f32 %e, 0\n"
      "  %sh = shufflevector <4 x f32> %u, %w, [0, 4, 1, 5]\n"
      "  store <4 x f32> %sh, ptr %a\n"
      "  ret void\n"
      "}\n";
  Function *F = parseOne(Source);
  ASSERT_NE(F, nullptr);
  std::string Printed = toString(*F);
  Module M2(Ctx, "m2");
  std::string Err;
  ASSERT_TRUE(parseIR(Printed, M2, &Err)) << Err;
  EXPECT_EQ(Printed, toString(*M2.functions().front()));
}

TEST_F(ParserPrinterTest, PrinterSynthesizesNamesForUnnamedValues) {
  Function *F = M.createFunction("anon", Ctx.getVoidTy(),
                                 {{Ctx.getPtrTy(), "p"}});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  Value *L = B.createLoad(Ctx.getInt64Ty(), F->getArg(0)); // Unnamed.
  Value *A = B.createAdd(L, B.getInt64(5));                // Unnamed.
  B.createStore(A, F->getArg(0));
  B.createRet();
  std::string Printed = toString(*F);
  EXPECT_NE(Printed.find("%t0 = load"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("%t1 = add"), std::string::npos) << Printed;
  // And the printed form must parse back.
  Module M2(Ctx, "m2");
  std::string Err;
  EXPECT_TRUE(parseIR(Printed, M2, &Err)) << Err;
}

TEST_F(ParserPrinterTest, NegativeAndExponentFPConstants) {
  Function *F = parseOne("func @fpc(ptr %p) {\n"
                         "entry:\n"
                         "  %x = load f64, ptr %p\n"
                         "  %a = fadd f64 %x, -2.5\n"
                         "  %b = fmul f64 %a, 1e-3\n"
                         "  %c = fsub f64 %b, -1.25e2\n"
                         "  store f64 %c, ptr %p\n"
                         "  ret void\n"
                         "}\n");
  ASSERT_NE(F, nullptr);
  std::string Printed = toString(*F);
  Module M2(Ctx, "m2");
  std::string Err;
  ASSERT_TRUE(parseIR(Printed, M2, &Err)) << Err;
  EXPECT_EQ(Printed, toString(*M2.functions().front()));
}

TEST_F(ParserPrinterTest, ErrorUndefinedValue) {
  expectParseError("func @e() {\nentry:\n  %x = add i64 %y, 1\n  ret void\n}\n",
                   "undefined value");
}

TEST_F(ParserPrinterTest, ErrorRedefinition) {
  expectParseError(
      "func @e(i64 %x) {\nentry:\n  %x = add i64 %x, 1\n  ret void\n}\n",
      "redefinition");
}

TEST_F(ParserPrinterTest, ErrorTypeMismatch) {
  expectParseError(
      "func @e(i64 %x) {\nentry:\n  %y = fadd f64 %x, 1.0\n  ret void\n}\n",
      "expected f64");
}

TEST_F(ParserPrinterTest, ErrorUnknownOpcode) {
  expectParseError("func @e() {\nentry:\n  frobnicate i64 1, 2\n  ret void\n}\n",
                   "unknown opcode");
}

TEST_F(ParserPrinterTest, ErrorUnknownBlock) {
  expectParseError("func @e() {\nentry:\n  br label %nowhere\n}\n",
                   "unknown block");
}

TEST_F(ParserPrinterTest, ErrorDuplicateFunction) {
  expectParseError("func @f() {\nentry:\n  ret void\n}\n"
                   "func @f() {\nentry:\n  ret void\n}\n",
                   "redefinition");
}

TEST_F(ParserPrinterTest, ErrorLineNumbersAreReported) {
  std::string Err;
  EXPECT_FALSE(parseIR(
      "func @e() {\nentry:\n  ret void\n}\nfunc @g() {\nentry:\n  %x = bogus\n"
      "  ret void\n}\n",
      M, &Err));
  EXPECT_NE(Err.find("line 7"), std::string::npos) << Err;
}

TEST_F(ParserPrinterTest, MultipleFunctionsInOneModule) {
  std::string Err;
  ASSERT_TRUE(parseIR("func @a() {\nentry:\n  ret void\n}\n"
                      "func @b() -> i64 {\nentry:\n  ret i64 7\n}\n",
                      M, &Err))
      << Err;
  EXPECT_EQ(M.functions().size(), 2u);
  EXPECT_NE(M.getFunction("a"), nullptr);
  ASSERT_NE(M.getFunction("b"), nullptr);
  EXPECT_EQ(M.getFunction("b")->getReturnType(), Ctx.getInt64Ty());
}

//===----------------------------------------------------------------------===//
// Round-trips for every shape the fuzz reducer writes into artifacts
// (fuzz/Artifact.h): all four scalar element types, selects, unary ops,
// diamonds with phi merges, loops, and metadata comment headers.
//===----------------------------------------------------------------------===//

TEST_F(ParserPrinterTest, RoundTripAllScalarElementTypes) {
  const char *Source =
      "func @types(ptr %a, ptr %b, ptr %c, ptr %d) {\n"
      "entry:\n"
      "  %p32 = gep i32, ptr %a, i64 0\n"
      "  %x32 = load i32, ptr %p32\n"
      "  %y32 = sub i32 %x32, 3\n"
      "  store i32 %y32, ptr %p32\n"
      "  %p64 = gep i64, ptr %b, i64 1\n"
      "  %x64 = load i64, ptr %p64\n"
      "  %y64 = mul i64 %x64, 5\n"
      "  store i64 %y64, ptr %p64\n"
      "  %pf = gep f32, ptr %c, i64 2\n"
      "  %xf = load f32, ptr %pf\n"
      "  %yf = fdiv f32 %xf, 1.5\n"
      "  store f32 %yf, ptr %pf\n"
      "  %pd = gep f64, ptr %d, i64 3\n"
      "  %xd = load f64, ptr %pd\n"
      "  %yd = fsub f64 %xd, 0.25\n"
      "  store f64 %yd, ptr %pd\n"
      "  ret void\n"
      "}\n";
  Function *F = parseOne(Source);
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(verifyFunction(*F));
  std::string Printed = toString(*F);
  Module M2(Ctx, "m2");
  std::string Err;
  ASSERT_TRUE(parseIR(Printed, M2, &Err)) << Err;
  EXPECT_EQ(Printed, toString(*M2.functions().front()));
}

TEST_F(ParserPrinterTest, RoundTripSelectAndUnaryOps) {
  const char *Source =
      "func @su(ptr %a, ptr %b) -> f64 {\n"
      "entry:\n"
      "  %p = gep f64, ptr %a, i64 0\n"
      "  %x = load f64, ptr %p\n"
      "  %n = fneg f64 %x\n"
      "  %ab = fabs f64 %n\n"
      "  %r = sqrt f64 %ab\n"
      "  %q = gep i64, ptr %b, i64 0\n"
      "  %i = load i64, ptr %q\n"
      "  %j = sub i64 %i, 7\n"
      "  %c = icmp slt i64 %i, %j\n"
      "  %m = select %c, i64 %i, %j\n"
      "  store i64 %m, ptr %q\n"
      "  ret f64 %r\n"
      "}\n";
  Function *F = parseOne(Source);
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(verifyFunction(*F));
  std::string Printed = toString(*F);
  Module M2(Ctx, "m2");
  std::string Err;
  ASSERT_TRUE(parseIR(Printed, M2, &Err)) << Err;
  EXPECT_EQ(Printed, toString(*M2.functions().front()));
}

TEST_F(ParserPrinterTest, RoundTripDiamondWithPhiMerge) {
  // The reducer's branch-straightening pass starts from shapes like this;
  // its candidates (and their artifacts) must survive exact round-trips.
  const char *Source =
      "func @dia(ptr %a, i64 %n) {\n"
      "entry:\n"
      "  %c = icmp sgt i64 %n, 0\n"
      "  br i1 %c, label %then, label %other\n"
      "then:\n"
      "  %p = gep i64, ptr %a, i64 0\n"
      "  %x = load i64, ptr %p\n"
      "  br label %join\n"
      "other:\n"
      "  %q = gep i64, ptr %a, i64 1\n"
      "  %y = load i64, ptr %q\n"
      "  br label %join\n"
      "join:\n"
      "  %m = phi i64 [ %x, %then ], [ %y, %other ]\n"
      "  %o = gep i64, ptr %a, i64 2\n"
      "  store i64 %m, ptr %o\n"
      "  ret void\n"
      "}\n";
  Function *F = parseOne(Source);
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(verifyFunction(*F));
  std::string Printed = toString(*F);
  Module M2(Ctx, "m2");
  std::string Err;
  ASSERT_TRUE(parseIR(Printed, M2, &Err)) << Err;
  EXPECT_EQ(Printed, toString(*M2.functions().front()));
}

TEST_F(ParserPrinterTest, ArtifactMetadataHeaderIsPlainComments) {
  // A fuzz artifact (fuzz/Artifact.h) is an ordinary IR file whose header
  // is comment lines; the parser must ignore it entirely.
  const char *Source =
      "; fuzzslp-artifact v1\n"
      "; seed: 42\n"
      "; data-seed: 42\n"
      "; shape: expr\n"
      "; elem: i64\n"
      "; arrays: 2\n"
      "; len: 16\n"
      "; failure: [SNSLP/bytecode] memory-mismatch: arg0[2]\n"
      "func @repro(ptr %out, ptr %in0) {\n"
      "entry:\n"
      "  %p = gep i64, ptr %in0, i64 0\n"
      "  %a = load i64, ptr %p\n"
      "  %d = sub i64 %a, 2\n"
      "  %o = gep i64, ptr %out, i64 0\n"
      "  store i64 %d, ptr %o\n"
      "  ret void\n"
      "}\n";
  Function *F = parseOne(Source);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->getName(), "repro");
  EXPECT_TRUE(verifyFunction(*F));
  std::string Printed = toString(*F);
  Module M2(Ctx, "m2");
  std::string Err;
  ASSERT_TRUE(parseIR(Printed, M2, &Err)) << Err;
  EXPECT_EQ(Printed, toString(*M2.functions().front()));
}

TEST_F(ParserPrinterTest, RoundTripInPlaceLoopArtifactShape) {
  // The Loop generator shape: in-place update with a trip-count argument.
  const char *Source =
      "func @lp(ptr %out, ptr %in0, i64 %n) {\n"
      "entry:\n"
      "  br label %loop\n"
      "loop:\n"
      "  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]\n"
      "  %pi = gep i64, ptr %in0, i64 %i\n"
      "  %a = load i64, ptr %pi\n"
      "  %po = gep i64, ptr %out, i64 %i\n"
      "  %b = load i64, ptr %po\n"
      "  %s = sub i64 %a, %b\n"
      "  store i64 %s, ptr %po\n"
      "  %i.next = add i64 %i, 1\n"
      "  %c = icmp ult i64 %i.next, %n\n"
      "  br i1 %c, label %loop, label %exit\n"
      "exit:\n"
      "  ret void\n"
      "}\n";
  Function *F = parseOne(Source);
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(verifyFunction(*F));
  std::string Printed = toString(*F);
  Module M2(Ctx, "m2");
  std::string Err;
  ASSERT_TRUE(parseIR(Printed, M2, &Err)) << Err;
  EXPECT_EQ(Printed, toString(*M2.functions().front()));
}

TEST_F(ParserPrinterTest, IntegerConstantInFPContextIsRejected) {
  // The printer always emits FP constants with '.'; an integer literal in
  // FP position is accepted as an FP value (convenience), so this parses.
  Function *F = parseOne(
      "func @ic(ptr %p) {\nentry:\n  %x = load f64, ptr %p\n"
      "  %y = fadd f64 %x, 2.0\n  store f64 %y, ptr %p\n  ret void\n}\n");
  ASSERT_NE(F, nullptr);
}

} // namespace
