//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "costmodel/TargetCostModel.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace snslp;

/// Cycle cost of one binary opcode (scalar or one vector issue).
static double opcodeCycles(BinOpcode Op) {
  switch (Op) {
  case BinOpcode::Add:
  case BinOpcode::Sub:
    return 1.0;
  case BinOpcode::Mul:
    return 3.0;
  case BinOpcode::FAdd:
  case BinOpcode::FSub:
    return 3.0;
  case BinOpcode::FMul:
    return 4.0;
  case BinOpcode::FDiv:
    return 13.0;
  }
  snslp_unreachable("covered switch");
}

double TargetCostModel::executionCycles(const Instruction &Inst) const {
  switch (Inst.getKind()) {
  case ValueKind::BinOp:
    return opcodeCycles(cast<BinaryOperator>(Inst).getOpcode());
  case ValueKind::UnaryOp:
    switch (cast<UnaryOperator>(Inst).getOpcode()) {
    case UnaryOpcode::FNeg:
    case UnaryOpcode::Fabs:
      return 1.0; // Sign-bit manipulation.
    case UnaryOpcode::Sqrt:
      return 15.0;
    }
    snslp_unreachable("covered switch");
  case ValueKind::AlternateOp: {
    // An alternating op issues like the direct op plus a small blend cost,
    // mirroring the static AlternatePenalty.
    const auto &AO = cast<AlternateOp>(Inst);
    double MaxLane = 0.0;
    for (BinOpcode Op : AO.getLaneOpcodes())
      MaxLane = std::max(MaxLane, opcodeCycles(Op));
    return MaxLane + 1.0;
  }
  case ValueKind::Load:
    return 4.0;
  case ValueKind::Store:
    return 1.0;
  case ValueKind::GEP:
    return 1.0; // Folds into an addressing mode / LEA.
  case ValueKind::ICmp:
    return 1.0;
  case ValueKind::Select:
    return 1.0;
  case ValueKind::Phi:
    return 0.0; // Register renaming.
  case ValueKind::Branch:
    return 1.0;
  case ValueKind::Ret:
    return 1.0;
  case ValueKind::InsertElement:
  case ValueKind::ExtractElement:
  case ValueKind::ShuffleVector:
    return 1.0;
  case ValueKind::Argument:
  case ValueKind::ConstantInt:
  case ValueKind::ConstantFP:
  case ValueKind::ConstantVector:
    break;
  }
  snslp_unreachable("not an instruction");
}
