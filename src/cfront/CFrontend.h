//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature C frontend for kernel functions. The paper's kernels are C
/// code compiled by clang; this frontend accepts the same shape of kernel
/// in a restricted C dialect and lowers it to the project's IR, so kernels
/// can be written the way the paper presents them (Figs. 2-3) instead of
/// as hand-written IR.
///
/// Supported dialect:
///
/// \code
///   void kernel(long *A, long *B, long *C, long *D, long n) {
///     for (i = 0; i < n; i += 2) {
///       A[i]   = B[i] - C[i] + D[i];
///       A[i+1] = B[i+1] + D[i+1] - C[i+1];
///     }
///   }
/// \endcode
///
/// - Parameters: `double*`, `float*`, `long*`, `int*` arrays, plus scalar
///   `double`/`long` values; the trailing `long n` bounds the loop.
/// - One counted for-loop: `for (i = START; i < BOUND; i += STEP)` where
///   BOUND is a `long` parameter.
/// - Statements: `array[index] = expression;`
/// - Expressions: `+ - * /` with the usual precedence, parentheses, unary
///   minus, `sqrt(...)`/`fabs(...)`, array loads `arr[index]`, scalar
///   parameters, and numeric literals.
/// - Indices: `i`, `i + K`, `i - K`, `i * K`, or a literal K.
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_CFRONT_CFRONTEND_H
#define SNSLP_CFRONT_CFRONTEND_H

#include <string>

namespace snslp {

class Function;
class Module;

/// Compiles one C-dialect kernel into \p M.
///
/// \returns the created Function, or null with a diagnostic (including a
/// line number) in \p ErrMsg when non-null.
Function *compileCKernel(const std::string &Source, Module &M,
                         std::string *ErrMsg = nullptr);

} // namespace snslp

#endif // SNSLP_CFRONT_CFRONTEND_H
