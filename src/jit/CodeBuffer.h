//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// W^X executable code buffers for the JIT.
///
/// Pages are never writable and executable at the same time: a buffer is
/// mmap'd read-write, the emitter copies machine code into it, and
/// finalize() flips the mapping to read-execute before the first call.
/// Once finalized a buffer is immutable; re-emission allocates a new
/// buffer. See docs/jit.md ("W^X policy").
///
//===----------------------------------------------------------------------===//

#ifndef SNSLP_JIT_CODEBUFFER_H
#define SNSLP_JIT_CODEBUFFER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snslp {

/// One mmap'd code region holding a single JIT-compiled function.
/// Move-only; the mapping is unmapped on destruction.
class CodeBuffer {
public:
  CodeBuffer() = default;
  ~CodeBuffer();

  CodeBuffer(CodeBuffer &&Other) noexcept;
  CodeBuffer &operator=(CodeBuffer &&Other) noexcept;
  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;

  /// Maps a fresh RW region, copies \p Code into it, and remaps it RX.
  /// Returns false (leaving the buffer empty) when the platform cannot
  /// provide executable memory or either mmap/mprotect step fails.
  bool install(const std::vector<uint8_t> &Code);

  /// Entry point of the installed code; null until install() succeeds.
  const void *entry() const { return Base; }
  /// Bytes of machine code installed (excludes page-rounding slack).
  size_t codeSize() const { return CodeBytes; }
  /// Bytes of address space mapped (page granularity).
  size_t mappedSize() const { return MapBytes; }

  explicit operator bool() const { return Base != nullptr; }

private:
  void reset();

  void *Base = nullptr;
  size_t MapBytes = 0;
  size_t CodeBytes = 0;
};

} // namespace snslp

#endif // SNSLP_JIT_CODEBUFFER_H
