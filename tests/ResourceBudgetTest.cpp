//===----------------------------------------------------------------------===//
//
// Part of the SN-SLP reproduction project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for deterministic resource budgets (ResourceBudgets /
/// BudgetTracker): tracker charge semantics, and the end-to-end graceful-
/// degradation contract — a blown budget rolls the attempt back to the
/// bit-identical scalar form, bumps BudgetBailouts, and emits a
/// `bailout:budget` remark naming the blown budget; compilation continues.
///
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "kernels/Kernel.h"
#include "slp/SLPVectorizer.h"
#include "slp/VectorizerConfig.h"

#include <gtest/gtest.h>

#include <string>

using namespace snslp;

namespace {

// ---------------------------------------------------------------------------
// BudgetTracker mechanics.
// ---------------------------------------------------------------------------

TEST(BudgetTrackerTest, DefaultIsUnlimited) {
  ResourceBudgets B;
  EXPECT_FALSE(B.anyLimited());
  BudgetTracker T(B);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_TRUE(T.chargeGraphNode());
    EXPECT_TRUE(T.chargeLookAheadEval());
    EXPECT_TRUE(T.chargeSuperNodePermutation());
  }
  EXPECT_FALSE(T.exhausted());
  EXPECT_TRUE(T.reason().empty());
  EXPECT_EQ(T.graphNodes(), 1000u);
}

TEST(BudgetTrackerTest, ExhaustionIsStickyAndNamesFirstBlownBudget) {
  ResourceBudgets B;
  B.MaxGraphNodes = 2;
  B.MaxLookAheadEvals = 1;
  EXPECT_TRUE(B.anyLimited());
  BudgetTracker T(B);
  EXPECT_TRUE(T.chargeGraphNode());  // 1 <= 2
  EXPECT_TRUE(T.chargeGraphNode());  // 2 <= 2
  EXPECT_TRUE(T.chargeLookAheadEval()); // 1 <= 1
  EXPECT_FALSE(T.chargeLookAheadEval()); // 2 > 1: trips
  EXPECT_TRUE(T.exhausted());
  EXPECT_EQ(T.reason(), "lookahead-evals");
  // Sticky: a later graph-node overrun does not rename the reason, and
  // every further charge reports exhaustion.
  EXPECT_FALSE(T.chargeGraphNode()); // 3 > 2, but already exhausted
  EXPECT_EQ(T.reason(), "lookahead-evals");
  EXPECT_FALSE(T.chargeSuperNodePermutation());
}

TEST(BudgetTrackerTest, ForceExhaustedCarriesTheGivenReason) {
  BudgetTracker T;
  EXPECT_FALSE(T.exhausted());
  T.forceExhausted("fault:slp.graph.budget");
  EXPECT_TRUE(T.exhausted());
  EXPECT_EQ(T.reason(), "fault:slp.graph.budget");
  // First reason wins.
  T.forceExhausted("second");
  EXPECT_EQ(T.reason(), "fault:slp.graph.budget");
}

// ---------------------------------------------------------------------------
// End-to-end graceful degradation on a real kernel.
// ---------------------------------------------------------------------------

struct BudgetCase {
  const char *Name;   // Test-name suffix.
  const char *Reason; // The blown budget's name in the remark message.
  ResourceBudgets Budgets;
};

class ResourceBudgetTest : public ::testing::TestWithParam<BudgetCase> {};

TEST_P(ResourceBudgetTest, ExhaustionRollsBackAndEmitsBudgetRemark) {
  const BudgetCase &C = GetParam();
  const Kernel *K = findKernel("motiv2");
  ASSERT_NE(K, nullptr);
  Context Ctx;
  Module M(Ctx, "budget");
  std::string Err;
  ASSERT_TRUE(parseIR(K->IRText, M, &Err)) << Err;
  Function *F = M.getFunction("motiv2");
  const std::string Scalar = toString(*F);

  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SNSLP;
  Cfg.Budgets = C.Budgets;
  VectorizeStats Stats = runSLPVectorizer(*F, Cfg);

  // Graceful and observable: nothing committed, at least one budget
  // bailout, scalar form restored bit-identically, still verifiable.
  EXPECT_EQ(Stats.GraphsVectorized, 0u);
  EXPECT_GE(Stats.BudgetBailouts, 1u);
  EXPECT_TRUE(verifyFunction(*F));
  EXPECT_EQ(toString(*F), Scalar);

  // The decision trail carries a bailout:budget missed remark that names
  // the blown budget and the attempt's charge counts.
  bool Found = false;
  for (const Remark &R : Stats.Remarks)
    if (R.Name == "VectorizeAborted" && R.Decision == "bailout:budget") {
      Found = true;
      EXPECT_EQ(R.Kind, RemarkKind::Missed);
      EXPECT_NE(R.Message.find(C.Reason), std::string::npos) << R.Message;
      EXPECT_NE(R.Message.find("rolled back to scalar form"),
                std::string::npos);
    }
  EXPECT_TRUE(Found);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, ResourceBudgetTest,
    ::testing::Values(
        BudgetCase{"GraphNodes", "graph-nodes",
                   ResourceBudgets{/*MaxGraphNodes=*/1,
                                   /*MaxLookAheadEvals=*/0,
                                   /*MaxSuperNodePermutations=*/0}},
        BudgetCase{"LookAheadEvals", "lookahead-evals",
                   ResourceBudgets{/*MaxGraphNodes=*/0,
                                   /*MaxLookAheadEvals=*/1,
                                   /*MaxSuperNodePermutations=*/0}},
        BudgetCase{"SuperNodePermutations", "supernode-permutations",
                   ResourceBudgets{/*MaxGraphNodes=*/0,
                                   /*MaxLookAheadEvals=*/0,
                                   /*MaxSuperNodePermutations=*/1}}),
    [](const ::testing::TestParamInfo<BudgetCase> &Info) {
      return std::string(Info.param.Name);
    });

TEST(ResourceBudgetDefaultsTest, UnlimitedBudgetsChangeNothing) {
  // The defaults impose no limit: motiv2 vectorizes exactly as without
  // the budget machinery, with zero bailouts.
  const Kernel *K = findKernel("motiv2");
  ASSERT_NE(K, nullptr);
  Context Ctx;
  Module M(Ctx, "unlimited");
  std::string Err;
  ASSERT_TRUE(parseIR(K->IRText, M, &Err)) << Err;
  Function *F = M.getFunction("motiv2");

  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SNSLP;
  ASSERT_FALSE(Cfg.Budgets.anyLimited());
  VectorizeStats Stats = runSLPVectorizer(*F, Cfg);
  EXPECT_EQ(Stats.GraphsVectorized, 1u);
  EXPECT_EQ(Stats.BudgetBailouts, 0u);
  EXPECT_EQ(Stats.totalBailouts(), 0u);
  EXPECT_TRUE(verifyFunction(*F));
}

TEST(ResourceBudgetDefaultsTest, GenerousBudgetsStillCommit) {
  // A limit that is merely finite (but generous) must not change the
  // decision: the paper kernel still vectorizes.
  const Kernel *K = findKernel("motiv2");
  ASSERT_NE(K, nullptr);
  Context Ctx;
  Module M(Ctx, "generous");
  std::string Err;
  ASSERT_TRUE(parseIR(K->IRText, M, &Err)) << Err;
  Function *F = M.getFunction("motiv2");

  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SNSLP;
  Cfg.Budgets.MaxGraphNodes = 1u << 20;
  Cfg.Budgets.MaxLookAheadEvals = 1u << 20;
  Cfg.Budgets.MaxSuperNodePermutations = 1u << 20;
  VectorizeStats Stats = runSLPVectorizer(*F, Cfg);
  EXPECT_EQ(Stats.GraphsVectorized, 1u);
  EXPECT_EQ(Stats.totalBailouts(), 0u);
  EXPECT_TRUE(verifyFunction(*F));
}

TEST(ResourceBudgetDefaultsTest, NonTransactionalExhaustionDegradesSafely) {
  // Without the transactional layer a blown budget cannot roll back; the
  // degraded graph must instead fail the cost test. Either way: no crash,
  // no commit, verifiable IR.
  const Kernel *K = findKernel("motiv2");
  ASSERT_NE(K, nullptr);
  Context Ctx;
  Module M(Ctx, "nontxn");
  std::string Err;
  ASSERT_TRUE(parseIR(K->IRText, M, &Err)) << Err;
  Function *F = M.getFunction("motiv2");

  VectorizerConfig Cfg;
  Cfg.Mode = VectorizerMode::SNSLP;
  Cfg.TransactionalRegions = false;
  Cfg.Budgets.MaxGraphNodes = 1;
  VectorizeStats Stats = runSLPVectorizer(*F, Cfg);
  EXPECT_EQ(Stats.GraphsVectorized, 0u);
  EXPECT_EQ(Stats.BudgetBailouts, 0u); // No transaction, no bailout.
  EXPECT_TRUE(verifyFunction(*F));
}

} // namespace
